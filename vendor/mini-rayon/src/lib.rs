//! Offline vendored stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small data-parallel subset the reseeding pipeline needs: a scoped
//! fork-join pool with dynamic (work-stealing-style) index dispatch, an
//! order-preserving parallel map ([`par_map_indexed`], [`par_chunks_map`]),
//! a [`scope`]/[`Scope::spawn`] helper, and the global [`Jobs`] knob
//! resolved from the builder API, the `FBIST_JOBS` environment variable,
//! or the machine's available parallelism — in that order.
//!
//! # Determinism contract
//!
//! Every helper returns results **in input index order**, regardless of
//! which worker computed which item and in which real-time order items
//! finished. Combined with the workspace rule that no RNG is ever drawn
//! inside a parallel region (per-task streams are derived from the master
//! seed *before* dispatch), any computation built on these helpers is
//! bit-identical for every job count — `jobs = 64` must equal `jobs = 1`.
//!
//! # Scheduling
//!
//! Workers (including the calling thread, which always participates) pull
//! the next pending index from a shared atomic cursor, so a slow item never
//! stalls the queue behind it — the same load-balancing property a
//! work-stealing deque provides, without per-worker queues. Nested
//! parallel regions execute serially on the worker they land on, keeping
//! the total thread count bounded by the job count.
//!
//! # Example
//!
//! ```
//! let squares = mini_rayon::par_map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted when no explicit job count is installed.
pub const JOBS_ENV: &str = "FBIST_JOBS";

/// Global job-count override; 0 = unset (resolve from env / hardware).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `true` while this thread is executing inside a parallel region;
    /// nested regions then run serially instead of spawning more threads.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// The workspace-wide parallelism configuration, builder-style.
///
/// A job count of `0` means *auto*: resolve from the [`JOBS_ENV`]
/// environment variable, falling back to
/// [`std::thread::available_parallelism`].
///
/// ```
/// mini_rayon::Jobs::exact(2).install();
/// assert_eq!(mini_rayon::jobs(), 2);
/// mini_rayon::Jobs::auto().install(); // back to env / hardware
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Resolve from `FBIST_JOBS` or the hardware at each use site.
    pub fn auto() -> Jobs {
        Jobs(0)
    }

    /// Exactly `n` workers (`n = 0` is the same as [`Jobs::auto`]).
    pub fn exact(n: usize) -> Jobs {
        Jobs(n)
    }

    /// The configured count; 0 = auto.
    pub fn get(self) -> usize {
        self.0
    }

    /// Installs this configuration as the global default.
    pub fn install(self) {
        JOBS_OVERRIDE.store(self.0, Ordering::Relaxed);
    }

    /// Resolves a per-call job request: `0` defers to the global default
    /// ([`jobs`]), anything else is taken literally.
    pub fn resolve(requested: usize) -> usize {
        if requested == 0 {
            jobs()
        } else {
            requested
        }
    }
}

/// Installs a global job count (`0` = auto). Equivalent to
/// `Jobs::exact(n).install()`.
pub fn set_jobs(n: usize) {
    Jobs::exact(n).install()
}

/// Parses a `--jobs`-style value — the one shared implementation behind
/// every front end's flag, so the accepted syntax and the error wording
/// cannot drift apart.
///
/// ```
/// assert_eq!(mini_rayon::parse_jobs("4"), Ok(4));
/// assert_eq!(mini_rayon::parse_jobs("0"), Ok(0)); // auto
/// assert!(mini_rayon::parse_jobs("banana").unwrap_err().contains("--jobs"));
/// ```
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    v.trim().parse::<usize>().map_err(|_| {
        format!("invalid value for --jobs: {v:?} (expected a non-negative integer; 0 = auto)")
    })
}

/// The effective global job count: the installed override if any, else a
/// positive `FBIST_JOBS` value, else the machine's available parallelism.
pub fn jobs() -> usize {
    let installed = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if installed > 0 {
        return installed;
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound on threads one region may spawn: generous oversubscription
/// is allowed (workers blocked in nested serial work still make progress),
/// but an absurd `--jobs` request must not exhaust OS thread limits —
/// `std::thread::scope` panics on spawn failure mid-region.
fn worker_cap() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores * 8).max(8)
}

/// Restores the previous `IN_PARALLEL` flag even on unwind.
struct RegionGuard(bool);

impl RegionGuard {
    fn enter() -> RegionGuard {
        let prev = IN_PARALLEL.with(|f| f.replace(true));
        RegionGuard(prev)
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_PARALLEL.with(|f| f.set(prev));
    }
}

/// Runs `task(i)` for every `i in 0..n` across `workers` threads (the
/// caller participates as one of them), pulling indices from a shared
/// cursor. Panics in any task propagate to the caller once all workers
/// have stopped.
fn run_strided<F: Fn(usize) + Sync>(workers: usize, n: usize, task: F) {
    let cursor = AtomicUsize::new(0);
    let body = || {
        let _guard = RegionGuard::enter();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            task(i);
        }
    };
    std::thread::scope(|sc| {
        for _ in 1..workers {
            sc.spawn(body);
        }
        body();
    });
}

/// Maps `0..n` through `f` across up to `jobs` workers (`0` = global
/// default), returning the results **in index order**.
///
/// Falls back to a plain serial map when one worker suffices, when `n`
/// does not justify a fan-out, or when called from inside another parallel
/// region (nested regions run serially to bound the thread count).
pub fn par_map_indexed<U, F>(jobs: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = Jobs::resolve(jobs).clamp(1, n.max(1)).min(worker_cap());
    if workers == 1 || n <= 1 || IN_PARALLEL.with(|flag| flag.get()) {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_strided(workers, n, |i| {
        *slots[i].lock().expect("result slot poisoned") = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every index dispatched exactly once")
        })
        .collect()
}

/// Maps a slice through `f` in parallel, dispatching `chunk`-sized batches
/// to amortise scheduling overhead on cheap items. Results come back in
/// input order; `chunk` never affects them.
///
/// ```
/// let doubled = mini_rayon::par_chunks_map(2, &[1, 2, 3, 4, 5], 2, |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
pub fn par_chunks_map<T, U, F>(jobs: usize, items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let per_chunk = par_map_indexed(jobs, n_chunks, |ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(items.len());
        items[lo..hi].iter().map(&f).collect::<Vec<U>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A queued scope task: boxed so spawn sites of different closure types
/// can share one list.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A collection of spawned closures executed when the enclosing [`scope`]
/// call returns from its builder.
pub struct Scope<'env> {
    tasks: RefCell<Vec<Task<'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `f` for execution on the pool. Closures may borrow from the
    /// environment enclosing the [`scope`] call.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.tasks.borrow_mut().push(Box::new(f));
    }
}

/// Collects tasks via [`Scope::spawn`] and runs them across up to `jobs`
/// workers (`0` = global default), blocking until all complete. Spawn
/// order is the dispatch order, but tasks run concurrently — use the
/// `par_map` helpers when results must line up with inputs.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let sum = AtomicUsize::new(0);
/// mini_rayon::scope(4, |s| {
///     let sum = &sum;
///     for i in 1..=10 {
///         s.spawn(move || {
///             sum.fetch_add(i, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(sum.into_inner(), 55);
/// ```
pub fn scope<'env>(jobs: usize, build: impl FnOnce(&Scope<'env>)) {
    let s = Scope {
        tasks: RefCell::new(Vec::new()),
    };
    build(&s);
    let tasks = s.tasks.into_inner();
    let n = tasks.len();
    let workers = Jobs::resolve(jobs).clamp(1, n.max(1)).min(worker_cap());
    if workers == 1 || n <= 1 || IN_PARALLEL.with(|flag| flag.get()) {
        for t in tasks {
            t();
        }
        return;
    }
    let slots: Vec<Mutex<Option<Task<'env>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_strided(workers, n, |i| {
        let task = slots[i].lock().expect("task slot poisoned").take();
        if let Some(t) = task {
            t();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_order() {
        for jobs in [1, 2, 8] {
            let out = par_map_indexed(jobs, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunked_map_matches_serial_for_every_chunk_size() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for chunk in [1, 2, 7, 57, 1000] {
            assert_eq!(par_chunks_map(4, &items, chunk, |&x| x * x), expect);
        }
    }

    #[test]
    fn scope_runs_every_task_once() {
        let counter = AtomicUsize::new(0);
        scope(4, |s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 64);
    }

    #[test]
    fn nested_regions_run_serially_and_correctly() {
        // inner parallel calls from worker threads must not explode the
        // thread count — and must still return ordered results
        let out = par_map_indexed(4, 8, |i| {
            let inner = par_map_indexed(4, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| 4 * (i * 10) + 6).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn results_identical_across_job_counts() {
        let baseline = par_map_indexed(1, 200, |i| (i as u64).wrapping_mul(0x9E37));
        for jobs in [2, 3, 16] {
            assert_eq!(
                par_map_indexed(jobs, 200, |i| (i as u64).wrapping_mul(0x9E37)),
                baseline
            );
        }
    }

    #[test]
    fn absurd_job_requests_are_capped_not_fatal() {
        // must neither exhaust OS threads nor change results
        let out = par_map_indexed(usize::MAX, 300, |i| i + 1);
        assert_eq!(out, (1..=300).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_resolution_precedence() {
        // exact override wins over auto
        Jobs::exact(3).install();
        assert_eq!(jobs(), 3);
        assert_eq!(Jobs::resolve(0), 3);
        assert_eq!(Jobs::resolve(5), 5);
        Jobs::auto().install();
        assert!(jobs() >= 1, "auto resolves to something positive");
        assert_eq!(Jobs::auto().get(), 0);
        assert_eq!(Jobs::exact(9).get(), 9);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        // the panic reaches the caller either verbatim (caller-thread item)
        // or as std::thread::scope's "a scoped thread panicked"
        let _ = par_map_indexed(2, 16, |i| {
            if i == 11 {
                panic!("boom");
            }
            i
        });
    }
}
