//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small, deterministic subset of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads and fully reproducible from a `u64`
//! seed, which is all the workspace requires (every call site seeds via
//! `StdRng::seed_from_u64`). It makes no API-stability or
//! stream-compatibility promises beyond this workspace.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor value, for inclusive upper bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply rejection-free mapping is overkill here;
                // the modulo bias over a u64 draw is ≤ span/2^64 and the
                // workspace only uses small spans.
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
            fn successor(self) -> Self { self + 1 }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "gen_range called with empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset: [`StdRng`] only).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
