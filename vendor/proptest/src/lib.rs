//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, `any::<T>()`,
//! [`Just`], `prop_oneof!`, `proptest::collection::vec`, the `proptest!`
//! macro, and the `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Semantics: each property runs `ProptestConfig::cases` random cases from
//! a seed derived deterministically from the test name, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case
//! reports the assertion message only. That is a deliberate trade-off to
//! keep the vendored shim small; the properties themselves stay exactly as
//! strong.

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic xorshift* RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a reproducible generator from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, never zero.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, n)`; `n > 0` must hold.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Per-property configuration (subset: `cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy, see [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // printable ASCII keeps generated text debuggable
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// The full-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given non-empty alternative list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec`] only).

    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Re-exports used by the `proptest!` macro expansion.
    pub use super::{ProptestConfig, TestCaseError, TestRng};
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(16).max(1024),
                                "proptest {}: too many prop_assume! rejections ({} passed)",
                                stringify!($name), passed
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed after {} passing cases: {}",
                                stringify!($name), passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(::core::default::Default::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn flat_map_threads_width(
            (w, v) in (1usize..9).prop_flat_map(|w| {
                (Just(w), crate::collection::vec(any::<bool>(), w))
            })
        ) {
            prop_assert_eq!(v.len(), w);
        }

        #[test]
        fn oneof_only_yields_listed(c in prop_oneof![Just('0'), Just('1'), Just('X')]) {
            prop_assert!(['0', '1', 'X'].contains(&c));
        }

        #[test]
        fn assume_discards(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(s in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(s.len() < 5);
        }
    }
}
