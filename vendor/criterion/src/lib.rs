//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the Criterion API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple warm-up + timed-batch loop reporting the mean
//! wall-clock time per iteration — no statistics, outlier analysis, or
//! HTML reports. Good enough to compare orders of magnitude and to keep
//! `cargo bench` runnable offline; swap in real Criterion when the
//! registry is reachable for publication-quality numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` measured at `parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier varying only by `parameter`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    mean: Option<Duration>,
    sample_size: u64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for ~0.2 s of measurement.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, self.sample_size as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(t1.elapsed() / iters as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id, b.mean);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: None,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id, b.mean);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: None,
            sample_size: 100,
        };
        f(&mut b);
        self.report("", &id, b.mean);
        self
    }

    fn report(&self, group: &str, id: &BenchmarkId, mean: Option<Duration>) {
        let name = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match mean {
            Some(d) => println!("bench: {name:<48} {d:>12.3?}/iter"),
            None => println!("bench: {name:<48} (no measurement)"),
        }
    }
}

/// Bundles benchmark functions into one group runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
