//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the Criterion API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple warm-up + timed-batch loop reporting the mean
//! wall-clock time per iteration — no statistics, outlier analysis, or
//! HTML reports. Good enough to compare orders of magnitude and to keep
//! `cargo bench` runnable offline; swap in real Criterion when the
//! registry is reachable for publication-quality numbers.
//!
//! # Machine-readable results
//!
//! When run under `cargo bench` (i.e. with the `--bench` argument cargo
//! passes to bench executables), every measurement is also merged into a
//! flat JSON map `{"group/name": mean_nanoseconds}` at
//! `BENCH_results.json` in the workspace root (override the path with the
//! `BENCH_RESULTS_PATH` environment variable). Successive bench binaries
//! merge into the same file, so one `cargo bench` run accumulates the
//! whole suite — the perf-trajectory baseline the repo tracks in git.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::fmt;
use std::hint;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` measured at `parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier varying only by `parameter`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    mean: Option<Duration>,
    sample_size: u64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for ~0.2 s of measurement.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, self.sample_size as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = Some(t1.elapsed() / iters as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id, b.mean);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: None,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id, b.mean);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: RefCell<Vec<(String, u128)>>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: None,
            sample_size: 100,
        };
        f(&mut b);
        self.report("", &id, b.mean);
        self
    }

    fn report(&self, group: &str, id: &BenchmarkId, mean: Option<Duration>) {
        let name = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match mean {
            Some(d) => {
                println!("bench: {name:<48} {d:>12.3?}/iter");
                self.results.borrow_mut().push((name, d.as_nanos()));
            }
            None => println!("bench: {name:<48} (no measurement)"),
        }
    }

    /// Writes the collected results to [`results_path`] if this process
    /// was launched by `cargo bench` (cargo passes `--bench` to bench
    /// executables). Called by [`criterion_main!`]; unit tests invoking
    /// groups manually never touch the filesystem.
    pub fn maybe_write_results(&self) {
        if std::env::args().any(|a| a == "--bench") {
            let path = results_path();
            if let Err(e) = self.write_results_to(&path) {
                eprintln!("criterion shim: cannot write {}: {e}", path.display());
            }
        }
    }

    /// Merges the collected results into the flat JSON map at `path`
    /// (creating it if absent) — existing entries for other benches are
    /// kept, re-measured entries are overwritten.
    pub fn write_results_to(&self, path: &Path) -> std::io::Result<()> {
        let mut merged = std::fs::read_to_string(path)
            .map(|text| parse_flat_json(&text))
            .unwrap_or_default();
        for (name, ns) in self.results.borrow().iter() {
            merged.retain(|(n, _)| n != name);
            merged.push((name.clone(), *ns));
        }
        merged.sort();
        std::fs::write(path, render_flat_json(&merged))
    }
}

/// The destination for machine-readable results: `BENCH_RESULTS_PATH` if
/// set, else `BENCH_results.json` in the nearest ancestor directory that
/// holds a `Cargo.lock` (the workspace root — `cargo bench` runs bench
/// executables from the package directory), else the current directory.
pub fn results_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_RESULTS_PATH") {
        return PathBuf::from(p);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join("BENCH_results.json");
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd.join("BENCH_results.json"),
        }
    }
}

/// Parses the flat `{"name": number}` JSON this shim writes. Forgiving:
/// anything that does not look like a string key and an integer value is
/// skipped rather than erroring, so a hand-edited file cannot wedge
/// benching.
pub fn parse_flat_json(text: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let name = &rest[..close];
        rest = &rest[close + 1..];
        let Some(colon) = rest.find(':') else { break };
        let after = rest[colon + 1..].trim_start();
        if let Some(in_string) = after.strip_prefix('"') {
            // quoted (non-integer) value: consume the whole string token so
            // its content cannot be mistaken for the next key
            let skip = in_string.find('"').map_or(in_string.len(), |i| i + 1);
            rest = &in_string[skip..];
            continue;
        }
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(ns) = digits.parse::<u128>() {
            out.push((name.to_owned(), ns));
        }
        rest = after;
    }
    out
}

/// Renders the flat JSON map, one `"name": ns` entry per line. Quotes and
/// backslashes in names are replaced with `_` rather than escaped — the
/// parser above is escape-free, and bench names never legitimately contain
/// either, so sanitising keeps round-trips lossless for every real name.
pub fn render_flat_json(entries: &[(String, u128)]) -> String {
    let mut s = String::from("{\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let clean: String = name
            .chars()
            .map(|c| if c == '"' || c == '\\' { '_' } else { c })
            .collect();
        s.push_str(&format!(
            "  \"{}\": {}{}\n",
            clean,
            ns,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Bundles benchmark functions into one group runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.maybe_write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn flat_json_roundtrips() {
        let entries = vec![
            ("flow/tiny64".to_owned(), 123_456u128),
            ("par_matrix/jobs/4".to_owned(), 7u128),
        ];
        let text = render_flat_json(&entries);
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert_eq!(parse_flat_json(&text), entries);
        assert_eq!(parse_flat_json("{}"), Vec::new());
        // junk values are skipped, not fatal
        assert_eq!(
            parse_flat_json("{\"a\": oops, \"b\": 9}"),
            vec![("b".to_owned(), 9)]
        );
        // a quoted value (hand-edited file) must not desync key/value
        // pairing: its content is skipped, later entries survive intact
        assert_eq!(
            parse_flat_json("{\"a\": \"5\", \"b\": 9}"),
            vec![("b".to_owned(), 9)]
        );
        // hostile names are sanitised so the round-trip cannot corrupt
        // the merge on the next bench run
        let weird = vec![("a\"b\\c".to_owned(), 1u128), ("normal".to_owned(), 2)];
        assert_eq!(
            parse_flat_json(&render_flat_json(&weird)),
            vec![("a_b_c".to_owned(), 1), ("normal".to_owned(), 2)]
        );
    }

    #[test]
    fn results_merge_keeps_other_benches_and_overwrites_same() {
        let dir = std::env::temp_dir().join("criterion_shim_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let _ = std::fs::remove_file(&path);

        let c = Criterion::default();
        c.results.borrow_mut().push(("g/a".to_owned(), 100));
        c.results.borrow_mut().push(("g/b".to_owned(), 200));
        c.write_results_to(&path).unwrap();

        let c2 = Criterion::default();
        c2.results.borrow_mut().push(("g/b".to_owned(), 999));
        c2.results.borrow_mut().push(("h/c".to_owned(), 300));
        c2.write_results_to(&path).unwrap();

        let merged = parse_flat_json(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(
            merged,
            vec![
                ("g/a".to_owned(), 100),
                ("g/b".to_owned(), 999),
                ("h/c".to_owned(), 300),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }
}
