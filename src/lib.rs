//! # Set-covering reseeding for functional BIST
//!
//! A full Rust reproduction of *"On Applying the Set Covering Model to
//! Reseeding"* (Chiusano, Di Carlo, Prinetto, Wunderlich — DATE 2001):
//! computing a minimum set of TPG reseeding triplets `(δ, θ, τ)` that
//! covers all ATPG-detectable stuck-at faults of a unit under test, by
//! reduction to unicost set covering.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`bits`] | `fbist-bits` | bit vectors, cubes, bit matrices |
//! | [`analyze`] | `fbist-analyze` | static analysis, implications, untestability |
//! | [`netlist`] | `fbist-netlist` | gate-level IR, `.bench` I/O, full-scan |
//! | [`genbench`] | `fbist-genbench` | synthetic ISCAS-like circuits |
//! | [`sim`] | `fbist-sim` | packed / sequential / 3-valued / event simulation |
//! | [`fault`] | `fbist-fault` | stuck-at faults, collapsing, fault simulation |
//! | [`atpg`] | `fbist-atpg` | PODEM + SCOAP + full ATPG engine |
//! | [`tpg`] | `fbist-tpg` | accumulator & LFSR pattern generators |
//! | [`setcover`] | `fbist-setcover` | reduction + exact/greedy set covering |
//! | [`store`] | `fbist-store` | content-addressed artifact store for flow stages |
//! | [`reseed`] | `reseed-core` | the paper's flow, sweep, GATSBY baseline |
//!
//! # Quickstart
//!
//! ```
//! use set_covering_reseeding::prelude::*;
//!
//! // synthesise a benchmark mimic, run the full Figure-1 flow
//! let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 1);
//! let report = ReseedingFlow::new(&netlist)?
//!     .run(&FlowConfig::new(TpgKind::Adder).with_tau(31));
//! assert!(report.covers_all_target_faults());
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fbist_analyze as analyze;
pub use fbist_atpg as atpg;
pub use fbist_bits as bits;
pub use fbist_fault as fault;
pub use fbist_genbench as genbench;
pub use fbist_netlist as netlist;
pub use fbist_setcover as setcover;
pub use fbist_sim as sim;
pub use fbist_store as store;
pub use fbist_tpg as tpg;
pub use reseed_core as reseed;

/// The most common imports in one place.
pub mod prelude {
    pub use fbist_analyze::{analyze, untestable_faults, AnalysisReport, Severity};
    pub use fbist_atpg::{compact_cubes, Atpg, AtpgConfig, AtpgResult, FillMode};
    pub use fbist_bits::{BitMatrix, BitVec, Cube, Trit};
    pub use fbist_fault::{checkpoint_faults, Fault, FaultList, FaultSimulator};
    pub use fbist_genbench::generate as genbench_generate;
    pub use fbist_genbench::profile as genbench_profile;
    pub use fbist_netlist::{bench, embedded, full_scan, GateKind, Netlist};
    pub use fbist_setcover::{
        solve, Backend, DetectionMatrix, FirstDetectionMatrix, SolveConfig, SparseMatrix,
    };
    pub use fbist_sim::{Misr, PackedSimulator, SeqSimulator};
    pub use fbist_store::{ArtifactStore, StageKey};
    pub use fbist_tpg::{
        AccumulatorOp, AccumulatorTpg, Lfsr, MultiPolyLfsr, PatternGenerator, Triplet,
    };
    pub use reseed_core::{
        tradeoff_sweep, tradeoff_sweep_from_base, tradeoff_sweep_with, verify_report, AtpgBase,
        FlowConfig, Gatsby, GatsbyConfig, InitialReseedingBuilder, MatrixBuild, ReseedingFlow,
        ReseedingReport, SimdWidth, StageCache, SweepEngine, TpgKind,
    };
}
