//! Quickstart: the whole paper in ~30 lines.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Takes a small benchmark circuit, runs the complete DATE 2001 flow
//! (ATPG → detection matrix → essentiality/dominance reduction → exact set
//! covering → trimming) with an adder-accumulator TPG, and prints the
//! reseeding solution.

use set_covering_reseeding::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A unit under test: a synthetic ISCAS-like circuit (use
    //    `bench::parse` to load your own .bench netlist instead).
    let profile = genbench_profile("mid256").expect("built-in profile");
    let netlist = genbench_generate(&profile, 1);
    println!("UUT: {netlist}");

    // 2. Configure: adder accumulator as TPG, 32 patterns per triplet.
    let config = FlowConfig::new(TpgKind::Adder).with_tau(31);

    // 3. Run the flow.
    let report = ReseedingFlow::new(&netlist)?.run(&config);

    // 4. Inspect the solution.
    println!("{report}");
    println!(
        "  initial matrix {} x {}  →  residual {} x {}",
        report.initial_triplets, report.target_faults, report.residual.0, report.residual.1
    );
    println!(
        "  solution: {} triplets = {} necessary + {} solver-chosen (optimal: {})",
        report.triplet_count(),
        report.necessary_count(),
        report.solver_count(),
        report.solution_optimal
    );
    println!("  global test length: {}", report.test_length());
    println!("  seed ROM: {} bits", report.rom_bits());
    for (i, t) in report.selected.iter().take(5).enumerate() {
        println!(
            "  triplet {i}: {} — {} new faults in {} patterns",
            t.triplet, t.new_faults, t.test_length
        );
    }
    assert!(report.covers_all_target_faults());
    Ok(())
}
