//! Bringing your own TPG: implement [`PatternGenerator`] for a custom
//! functional unit and run the identical set-covering flow on it.
//!
//! Run with `cargo run --release --example custom_tpg`.
//!
//! The paper stresses that the method "is not restricted to any specific
//! modules M1 but can work with any type of functions". Here we model a
//! *Gray-code counter with XOR input mixing* — a unit none of the built-in
//! kinds covers — and feed it to the detection-matrix / reduction / exact
//! solver pipeline directly.

use set_covering_reseeding::prelude::*;
use set_covering_reseeding::setcover::{reduce, solve_with, ReducerConfig};

/// A Gray-code-sequencing TPG: the state register counts, the emitted
/// pattern is `gray(S) ⊕ θ`.
///
/// The paper's τ=0 convention is honoured: pattern 0 is θ itself (the
/// input register content drives the UUT first).
#[derive(Debug)]
struct GrayMixTpg {
    width: usize,
}

impl PatternGenerator for GrayMixTpg {
    fn width(&self) -> usize {
        self.width
    }

    fn name(&self) -> &str {
        "graymix"
    }

    fn expand(&self, triplet: &Triplet) -> Vec<BitVec> {
        assert_eq!(triplet.width(), self.width);
        let one = BitVec::from_u64(self.width, 1);
        let mut out = Vec::with_capacity(triplet.pattern_count());
        out.push(triplet.theta().clone());
        let mut state = triplet.delta().clone();
        for _ in 0..triplet.tau() {
            state = state.wrapping_add(&one);
            let gray = &state ^ &state.shr1();
            out.push(&gray ^ triplet.theta());
        }
        out
    }

    fn seed_for(&self, pattern: &BitVec, word_source: &mut dyn FnMut() -> u64) -> Triplet {
        assert_eq!(pattern.width(), self.width);
        let delta = BitVec::random_with(self.width, &mut *word_source);
        Triplet::new(delta, pattern.clone(), 0)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = genbench_generate(&genbench_profile("tiny64").unwrap(), 3);
    println!("UUT: {netlist}");
    let tpg = GrayMixTpg {
        width: netlist.inputs().len(),
    };

    // (ATPGTS, F) exactly as the standard flow does it
    let universe = FaultList::collapsed(&netlist);
    let atpg_result = Atpg::new(&netlist)?.run(&universe, &AtpgConfig::default());
    let target = universe.subset(&atpg_result.detected_ids());

    // initial reseeding with the custom TPG
    let flow = ReseedingFlow::new(&netlist)?;
    let (triplets, matrix) = flow.builder().matrix_for(
        &tpg,
        &atpg_result.patterns,
        &target,
        31,
        0xC0FFEE,
        0,
        MatrixBuild::Auto,
        SimdWidth::Auto,
    );
    println!(
        "custom-TPG detection matrix: {} x {} (density {:.3})",
        matrix.rows(),
        matrix.cols(),
        matrix.density()
    );

    // reduce + exact solve
    let reduction = reduce(&matrix, &ReducerConfig::default());
    let solution = solve_with(&matrix, &SolveConfig::default(), &reduction);
    println!("cover: {solution}");

    // verify by replay
    let chosen: Vec<usize> = solution.rows();
    let mut patterns = Vec::new();
    for &row in &chosen {
        patterns.extend(tpg.expand(&triplets[row]));
    }
    let detected = FaultSimulator::new(&netlist)?.detects(&patterns, &target);
    println!(
        "replay: {} / {} faults with {} triplets ({} patterns)",
        detected.count_ones(),
        target.len(),
        chosen.len(),
        patterns.len()
    );
    assert_eq!(detected.count_ones(), target.len());
    Ok(())
}
