//! Functional BIST end to end, step by step.
//!
//! Run with `cargo run --release --example functional_bist`.
//!
//! This example walks the paper's Figure-1 pipeline *manually* — every
//! intermediate artefact (fault list, ATPG test set, initial reseeding,
//! detection matrix, reduction log, residual solve, final triplets) is
//! produced and examined explicitly, including the final independent
//! verification that replaying the selected triplets through the TPG
//! really detects every target fault.

use set_covering_reseeding::prelude::*;

use set_covering_reseeding::setcover::{reduce, solve_with, ReducerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sequential circuit: generate, then full-scan (the paper tests the
    // full-scan versions of the ISCAS'89 circuits).
    let netlist = embedded::johnson3();
    println!("original: {netlist}");
    let scan = full_scan(&netlist);
    let uut = scan.combinational();
    println!(
        "full-scan core: {} ({} scan cells)",
        uut,
        scan.scan_cell_count()
    );

    // --- fault universe -------------------------------------------------
    let universe = FaultList::collapsed(uut);
    println!("collapsed fault universe: {} faults", universe.len());

    // --- ATPG: the (ATPGTS, F) pair --------------------------------------
    let atpg = Atpg::new(uut)?;
    let atpg_result = atpg.run(&universe, &AtpgConfig::default());
    let target = universe.subset(&atpg_result.detected_ids());
    println!(
        "ATPG: {} patterns, coverage {:.1} %, F = {} faults",
        atpg_result.patterns.len(),
        100.0 * atpg_result.coverage(),
        target.len()
    );

    // --- initial reseeding + detection matrix ----------------------------
    let config = FlowConfig::new(TpgKind::Subtracter).with_tau(15);
    let flow = ReseedingFlow::new(uut)?;
    let initial = flow.builder().build(&config);
    println!(
        "initial reseeding: {} triplets, matrix {} x {} (density {:.3})",
        initial.triplet_count(),
        initial.matrix.rows(),
        initial.matrix.cols(),
        initial.matrix.density()
    );

    // --- reduction (essentiality + row dominance) ------------------------
    let reduction = reduce(&initial.matrix, &ReducerConfig::default());
    println!(
        "reduction: {} essential triplets, residual {} x {}, {} events, {} iterations",
        reduction.essential_rows.len(),
        reduction.residual_size().0,
        reduction.residual_size().1,
        reduction.log.len(),
        reduction.iterations
    );

    // --- residual solve (the LINGO role) ---------------------------------
    let solution = solve_with(&initial.matrix, &config.solve, &reduction);
    println!("cover: {solution}");

    // --- full flow (same thing in one call) + verification ---------------
    let report = flow.finish(&config, &initial);
    println!("{report}");

    // independent check: replay the chosen triplets through the TPG and
    // fault-simulate from scratch
    let tpg = TpgKind::Subtracter.build(uut.inputs().len());
    let mut patterns = Vec::new();
    for sel in &report.selected {
        patterns.extend(tpg.expand(&sel.triplet));
    }
    let fsim = FaultSimulator::new(uut)?;
    let detected = fsim.detects(&patterns, &target);
    println!(
        "verification replay: {} / {} target faults detected by {} patterns",
        detected.count_ones(),
        target.len(),
        patterns.len()
    );
    assert_eq!(detected.count_ones(), target.len());
    Ok(())
}
