//! The Figure-2 trade-off: number of reseedings vs. global test length.
//!
//! Run with `cargo run --release --example tradeoff_sweep`.
//!
//! Sweeps the evolution length τ on an s1238 mimic with the adder
//! accumulator (the paper's Figure-2 setup) and prints the staircase, the
//! ROM cost under both storage models, and the crossover analysis.

use set_covering_reseeding::prelude::*;
use set_covering_reseeding::reseed::{solution_rom_bits, AreaModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = genbench_profile("s1238")
        .expect("paper circuit")
        .scaled(0.25);
    let netlist = genbench_generate(&profile, 1);
    println!("UUT: {netlist}");

    let config = FlowConfig::new(TpgKind::Adder);
    let taus = [0usize, 3, 7, 15, 31, 63, 127, 255];
    let curve = tradeoff_sweep(&netlist, &config, &taus)?;

    println!(
        "\n{:>6} {:>10} {:>12} {:>14} {:>14}",
        "tau", "#triplets", "test_length", "rom(per-τ)", "rom(common-τ)"
    );
    for point in &curve {
        let triplets: Vec<Triplet> = point
            .report
            .selected
            .iter()
            .map(|s| s.triplet.clone())
            .collect();
        println!(
            "{:>6} {:>10} {:>12} {:>14} {:>14}",
            point.tau,
            point.triplets,
            point.test_length,
            solution_rom_bits(&triplets, AreaModel::PerTripletTau),
            solution_rom_bits(&triplets, AreaModel::CommonTau),
        );
    }

    // the paper's observation: a low number of reseedings needs a larger
    // test length; many reseedings shorten the test but cost ROM area
    let first = &curve[0];
    let last = &curve[curve.len() - 1];
    println!(
        "\ntrade-off: {}x fewer triplets for {:.1}x the test length",
        first.triplets as f64 / last.triplets.max(1) as f64,
        last.test_length as f64 / first.test_length.max(1) as f64
    );
    // guaranteed at every point: full target-fault coverage. (The triplet
    // count usually shrinks as τ grows — it does on this instance — but
    // the greedy/local-search solver does not guarantee monotonicity, so
    // the example no longer asserts it.)
    assert!(
        curve.iter().all(|p| p.report.covers_all_target_faults()),
        "every sweep point must cover all target faults"
    );
    Ok(())
}
