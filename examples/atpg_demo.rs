//! The ATPG substrate on its own: SCOAP testability, PODEM cubes,
//! redundancy identification and compaction.
//!
//! Run with `cargo run --release --example atpg_demo`.

use set_covering_reseeding::atpg::testability::Testability;
use set_covering_reseeding::atpg::{Podem, PodemOutcome};
use set_covering_reseeding::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a circuit with a known redundancy: y = OR(a, NOT a) is constant 1
    let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
na = NOT(a)
y  = OR(a, na)
m  = AND(a, b)
z  = XOR(m, c)
";
    let netlist = bench::parse_named(src, "demo")?;
    println!("UUT: {netlist}");

    // --- SCOAP testability ------------------------------------------------
    let t = Testability::analyze(&netlist)?;
    println!("\nSCOAP (CC0 / CC1 / CO):");
    for (id, gate) in netlist.iter() {
        println!(
            "  {:<4} {:>10} {:>5} / {:<5} / {}",
            gate.name(),
            gate.kind().to_string(),
            t.cc0(id),
            t.cc1(id),
            t.co(id)
        );
    }

    // --- PODEM per fault ---------------------------------------------------
    let faults = FaultList::collapsed(&netlist);
    let podem = Podem::new(&netlist)?;
    println!("\nPODEM over {} collapsed faults:", faults.len());
    let mut untestable = 0;
    for (_, fault) in faults.iter() {
        match podem.generate(fault) {
            PodemOutcome::Test(cube) => {
                println!("  {:<14} test cube {}", fault.describe(&netlist), cube)
            }
            PodemOutcome::Untestable => {
                println!("  {:<14} UNTESTABLE (redundant)", fault.describe(&netlist));
                untestable += 1;
            }
            PodemOutcome::Aborted => println!("  {:<14} aborted", fault.describe(&netlist)),
        }
    }
    assert!(untestable >= 1, "y stuck-at-1 must be proven redundant");

    // --- the full engine with compaction ------------------------------------
    let atpg = Atpg::new(&netlist)?;
    let result = atpg.run(&faults, &AtpgConfig::default());
    println!(
        "\nfull ATPG: {} patterns, coverage {:.1} %, efficiency {:.1} %, {} untestable",
        result.patterns.len(),
        100.0 * result.coverage(),
        100.0 * result.efficiency(),
        result.untestable.len()
    );
    for (i, p) in result.patterns.iter().enumerate() {
        println!("  p{i}: {p}");
    }
    Ok(())
}
