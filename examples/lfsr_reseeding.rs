//! Classical LFSR reseeding through the set-covering lens.
//!
//! Run with `cargo run --release --example lfsr_reseeding`.
//!
//! The paper's title points back at the original reseeding literature
//! (Hellebrand et al.): store LFSR seeds instead of test patterns. This
//! example runs the identical set-covering machinery with single- and
//! multiple-polynomial LFSRs as TPG and compares the encodings against the
//! accumulator TPGs and against raw pattern storage — the storage
//! trade-off that motivated reseeding in the first place.

use set_covering_reseeding::prelude::*;
use set_covering_reseeding::reseed::{solution_rom_bits, AreaModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = genbench_profile("s953").expect("paper circuit").scaled(0.2);
    let netlist = genbench_generate(&profile, 1);
    println!("UUT: {netlist}\n");
    let width = netlist.inputs().len();

    let flow = ReseedingFlow::new(&netlist)?;
    println!(
        "{:<8} {:>9} {:>11} {:>10} {:>12}",
        "tpg", "triplets", "test_length", "rom_bits", "vs raw store"
    );

    let mut raw_bits = None;
    for kind in [
        TpgKind::Lfsr,
        TpgKind::MultiPolyLfsr,
        TpgKind::Adder,
        TpgKind::Subtracter,
        TpgKind::Multiplier,
    ] {
        let report = flow.run(&FlowConfig::new(kind).with_tau(63));
        assert!(report.covers_all_target_faults());
        let triplets: Vec<Triplet> = report.selected.iter().map(|s| s.triplet.clone()).collect();
        let rom = solution_rom_bits(&triplets, AreaModel::PerTripletTau);
        // raw storage baseline: the ATPG test set, one full pattern each
        let raw = raw_bits.get_or_insert_with(|| report.initial_triplets * width);
        println!(
            "{:<8} {:>9} {:>11} {:>10} {:>11.2}x",
            kind.name(),
            report.triplet_count(),
            report.test_length(),
            rom,
            rom as f64 / *raw as f64,
        );
    }
    println!(
        "\nraw ATPG pattern storage: {} bits ({} patterns × {width} inputs)",
        raw_bits.unwrap(),
        raw_bits.unwrap() / width
    );
    println!("ratios < 1.0 mean the reseeding encoding beats pattern storage.");
    Ok(())
}
