//! Unicost set covering for reseeding computation.
//!
//! This crate implements the optimization core of the paper: given a
//! Boolean *Detection Matrix* `D` (rows = candidate reseeding triplets,
//! columns = faults), find a minimum-cardinality set of rows whose union
//! covers every column:
//!
//! ```text
//! minimise  Σᵢ xᵢ      subject to  D·x ≥ 1,  x ∈ {0,1}^M
//! ```
//!
//! The solution pipeline mirrors the paper's Figure 1:
//!
//! 1. [`reduce`] — iterate *essentiality* (a column covered by exactly one
//!    row forces that row) and *dominance* (a row whose column set is
//!    contained in another's is deleted; optionally the dual reduction on
//!    columns) until fixpoint, with a full event log;
//! 2. the residual matrix — usually tiny — goes to an exact
//!    branch-and-bound ([`ExactSolver`], standing in for the commercial
//!    LINGO package), or to the Chvátal greedy heuristic
//!    ([`greedy_cover`]) for very large instances;
//! 3. the final [`CoverSolution`] distinguishes *necessary* (essential)
//!    rows from solver-chosen rows, exactly like the paper's Table 2.
//!
//! [`lp`] exports instances in LP textual format for use with external ILP
//! solvers, preserving the paper's LINGO workflow.
//!
//! # Scaling: the sparse incremental engine
//!
//! Every solver and the reducer exist in two implementations. The *dense*
//! paths scan packed `BitVec` words and win on small instances; the
//! *sparse* paths walk a [`SparseMatrix`] (CSR + CSC adjacency built once
//! from the [`DetectionMatrix`]) with incremental bookkeeping — a bucket
//! priority queue with exact gain decrements for the greedy, per-column
//! cover counts and candidate restriction through column adjacency for the
//! reducer, and incremental cover counts plus a precomputed branch order
//! for the branch-and-bound — and win asymptotically on the large, sparse
//! matrices real circuits produce. [`Backend`] selects between them;
//! `Backend::Auto` (the default everywhere) switches on instance size.
//!
//! **Equivalence guarantee:** the two implementations are *bit-identical*:
//! same cover rows in the same order, same reduction event log, same
//! branch-and-bound node count. The backend is purely a throughput knob —
//! like the workspace's `--jobs` contract — and the root-level
//! `sparse_dense_equivalence` suite pins this for every genbench profile ×
//! TPG family.
//!
//! # Example
//!
//! ```
//! use fbist_setcover::{DetectionMatrix, solve, SolveConfig};
//! use fbist_bits::BitVec;
//!
//! // 4 triplets × 4 faults; optimal cover is rows {1, 2}.
//! let rows: Vec<BitVec> = ["1100", "0111", "1001", "0010"]
//!     .iter().map(|s| s.parse().unwrap()).collect();
//! let m = DetectionMatrix::from_rows(4, rows);
//! let sol = solve(&m, &SolveConfig::default());
//! assert_eq!(sol.cardinality(), 2);
//! assert!(m.is_cover(&sol.rows()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod first;
pub mod generate;
mod greedy;
mod local;
pub mod lp;
mod matrix;
mod reduce;
mod solution;
mod sparse;

pub use exact::{ExactConfig, ExactResult, ExactSolver};
pub use first::FirstDetectionMatrix;
pub use greedy::{greedy_cover, greedy_cover_with};
pub use local::{eliminate_redundant, local_search_cover, LocalSearchConfig};
pub use matrix::DetectionMatrix;
pub use reduce::{reduce, reduce_with, ReducerConfig, Reduction, ReductionEvent};
pub use solution::{solve, solve_with, CoverSolution, Engine, SolveConfig};
pub use sparse::{Backend, SparseMatrix};
