//! The first-detection matrix: one simulation, every τ's Detection Matrix.

use std::fmt;

use fbist_bits::BitMatrix;

use crate::matrix::DetectionMatrix;

/// A Detection Matrix augmented with *when*: for every `(triplet, fault)`
/// pair that is ever detected, the index of the earliest expanded pattern
/// of the triplet's stream that detects the fault.
///
/// # Why thresholding is exact
///
/// A [`DetectionMatrix`] at evolution length `τ` has cell `(i, j)` set iff
/// *some* pattern of triplet `i`'s `τ + 1`-pattern expansion detects fault
/// `j`. Pattern generators expand **prefix-stably**: pattern `k` of a
/// triplet's stream is a pure function of `(δ, θ, k)`, independent of `τ`
/// (`τ` only says where the stream stops — see the
/// `fbist_tpg::PatternGenerator` contract). Therefore the `τ`-expansion is
/// exactly the first `τ + 1` patterns of any longer expansion, and
///
/// > cell `(i, j)` at `τ`  ⇔  `first[i][j] ≤ τ`
///
/// where `first[i][j]` is the earliest detecting index in the longest
/// stream simulated. One fault-simulation pass at `τ_max` thus determines
/// the Detection Matrix of **every** `τ ≤ τ_max` — [`at_tau`] derives them
/// by comparing stored indices against `τ`, without touching a simulator,
/// and the result is bit-identical to re-simulating at `τ` (pinned by
/// `tests/sweep_equivalence.rs` across every profile × TPG × jobs ×
/// backend × matrix-build combination).
///
/// [`at_tau`]: FirstDetectionMatrix::at_tau
///
/// # Storage
///
/// Detected pairs only, in CSR form: per row a sorted slice of
/// `(column, first_index)` entries. Never-detected pairs are simply
/// absent, so the sentinel used by the fault simulator (`u32::MAX`, see
/// [`NO_DETECTION`]) never needs storing, and [`at_tau`]'s derivation
/// work is `O(nnz)` threshold comparisons on top of allocating the
/// (inherently dense) output `DetectionMatrix`.
///
/// [`NO_DETECTION`]: FirstDetectionMatrix::NO_DETECTION
///
/// # Example
///
/// ```
/// use fbist_setcover::FirstDetectionMatrix;
///
/// const NONE: u32 = FirstDetectionMatrix::NO_DETECTION;
/// // 2 triplets × 3 faults: row 0 detects fault 0 at pattern 0 and
/// // fault 2 at pattern 5; row 1 detects fault 1 at pattern 2.
/// let m = FirstDetectionMatrix::from_rows(3, vec![vec![0, NONE, 5], vec![NONE, 2, NONE]]);
/// assert_eq!(m.nnz(), 3);
/// let at0 = m.at_tau(0); // only pattern 0 exists
/// assert!(at0.get(0, 0) && !at0.get(0, 2) && !at0.get(1, 1));
/// let at5 = m.at_tau(5); // all first detections in range
/// assert!(at5.get(0, 0) && at5.get(0, 2) && at5.get(1, 1));
/// assert_eq!(m.first(0, 2), Some(5));
/// assert_eq!(m.first(1, 0), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct FirstDetectionMatrix {
    rows: usize,
    cols: usize,
    /// CSR row boundaries: row `r`'s entries live at
    /// `row_ptr[r]..row_ptr[r + 1]` in `col_idx`/`first`.
    row_ptr: Vec<usize>,
    /// Column (fault) index per entry, ascending within each row.
    col_idx: Vec<u32>,
    /// Earliest detecting pattern index per entry.
    first: Vec<u32>,
}

impl FirstDetectionMatrix {
    /// Sentinel "never detected" index accepted by [`from_rows`] — the
    /// same value `fbist_fault::FaultSimulator::NO_DETECTION` reports, so
    /// simulator output feeds in unchanged.
    ///
    /// [`from_rows`]: FirstDetectionMatrix::from_rows
    pub const NO_DETECTION: u32 = u32::MAX;

    /// Builds the matrix from dense per-row first-detection indices
    /// ([`NO_DETECTION`](Self::NO_DETECTION) = the pair is never
    /// detected), compressing to CSR.
    ///
    /// # Panics
    ///
    /// Panics if a row's length differs from `cols` (naming the offending
    /// row and both widths) or `cols` does not fit `u32`.
    pub fn from_rows(cols: usize, rows: Vec<Vec<u32>>) -> FirstDetectionMatrix {
        assert!(
            u32::try_from(cols).is_ok(),
            "FirstDetectionMatrix::from_rows: {cols} columns do not fit u32"
        );
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut first = Vec::new();
        row_ptr.push(0);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "FirstDetectionMatrix::from_rows: row {r} has {} entries but \
                 the matrix has {cols} columns",
                row.len()
            );
            for (c, &idx) in row.iter().enumerate() {
                if idx != Self::NO_DETECTION {
                    col_idx.push(c as u32);
                    first.push(idx);
                }
            }
            row_ptr.push(col_idx.len());
        }
        FirstDetectionMatrix {
            rows: rows.len(),
            cols,
            row_ptr,
            col_idx,
            first,
        }
    }

    /// Rebuilds a matrix from raw CSR parts — the inverse of
    /// [`csr_parts`](Self::csr_parts), used by the artifact store to
    /// deserialise without densifying. Every structural invariant is
    /// validated, so untrusted (on-disk) bytes fail with a message
    /// instead of corrupting downstream thresholding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong
    /// `row_ptr` length or endpoints, non-monotone `row_ptr`, mismatched
    /// `col_idx`/`first` lengths, columns out of range or not strictly
    /// ascending within a row, or a stored
    /// [`NO_DETECTION`](Self::NO_DETECTION) sentinel (never-detected
    /// pairs must be absent, not stored).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        first: Vec<u32>,
    ) -> Result<FirstDetectionMatrix, String> {
        if u32::try_from(cols).is_err() {
            return Err(format!("{cols} columns do not fit u32"));
        }
        if row_ptr.len() != rows + 1 {
            return Err(format!(
                "row_ptr has {} entries for {rows} rows (need rows + 1)",
                row_ptr.len()
            ));
        }
        if row_ptr[0] != 0 {
            return Err(format!("row_ptr must start at 0, found {}", row_ptr[0]));
        }
        if *row_ptr.last().expect("non-empty: rows + 1 ≥ 1") != col_idx.len() {
            return Err(format!(
                "row_ptr ends at {} but there are {} entries",
                row_ptr.last().expect("non-empty"),
                col_idx.len()
            ));
        }
        if col_idx.len() != first.len() {
            return Err(format!(
                "{} columns vs {} first-detection indices",
                col_idx.len(),
                first.len()
            ));
        }
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi {
                return Err(format!("row_ptr not monotone at row {r} ({lo} > {hi})"));
            }
            let mut prev: Option<u32> = None;
            for i in lo..hi {
                let c = col_idx[i];
                if c as usize >= cols {
                    return Err(format!("row {r}: column {c} out of range ({cols} columns)"));
                }
                if prev.is_some_and(|p| p >= c) {
                    return Err(format!("row {r}: columns not strictly ascending at {c}"));
                }
                if first[i] == Self::NO_DETECTION {
                    return Err(format!("row {r}, column {c}: stored NO_DETECTION sentinel"));
                }
                prev = Some(c);
            }
        }
        Ok(FirstDetectionMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            first,
        })
    }

    /// The raw CSR storage `(row_ptr, col_idx, first)` — the exact
    /// internal representation, for serialisation.
    /// [`from_csr`](Self::from_csr) round-trips it.
    pub fn csr_parts(&self) -> (&[usize], &[u32], &[u32]) {
        (&self.row_ptr, &self.col_idx, &self.first)
    }

    /// Number of rows (triplets).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (faults).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (ever-detected) cells.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row `r`'s CSR slices: `(columns, first_indices)`, columns
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range row.
    pub fn row_entries(&self, row: usize) -> (&[u32], &[u32]) {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        (&self.col_idx[lo..hi], &self.first[lo..hi])
    }

    /// The earliest pattern index at which `row` detects `col`, or `None`
    /// if it never does.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn first(&self, row: usize, col: usize) -> Option<u32> {
        assert!(col < self.cols, "column {col} out of range");
        let (cols, firsts) = self.row_entries(row);
        cols.binary_search(&(col as u32)).ok().map(|i| firsts[i])
    }

    /// The largest stored first-detection index (`None` for an all-zero
    /// matrix). `at_tau(max_first())` is the densest derivable matrix;
    /// larger `τ` cannot add a cell.
    pub fn max_first(&self) -> Option<u32> {
        self.first.iter().copied().max()
    }

    /// Derives the Detection Matrix at evolution length `tau` by
    /// thresholding: cell `(i, j)` is set iff the stored first-detection
    /// index is `≤ tau`. No simulation happens — see the type-level docs
    /// for why this is exactly the matrix a fresh simulation at `tau`
    /// would produce, provided `tau` does not exceed the `τ_max` the
    /// matrix was simulated at (entries beyond `τ_max` were never
    /// observed, so larger `tau` silently saturates at the `τ_max`
    /// matrix).
    pub fn at_tau(&self, tau: usize) -> DetectionMatrix {
        let mut m = BitMatrix::new(self.rows, self.cols);
        for row in 0..self.rows {
            let (cols, firsts) = self.row_entries(row);
            for (&c, &f) in cols.iter().zip(firsts) {
                if f as usize <= tau {
                    m.set(row, c as usize, true);
                }
            }
        }
        DetectionMatrix::from_bit_matrix(m)
    }
}

impl fmt::Debug for FirstDetectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FirstDetectionMatrix {}x{} ({} detected cells)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NONE: u32 = FirstDetectionMatrix::NO_DETECTION;

    fn sample() -> FirstDetectionMatrix {
        FirstDetectionMatrix::from_rows(
            4,
            vec![
                vec![0, 3, NONE, 7],
                vec![NONE, NONE, NONE, NONE],
                vec![2, NONE, 0, NONE],
            ],
        )
    }

    #[test]
    fn csr_shape_and_lookups() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_entries(0), (&[0u32, 1, 3][..], &[0u32, 3, 7][..]));
        assert_eq!(m.row_entries(1), (&[][..], &[][..]));
        assert_eq!(m.first(0, 1), Some(3));
        assert_eq!(m.first(0, 2), None);
        assert_eq!(m.first(2, 2), Some(0));
        assert_eq!(m.max_first(), Some(7));
    }

    #[test]
    fn thresholding_sweeps_cells_in() {
        let m = sample();
        for tau in 0..10 {
            let d = m.at_tau(tau);
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    let expect = m.first(r, c).is_some_and(|f| f as usize <= tau);
                    assert_eq!(d.get(r, c), expect, "τ={tau} ({r},{c})");
                }
            }
        }
        // τ beyond max_first saturates: no new cells can appear
        assert_eq!(
            m.at_tau(7).row_major(),
            m.at_tau(1_000_000).row_major(),
            "saturated matrices must be identical"
        );
    }

    #[test]
    fn at_tau_zero_keeps_only_initial_patterns() {
        let m = sample();
        let d = m.at_tau(0);
        assert!(d.get(0, 0) && d.get(2, 2));
        assert_eq!(d.row_major().count_ones(), 2);
    }

    #[test]
    fn empty_and_all_zero_matrices() {
        let empty = FirstDetectionMatrix::from_rows(3, Vec::new());
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.at_tau(5).rows(), 0);
        assert_eq!(empty.max_first(), None);
        let zero = FirstDetectionMatrix::from_rows(2, vec![vec![NONE, NONE]]);
        assert_eq!(zero.nnz(), 0);
        assert_eq!(zero.at_tau(100).row_weight(0), 0);
    }

    #[test]
    #[should_panic(expected = "row 1 has 2 entries but the matrix has 3 columns")]
    fn width_mismatch_panics_with_diagnostic() {
        let _ = FirstDetectionMatrix::from_rows(3, vec![vec![NONE, 1, NONE], vec![0, 1]]);
    }

    #[test]
    fn csr_parts_round_trip_through_from_csr() {
        let m = sample();
        let (row_ptr, col_idx, first) = m.csr_parts();
        let back = FirstDetectionMatrix::from_csr(
            m.rows(),
            m.cols(),
            row_ptr.to_vec(),
            col_idx.to_vec(),
            first.to_vec(),
        )
        .unwrap();
        assert_eq!(back, m);
        // the degenerate empty matrix round-trips too
        let empty = FirstDetectionMatrix::from_rows(3, Vec::new());
        let (p, c, f) = empty.csr_parts();
        let back = FirstDetectionMatrix::from_csr(0, 3, p.to_vec(), c.to_vec(), f.to_vec());
        assert_eq!(back.unwrap(), empty);
    }

    #[test]
    fn from_csr_validates_every_invariant() {
        let m = sample();
        let (p, c, f) = m.csr_parts();
        let (p, c, f) = (p.to_vec(), c.to_vec(), f.to_vec());
        // wrong row_ptr length
        assert!(
            FirstDetectionMatrix::from_csr(2, 4, p.clone(), c.clone(), f.clone())
                .unwrap_err()
                .contains("row_ptr")
        );
        // bad start
        let mut bad = p.clone();
        bad[0] = 1;
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, bad, c.clone(), f.clone())
                .unwrap_err()
                .contains("start at 0")
        );
        // bad end
        let mut bad = p.clone();
        *bad.last_mut().unwrap() += 1;
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, bad, c.clone(), f.clone())
                .unwrap_err()
                .contains("ends at")
        );
        // non-monotone
        let mut bad = p.clone();
        bad[1] = p[2] + 1;
        bad[2] = p[2];
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, bad, c.clone(), f.clone()).is_err(),
            "non-monotone row_ptr must be rejected"
        );
        // length mismatch between col_idx and first
        let mut bad = f.clone();
        bad.pop();
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, p.clone(), c.clone(), bad)
                .unwrap_err()
                .contains("first-detection indices")
        );
        // column out of range
        let mut bad = c.clone();
        bad[0] = 9;
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, p.clone(), bad, f.clone())
                .unwrap_err()
                .contains("out of range")
        );
        // duplicate / descending columns
        let mut bad = c.clone();
        bad[1] = bad[0];
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, p.clone(), bad, f.clone())
                .unwrap_err()
                .contains("ascending")
        );
        // stored sentinel
        let mut bad = f.clone();
        bad[0] = NONE;
        assert!(
            FirstDetectionMatrix::from_csr(3, 4, p.clone(), c.clone(), bad)
                .unwrap_err()
                .contains("NO_DETECTION")
        );
    }
}
