//! The Detection Matrix.

use std::fmt;

use fbist_bits::{BitMatrix, BitVec};

/// The paper's Detection Matrix: rows are candidate reseeding triplets,
/// columns are target faults, and cell `(i, j)` is 1 iff triplet `i`'s test
/// set detects fault `j`.
///
/// The matrix is immutable once built; the reduction and the solvers track
/// activity with external masks, so row/column indices remain stable and
/// can always be mapped back to triplets and faults.
///
/// # Example
///
/// ```
/// use fbist_setcover::DetectionMatrix;
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["101", "011"].iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(3, rows);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert!(m.is_cover(&[0, 1]));
/// assert!(!m.is_cover(&[0]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    rows: BitMatrix,
    cols_t: BitMatrix,
}

impl DetectionMatrix {
    /// Builds a matrix from per-row detection sets.
    ///
    /// # Panics
    ///
    /// Panics if a row's width differs from `cols`, naming the offending
    /// row index and both widths.
    pub fn from_rows(cols: usize, rows: Vec<BitVec>) -> DetectionMatrix {
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.width(),
                cols,
                "DetectionMatrix::from_rows: row {i} is {} bits wide but the \
                 matrix has {cols} columns",
                row.width()
            );
        }
        let m = BitMatrix::from_rows(cols, &rows);
        let t = m.transposed();
        DetectionMatrix { rows: m, cols_t: t }
    }

    /// Assembles a matrix from *partial* row coverages: every `(row, bits)`
    /// pair is ORed into row `row`, and rows no pair mentions stay zero.
    ///
    /// This is the reassembly half of the cross-row batched matrix build:
    /// workers fault-simulate disjoint ranges of shared 64-lane blocks and
    /// emit per-row partials, which OR together into the same matrix in any
    /// arrival order (union is associative and commutative), so the result
    /// is bit-identical for every partition of the block axis.
    ///
    /// # Panics
    ///
    /// Panics if a partial names a row `>= rows` or its width differs from
    /// `cols`, naming the offending row and both widths.
    pub fn from_partial_rows(
        rows: usize,
        cols: usize,
        partials: impl IntoIterator<Item = (usize, BitVec)>,
    ) -> DetectionMatrix {
        let mut m = BitMatrix::new(rows, cols);
        for (row, bits) in partials {
            assert!(
                row < rows,
                "DetectionMatrix::from_partial_rows: partial names row {row} \
                 but the matrix has {rows} rows"
            );
            assert_eq!(
                bits.width(),
                cols,
                "DetectionMatrix::from_partial_rows: row {row} partial is {} \
                 bits wide but the matrix has {cols} columns",
                bits.width()
            );
            m.or_bits_into_row(row, &bits);
        }
        DetectionMatrix::from_bit_matrix(m)
    }

    /// Builds a matrix from a raw [`BitMatrix`] (rows × cols).
    pub fn from_bit_matrix(m: BitMatrix) -> DetectionMatrix {
        let t = m.transposed();
        DetectionMatrix { rows: m, cols_t: t }
    }

    /// Number of rows (triplets).
    pub fn rows(&self) -> usize {
        self.rows.rows()
    }

    /// Number of columns (faults).
    pub fn cols(&self) -> usize {
        self.rows.cols()
    }

    /// Cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows.get(row, col)
    }

    /// Row-major view.
    pub fn row_major(&self) -> &BitMatrix {
        &self.rows
    }

    /// Column-major view (the transpose, one row per fault).
    pub fn col_major(&self) -> &BitMatrix {
        &self.cols_t
    }

    /// The column set covered by a row, as a [`BitVec`].
    pub fn row_coverage(&self, row: usize) -> BitVec {
        self.rows.row(row)
    }

    /// Number of columns a row covers.
    pub fn row_weight(&self, row: usize) -> usize {
        self.rows.count_row(row)
    }

    /// Number of rows covering a column.
    pub fn col_weight(&self, col: usize) -> usize {
        self.cols_t.count_row(col)
    }

    /// Indices of the rows covering `col`.
    pub fn covering_rows(&self, col: usize) -> Vec<usize> {
        self.cols_t.cols_of_row(col)
    }

    /// Union of the coverage of the given rows.
    pub fn union_coverage(&self, rows: &[usize]) -> BitVec {
        self.rows.union_of_rows(rows)
    }

    /// `true` if the given rows cover every column.
    pub fn is_cover(&self, rows: &[usize]) -> bool {
        self.union_coverage(rows).count_ones() == self.cols()
    }

    /// Columns not covered by any row at all (a valid instance for the
    /// reseeding flow has none; they can appear in synthetic instances).
    pub fn uncoverable_cols(&self) -> Vec<usize> {
        (0..self.cols())
            .filter(|&c| self.col_weight(c) == 0)
            .collect()
    }

    /// Fraction of 1-cells.
    pub fn density(&self) -> f64 {
        self.rows.density()
    }

    /// The sub-instance induced by the given (sorted or not) active rows
    /// and columns, together with the index maps back to `self`.
    ///
    /// Used to hand a *residual* matrix to the exact solver after
    /// reduction.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> (DetectionMatrix, SubMap) {
        let mut m = BitMatrix::new(rows.len(), cols.len());
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                if self.get(r, c) {
                    m.set(ri, ci, true);
                }
            }
        }
        (
            DetectionMatrix::from_bit_matrix(m),
            SubMap {
                row_map: rows.to_vec(),
                col_map: cols.to_vec(),
            },
        )
    }
}

impl fmt::Debug for DetectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DetectionMatrix {}x{} (density {:.3})",
            self.rows(),
            self.cols(),
            self.density()
        )
    }
}

/// Index maps from a [`DetectionMatrix::submatrix`] back to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubMap {
    /// `row_map[i]` = original index of sub-row `i`.
    pub row_map: Vec<usize>,
    /// `col_map[j]` = original index of sub-column `j`.
    pub col_map: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DetectionMatrix {
        let rows: Vec<BitVec> = ["11000", "01110", "00011", "01010"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        DetectionMatrix::from_rows(5, rows)
    }

    #[test]
    fn weights_and_coverings() {
        let m = sample();
        assert_eq!(m.row_weight(0), 2);
        // col 1 is set in "01110", "00011" and "01010" (bit 1 of each)
        assert_eq!(m.col_weight(1), 3);
        assert_eq!(m.covering_rows(0), vec![2]);
        assert_eq!(m.col_weight(0), 1);
    }

    #[test]
    fn cover_checks() {
        let m = sample();
        assert!(m.is_cover(&[0, 1, 2]));
        assert!(!m.is_cover(&[0, 1]));
        assert!(!m.is_cover(&[]));
    }

    #[test]
    fn uncoverable_detection() {
        let rows: Vec<BitVec> = ["10", "10"].iter().map(|s| s.parse().unwrap()).collect();
        let m = DetectionMatrix::from_rows(2, rows);
        assert_eq!(m.uncoverable_cols(), vec![0]);
    }

    #[test]
    fn submatrix_maps_back() {
        let m = sample();
        let (sub, map) = m.submatrix(&[1, 3], &[1, 2, 3]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 3);
        for ri in 0..2 {
            for ci in 0..3 {
                assert_eq!(sub.get(ri, ci), m.get(map.row_map[ri], map.col_map[ci]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "row 1 is 4 bits wide but the matrix has 5 columns")]
    fn from_rows_rejects_width_mismatch_with_diagnostic() {
        let rows: Vec<BitVec> = ["11000", "0111"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let _ = DetectionMatrix::from_rows(5, rows);
    }

    #[test]
    fn partial_rows_assemble_by_union() {
        let full = sample();
        // split every row into two partials (low and high column halves)
        // plus a duplicate overlap, delivered out of order
        let mut partials = Vec::new();
        for r in (0..full.rows()).rev() {
            let row = full.row_coverage(r);
            let mut low = row.clone();
            let mut high = row.clone();
            for c in 0..full.cols() {
                if c < 2 {
                    high.set(c, false);
                } else {
                    low.set(c, false);
                }
            }
            partials.push((r, high));
            partials.push((r, low));
            partials.push((r, row)); // overlap: union must be idempotent
        }
        let m = DetectionMatrix::from_partial_rows(full.rows(), full.cols(), partials);
        assert_eq!(m.row_major(), full.row_major());
        assert_eq!(m.col_major(), full.col_major());
    }

    #[test]
    fn partial_rows_unmentioned_rows_stay_zero() {
        let bits: BitVec = "101".parse().unwrap();
        let m = DetectionMatrix::from_partial_rows(3, 3, vec![(1, bits)]);
        assert_eq!(m.row_weight(0), 0);
        assert_eq!(m.row_weight(1), 2);
        assert_eq!(m.row_weight(2), 0);
    }

    #[test]
    #[should_panic(expected = "names row 7 but the matrix has 3 rows")]
    fn partial_rows_reject_bad_row_index() {
        let bits: BitVec = "101".parse().unwrap();
        let _ = DetectionMatrix::from_partial_rows(3, 3, vec![(7, bits)]);
    }

    #[test]
    fn col_major_is_transpose() {
        let m = sample();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(m.get(r, c), m.col_major().get(c, r));
            }
        }
    }
}
