//! The Detection Matrix.

use std::fmt;

use fbist_bits::{BitMatrix, BitVec};

/// The paper's Detection Matrix: rows are candidate reseeding triplets,
/// columns are target faults, and cell `(i, j)` is 1 iff triplet `i`'s test
/// set detects fault `j`.
///
/// The matrix is immutable once built; the reduction and the solvers track
/// activity with external masks, so row/column indices remain stable and
/// can always be mapped back to triplets and faults.
///
/// # Example
///
/// ```
/// use fbist_setcover::DetectionMatrix;
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["101", "011"].iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(3, rows);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert!(m.is_cover(&[0, 1]));
/// assert!(!m.is_cover(&[0]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    rows: BitMatrix,
    cols_t: BitMatrix,
}

impl DetectionMatrix {
    /// Builds a matrix from per-row detection sets.
    ///
    /// # Panics
    ///
    /// Panics if a row's width differs from `cols`.
    pub fn from_rows(cols: usize, rows: Vec<BitVec>) -> DetectionMatrix {
        let m = BitMatrix::from_rows(cols, &rows);
        let t = m.transposed();
        DetectionMatrix { rows: m, cols_t: t }
    }

    /// Builds a matrix from a raw [`BitMatrix`] (rows × cols).
    pub fn from_bit_matrix(m: BitMatrix) -> DetectionMatrix {
        let t = m.transposed();
        DetectionMatrix { rows: m, cols_t: t }
    }

    /// Number of rows (triplets).
    pub fn rows(&self) -> usize {
        self.rows.rows()
    }

    /// Number of columns (faults).
    pub fn cols(&self) -> usize {
        self.rows.cols()
    }

    /// Cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows.get(row, col)
    }

    /// Row-major view.
    pub fn row_major(&self) -> &BitMatrix {
        &self.rows
    }

    /// Column-major view (the transpose, one row per fault).
    pub fn col_major(&self) -> &BitMatrix {
        &self.cols_t
    }

    /// The column set covered by a row, as a [`BitVec`].
    pub fn row_coverage(&self, row: usize) -> BitVec {
        self.rows.row(row)
    }

    /// Number of columns a row covers.
    pub fn row_weight(&self, row: usize) -> usize {
        self.rows.count_row(row)
    }

    /// Number of rows covering a column.
    pub fn col_weight(&self, col: usize) -> usize {
        self.cols_t.count_row(col)
    }

    /// Indices of the rows covering `col`.
    pub fn covering_rows(&self, col: usize) -> Vec<usize> {
        self.cols_t.cols_of_row(col)
    }

    /// Union of the coverage of the given rows.
    pub fn union_coverage(&self, rows: &[usize]) -> BitVec {
        self.rows.union_of_rows(rows)
    }

    /// `true` if the given rows cover every column.
    pub fn is_cover(&self, rows: &[usize]) -> bool {
        self.union_coverage(rows).count_ones() == self.cols()
    }

    /// Columns not covered by any row at all (a valid instance for the
    /// reseeding flow has none; they can appear in synthetic instances).
    pub fn uncoverable_cols(&self) -> Vec<usize> {
        (0..self.cols())
            .filter(|&c| self.col_weight(c) == 0)
            .collect()
    }

    /// Fraction of 1-cells.
    pub fn density(&self) -> f64 {
        self.rows.density()
    }

    /// The sub-instance induced by the given (sorted or not) active rows
    /// and columns, together with the index maps back to `self`.
    ///
    /// Used to hand a *residual* matrix to the exact solver after
    /// reduction.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> (DetectionMatrix, SubMap) {
        let mut m = BitMatrix::new(rows.len(), cols.len());
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                if self.get(r, c) {
                    m.set(ri, ci, true);
                }
            }
        }
        (
            DetectionMatrix::from_bit_matrix(m),
            SubMap {
                row_map: rows.to_vec(),
                col_map: cols.to_vec(),
            },
        )
    }
}

impl fmt::Debug for DetectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DetectionMatrix {}x{} (density {:.3})",
            self.rows(),
            self.cols(),
            self.density()
        )
    }
}

/// Index maps from a [`DetectionMatrix::submatrix`] back to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubMap {
    /// `row_map[i]` = original index of sub-row `i`.
    pub row_map: Vec<usize>,
    /// `col_map[j]` = original index of sub-column `j`.
    pub col_map: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DetectionMatrix {
        let rows: Vec<BitVec> = ["11000", "01110", "00011", "01010"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        DetectionMatrix::from_rows(5, rows)
    }

    #[test]
    fn weights_and_coverings() {
        let m = sample();
        assert_eq!(m.row_weight(0), 2);
        // col 1 is set in "01110", "00011" and "01010" (bit 1 of each)
        assert_eq!(m.col_weight(1), 3);
        assert_eq!(m.covering_rows(0), vec![2]);
        assert_eq!(m.col_weight(0), 1);
    }

    #[test]
    fn cover_checks() {
        let m = sample();
        assert!(m.is_cover(&[0, 1, 2]));
        assert!(!m.is_cover(&[0, 1]));
        assert!(!m.is_cover(&[]));
    }

    #[test]
    fn uncoverable_detection() {
        let rows: Vec<BitVec> = ["10", "10"].iter().map(|s| s.parse().unwrap()).collect();
        let m = DetectionMatrix::from_rows(2, rows);
        assert_eq!(m.uncoverable_cols(), vec![0]);
    }

    #[test]
    fn submatrix_maps_back() {
        let m = sample();
        let (sub, map) = m.submatrix(&[1, 3], &[1, 2, 3]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 3);
        for ri in 0..2 {
            for ci in 0..3 {
                assert_eq!(sub.get(ri, ci), m.get(map.row_map[ri], map.col_map[ci]));
            }
        }
    }

    #[test]
    fn col_major_is_transpose() {
        let m = sample();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(m.get(r, c), m.col_major().get(c, r));
            }
        }
    }
}
