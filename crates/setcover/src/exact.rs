//! Exact branch-and-bound set covering — the LINGO stand-in.
//!
//! The paper hands the reduced Detection Matrix to LINGO, a commercial
//! integer-programming package. The minimum cardinality of a cover is
//! solver-independent, so this branch-and-bound produces the same optimum:
//!
//! * **Branching** on the uncovered column with the fewest covering rows
//!   (most-constrained-first): every cover must pick one of them, so the
//!   enumeration is complete;
//! * **Lower bound** from a greedily built set of pairwise *independent*
//!   columns (no row covers two of them) — each needs its own row;
//! * **Warm start** from the Chvátal greedy cover.
//!
//! A node budget keeps worst cases bounded; hitting it downgrades the
//! result to "best found" with `optimal = false`.
//!
//! Like the greedy and the reducer, the search exists in a dense and a
//! sparse implementation ([`Backend`], see [`ExactSolver::with_backend`]).
//! The sparse path replaces the per-node masked scans with incremental
//! cover counts on a [`SparseMatrix`] and picks the branching column from
//! a precomputed `(degree, index)` order; it explores the *identical*
//! search tree — same best cover, same node count, same optimality flag.

use fbist_bits::BitVec;

use crate::greedy::{greedy_cover, greedy_sparse};
use crate::matrix::DetectionMatrix;
use crate::sparse::{Backend, SparseMatrix};

/// Configuration for [`ExactSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// Search-node budget; `u64::MAX` for a truly exhaustive run.
    pub node_limit: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            node_limit: 5_000_000,
        }
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResult {
    /// The best cover found (minimum cardinality when `optimal`).
    pub rows: Vec<usize>,
    /// Search nodes expanded.
    pub nodes: u64,
    /// `true` if the search completed within the node budget, proving
    /// optimality.
    pub optimal: bool,
}

/// Branch-and-bound unicost set-covering solver.
///
/// # Example
///
/// ```
/// use fbist_setcover::{DetectionMatrix, ExactSolver};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["00001111", "00110000", "01000000", "01010101", "10101010"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(8, rows);
/// let res = ExactSolver::new().solve(&m);
/// assert!(res.optimal);
/// assert_eq!(res.rows.len(), 2); // {01010101, 10101010} — greedy needs 4
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    config: ExactConfig,
    backend: Backend,
}

impl ExactSolver {
    /// Creates a solver with the default node budget and automatic backend.
    pub fn new() -> ExactSolver {
        ExactSolver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: ExactConfig) -> ExactSolver {
        ExactSolver {
            config,
            backend: Backend::Auto,
        }
    }

    /// Selects the implementation ([`Backend::Auto`] by default). The
    /// backend never changes the result — not even the node count.
    pub fn with_backend(mut self, backend: Backend) -> ExactSolver {
        self.backend = backend;
        self
    }

    /// Solves the instance. Columns no row covers are ignored.
    pub fn solve(&self, matrix: &DetectionMatrix) -> ExactResult {
        if self.backend.use_sparse(matrix.rows(), matrix.cols()) {
            self.solve_sparse(matrix)
        } else {
            self.solve_dense(matrix)
        }
    }

    /// The dense reference implementation.
    fn solve_dense(&self, matrix: &DetectionMatrix) -> ExactResult {
        let mut coverable = BitVec::zeros(matrix.cols());
        for c in 0..matrix.cols() {
            if matrix.col_weight(c) > 0 {
                coverable.set(c, true);
            }
        }
        if coverable.count_ones() == 0 {
            return ExactResult {
                rows: Vec::new(),
                nodes: 0,
                optimal: true,
            };
        }

        let mut best = greedy_cover(matrix);
        let mut search = Search {
            matrix,
            node_limit: self.config.node_limit,
            nodes: 0,
            truncated: false,
            best_len: best.len(),
            best: &mut best,
        };
        let mut chosen = Vec::new();
        search.recurse(&coverable, &mut chosen);
        let truncated = search.truncated;
        let nodes = search.nodes;
        ExactResult {
            rows: best,
            nodes,
            optimal: !truncated,
        }
    }

    /// The sparse implementation: one adjacency build, then incremental
    /// cover counts — choosing a row walks its column list once, and the
    /// lower bound and candidate gains touch only 1-cells.
    fn solve_sparse(&self, matrix: &DetectionMatrix) -> ExactResult {
        let sp = SparseMatrix::from_dense(matrix);
        let cols = sp.cols();
        let mut coverable = vec![false; cols];
        let mut uncovered = 0usize;
        for (c, ok) in coverable.iter_mut().enumerate() {
            if sp.col_weight(c) > 0 {
                *ok = true;
                uncovered += 1;
            }
        }
        if uncovered == 0 {
            return ExactResult {
                rows: Vec::new(),
                nodes: 0,
                optimal: true,
            };
        }

        let mut best = greedy_sparse(&sp);
        // The dense branch step scans uncovered columns in ascending index
        // order keeping the first strict degree minimum — i.e. the
        // lexicographic (static degree, index) minimum. Sorting the
        // coverable columns by that key once turns every branch decision
        // into "first still-uncovered entry of this list".
        let mut order: Vec<u32> = (0..cols as u32)
            .filter(|&c| coverable[c as usize])
            .collect();
        order.sort_by_key(|&c| (sp.col_weight(c as usize), c));

        let best_len = best.len();
        let mut search = SparseSearch {
            sp: &sp,
            order: &order,
            cover_count: vec![0u32; cols],
            uncovered,
            node_limit: self.config.node_limit,
            nodes: 0,
            truncated: false,
            best_len,
            best: &mut best,
            lb_mark: vec![0u64; cols],
            lb_epoch: 0,
        };
        let mut chosen = Vec::new();
        search.recurse(&mut chosen);
        let truncated = search.truncated;
        let nodes = search.nodes;
        ExactResult {
            rows: best,
            nodes,
            optimal: !truncated,
        }
    }
}

struct SparseSearch<'a> {
    sp: &'a SparseMatrix,
    /// Coverable columns sorted by `(static degree, index)`.
    order: &'a [u32],
    /// Per column: how many chosen rows cover it (uncoverable stay 0 but
    /// never appear in any row's adjacency, so they are never consulted).
    cover_count: Vec<u32>,
    /// Coverable columns with `cover_count == 0`.
    uncovered: usize,
    node_limit: u64,
    nodes: u64,
    truncated: bool,
    best_len: usize,
    best: &'a mut Vec<usize>,
    /// Epoch-stamped scratch for the lower bound (avoids a clear per node).
    lb_mark: Vec<u64>,
    lb_epoch: u64,
}

impl SparseSearch<'_> {
    fn recurse(&mut self, chosen: &mut Vec<usize>) {
        if self.nodes >= self.node_limit {
            self.truncated = true;
            return;
        }
        self.nodes += 1;

        if self.uncovered == 0 {
            if chosen.len() < self.best_len {
                self.best_len = chosen.len();
                *self.best = chosen.clone();
            }
            return;
        }
        if chosen.len() + 1 >= self.best_len {
            return; // even a single perfect row cannot improve
        }
        if chosen.len() + self.lower_bound() >= self.best_len {
            return;
        }

        // Most-constrained column: first uncovered entry in degree order.
        let branch_col = self
            .order
            .iter()
            .copied()
            .find(|&c| self.cover_count[c as usize] == 0)
            .expect("uncovered is non-zero") as usize;

        // Order candidate rows by coverage of the uncovered set, descending
        // (stable sort on an ascending list — the dense ordering).
        let mut candidates: Vec<u32> = self.sp.col_rows(branch_col).to_vec();
        candidates.sort_by_key(|&r| {
            std::cmp::Reverse(
                self.sp
                    .row_cols(r as usize)
                    .iter()
                    .filter(|&&c| self.cover_count[c as usize] == 0)
                    .count(),
            )
        });
        for r in candidates {
            let r = r as usize;
            for &c in self.sp.row_cols(r) {
                let c = c as usize;
                if self.cover_count[c] == 0 {
                    self.uncovered -= 1;
                }
                self.cover_count[c] += 1;
            }
            chosen.push(r);
            self.recurse(chosen);
            chosen.pop();
            for &c in self.sp.row_cols(r) {
                let c = c as usize;
                self.cover_count[c] -= 1;
                if self.cover_count[c] == 0 {
                    self.uncovered += 1;
                }
            }
            if self.truncated {
                return;
            }
        }
    }

    /// Independent-column lower bound, identical in value to the dense
    /// one: scan uncovered columns in ascending order, count one, then
    /// blanket-mark everything reachable through its covering rows.
    fn lower_bound(&mut self) -> usize {
        self.lb_epoch += 1;
        let epoch = self.lb_epoch;
        let mut lb = 0;
        for c in 0..self.sp.cols() {
            if self.sp.col_weight(c) > 0 && self.cover_count[c] == 0 && self.lb_mark[c] != epoch {
                lb += 1;
                for &r in self.sp.col_rows(c) {
                    for &cc in self.sp.row_cols(r as usize) {
                        self.lb_mark[cc as usize] = epoch;
                    }
                }
            }
        }
        lb
    }
}

struct Search<'a> {
    matrix: &'a DetectionMatrix,
    node_limit: u64,
    nodes: u64,
    truncated: bool,
    best_len: usize,
    best: &'a mut Vec<usize>,
}

impl Search<'_> {
    fn recurse(&mut self, uncovered: &BitVec, chosen: &mut Vec<usize>) {
        if self.nodes >= self.node_limit {
            self.truncated = true;
            return;
        }
        self.nodes += 1;

        if uncovered.count_ones() == 0 {
            if chosen.len() < self.best_len {
                self.best_len = chosen.len();
                *self.best = chosen.clone();
            }
            return;
        }
        if chosen.len() + 1 >= self.best_len {
            return; // even a single perfect row cannot improve
        }
        if chosen.len() + self.lower_bound(uncovered) >= self.best_len {
            return;
        }

        // Most-constrained column: fewest covering rows.
        let mut branch_col = usize::MAX;
        let mut branch_deg = usize::MAX;
        let mut c = uncovered.lowest_set_bit();
        while let Some(col) = c {
            let deg = self.matrix.col_weight(col);
            if deg < branch_deg {
                branch_deg = deg;
                branch_col = col;
                if deg == 1 {
                    break;
                }
            }
            // advance to next set bit above `col`
            c = next_set_bit(uncovered, col + 1);
        }
        debug_assert_ne!(branch_col, usize::MAX);

        // Order candidate rows by coverage of the uncovered set, descending
        // (find good solutions early → tighter pruning).
        let mut candidates = self.matrix.covering_rows(branch_col);
        candidates.sort_by_key(|&r| {
            std::cmp::Reverse(self.matrix.row_major().count_row_masked(r, uncovered))
        });
        for r in candidates {
            let next = &(uncovered.clone()) & &!&self.matrix.row_coverage(r);
            chosen.push(r);
            self.recurse(&next, chosen);
            chosen.pop();
            if self.truncated {
                return;
            }
        }
    }

    /// Independent-column lower bound: greedily pick uncovered columns such
    /// that no row covers two picked ones; each needs a distinct row.
    fn lower_bound(&self, uncovered: &BitVec) -> usize {
        let mut remaining = uncovered.clone();
        let mut lb = 0;
        while let Some(c) = remaining.lowest_set_bit() {
            lb += 1;
            // blank out every column covered by any row that covers c
            let mut blanket = BitVec::zeros(self.matrix.cols());
            for r in self.matrix.covering_rows(c) {
                blanket = &blanket | &self.matrix.row_coverage(r);
            }
            remaining = &remaining & &!&blanket;
        }
        lb
    }
}

fn next_set_bit(v: &BitVec, from: usize) -> Option<usize> {
    (from..v.width()).find(|&i| v.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    fn brute_force_optimum(m: &DetectionMatrix) -> usize {
        let nr = m.rows();
        assert!(nr <= 20);
        let coverable: Vec<usize> = (0..m.cols()).filter(|&c| m.col_weight(c) > 0).collect();
        let mut best = usize::MAX;
        for mask in 0u32..(1u32 << nr) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let rows: Vec<usize> = (0..nr).filter(|&r| (mask >> r) & 1 == 1).collect();
            let cov = m.union_coverage(&rows);
            if coverable.iter().all(|&c| cov.get(c)) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn beats_greedy_on_trap() {
        let mat = m(&["00001111", "00110000", "01000000", "01010101", "10101010"]);
        let greedy = greedy_cover(&mat);
        let exact = ExactSolver::new().solve(&mat);
        assert!(exact.optimal);
        assert_eq!(exact.rows.len(), 2);
        assert!(greedy.len() > exact.rows.len());
        assert!(mat.is_cover(&exact.rows));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state = 0x5151_5151u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let nr = 3 + (next() % 9) as usize;
            let nc = 3 + (next() % 14) as usize;
            let mut rows = Vec::new();
            for _ in 0..nr {
                let mut v = BitVec::zeros(nc);
                for c in 0..nc {
                    if next() % 3 == 0 {
                        v.set(c, true);
                    }
                }
                rows.push(v);
            }
            rows.push(BitVec::ones(nc)); // guarantee coverability
            let mat = DetectionMatrix::from_rows(nc, rows);
            let res = ExactSolver::new().solve(&mat);
            assert!(res.optimal);
            assert!(mat.is_cover(&res.rows), "round {round}");
            assert_eq!(res.rows.len(), brute_force_optimum(&mat), "round {round}");
        }
    }

    #[test]
    fn empty_and_degenerate_instances() {
        let mat = DetectionMatrix::from_rows(0, vec![]);
        let res = ExactSolver::new().solve(&mat);
        assert!(res.optimal);
        assert!(res.rows.is_empty());

        // only uncoverable columns
        let mat = m(&["00", "00"]);
        let res = ExactSolver::new().solve(&mat);
        assert!(res.rows.is_empty());
        assert!(res.optimal);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        // a moderately hard random instance with a tiny budget
        let mut state = 0x77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let nc = 40;
        let mut rows: Vec<BitVec> = Vec::new();
        for _ in 0..30 {
            let mut v = BitVec::zeros(nc);
            for c in 0..nc {
                if next() % 4 == 0 {
                    v.set(c, true);
                }
            }
            rows.push(v);
        }
        // patch uncovered columns onto pseudo-random rows (no all-ones row,
        // so the optimum stays well above 1 and the search has real work)
        for c in 0..nc {
            if !rows.iter().any(|r| r.get(c)) {
                let idx = (next() % 30) as usize;
                rows[idx].set(c, true);
            }
        }
        let mat = DetectionMatrix::from_rows(nc, rows);
        let res = ExactSolver::with_config(ExactConfig { node_limit: 3 }).solve(&mat);
        // must still return the greedy warm start as a valid cover
        assert!(mat.is_cover(&res.rows));
        assert!(!res.optimal);
    }

    #[test]
    fn sparse_matches_dense_search_exactly() {
        use crate::generate::{detection_shaped, random_instance};
        for seed in 0..6u64 {
            let m = random_instance(18, 40, 0.12, seed);
            let d = ExactSolver::new().with_backend(Backend::Dense).solve(&m);
            let s = ExactSolver::new().with_backend(Backend::Sparse).solve(&m);
            assert_eq!(d, s, "random seed {seed}"); // rows, nodes, optimal
        }
        for seed in 0..4u64 {
            let m = detection_shaped(25, 60, seed);
            let d = ExactSolver::new().with_backend(Backend::Dense).solve(&m);
            let s = ExactSolver::new().with_backend(Backend::Sparse).solve(&m);
            assert_eq!(d, s, "shaped seed {seed}");
        }
        // a tight node budget truncates both searches at the same node
        let m = random_instance(30, 90, 0.07, 77);
        let cfg = ExactConfig { node_limit: 40 };
        let d = ExactSolver::with_config(cfg)
            .with_backend(Backend::Dense)
            .solve(&m);
        let s = ExactSolver::with_config(cfg)
            .with_backend(Backend::Sparse)
            .solve(&m);
        assert_eq!(d, s, "truncated runs must match node for node");
    }

    #[test]
    fn single_column_instance() {
        let mat = m(&["1", "1", "1"]);
        let res = ExactSolver::new().solve(&mat);
        assert_eq!(res.rows.len(), 1);
        assert!(res.optimal);
    }

    #[test]
    fn lower_bound_is_sound() {
        // partition instance: optimum equals the number of diagonal blocks
        let mat = m(&["1100", "0011"]);
        let res = ExactSolver::new().solve(&mat);
        assert_eq!(res.rows.len(), 2);
    }
}
