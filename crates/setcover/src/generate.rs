//! Synthetic set-covering instance generators for tests and benchmarks.

use fbist_bits::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::DetectionMatrix;

/// Generates a random coverable instance: `rows × cols`, each cell set with
/// probability `density`; afterwards every uncovered column is patched onto
/// a random row, so a full cover always exists.
///
/// # Example
///
/// ```
/// use fbist_setcover::generate::random_instance;
/// let m = random_instance(20, 50, 0.1, 42);
/// assert!(m.uncoverable_cols().is_empty());
/// let all: Vec<usize> = (0..20).collect();
/// assert!(m.is_cover(&all));
/// ```
pub fn random_instance(rows: usize, cols: usize, density: f64, seed: u64) -> DetectionMatrix {
    assert!(rows > 0 && cols > 0, "instance must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<BitVec> = (0..rows).map(|_| BitVec::zeros(cols)).collect();
    for row in data.iter_mut() {
        for c in 0..cols {
            if rng.gen::<f64>() < density {
                row.set(c, true);
            }
        }
    }
    for c in 0..cols {
        if !data.iter().any(|r| r.get(c)) {
            let r = rng.gen_range(0..rows);
            data[r].set(c, true);
        }
    }
    DetectionMatrix::from_rows(cols, data)
}

/// Generates a "detection-shaped" instance mimicking what the reseeding
/// flow produces: a few *easy* columns covered by many rows (random-
/// testable faults) and a tail of *hard* columns covered by very few rows
/// (random-resistant faults) — the regime where essentiality and dominance
/// collapse most of the matrix, exactly as the paper reports.
pub fn detection_shaped(rows: usize, cols: usize, seed: u64) -> DetectionMatrix {
    assert!(rows > 0 && cols > 0, "instance must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<BitVec> = (0..rows).map(|_| BitVec::zeros(cols)).collect();
    let easy = cols * 7 / 10;
    for c in 0..cols {
        let coverers = if c < easy {
            // easy fault: 30–80 % of rows detect it
            let lo = rows * 3 / 10;
            let hi = (rows * 8 / 10).max(lo + 1);
            rng.gen_range(lo..hi).max(1)
        } else {
            // hard fault: 1–3 rows detect it
            rng.gen_range(1..=3usize.min(rows))
        };
        for _ in 0..coverers {
            let r = rng.gen_range(0..rows);
            data[r].set(c, true);
        }
    }
    DetectionMatrix::from_rows(cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{reduce, ReducerConfig};
    use crate::solution::{solve, SolveConfig};

    #[test]
    fn random_instance_is_coverable_and_deterministic() {
        let a = random_instance(10, 30, 0.15, 7);
        let b = random_instance(10, 30, 0.15, 7);
        assert_eq!(a.row_major(), b.row_major());
        assert!(a.uncoverable_cols().is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_instance(10, 30, 0.15, 7);
        let b = random_instance(10, 30, 0.15, 8);
        assert_ne!(a.row_major(), b.row_major());
    }

    #[test]
    fn detection_shaped_has_hard_tail() {
        let m = detection_shaped(40, 100, 3);
        let hard = (70..100).filter(|&c| m.col_weight(c) <= 3).count();
        assert!(hard >= 25, "hard tail missing: {hard}");
        assert!(m.uncoverable_cols().is_empty());
    }

    #[test]
    fn detection_shaped_reduces_heavily() {
        let m = detection_shaped(60, 200, 11);
        let r = reduce(&m, &ReducerConfig::default());
        let (ar, ac) = r.residual_size();
        // the hard tail forces essentials; the easy head gets dominated
        assert!(ar < 60 && ac < 200, "no reduction happened: {ar}x{ac}");
        let sol = solve(&m, &SolveConfig::default());
        assert!(m.is_cover(&sol.rows()));
    }
}
