//! LP-format export, preserving the paper's LINGO workflow.
//!
//! The paper post-processes the reduced matrix with the commercial LINGO
//! package. To keep that path open, [`to_lp`] serialises an instance in
//! the widely understood `lp_solve`/CPLEX-LP textual format, which LINGO
//! (and every other ILP solver) can ingest:
//!
//! ```text
//! /* set covering: 3 rows x 2 cols */
//! min: x0 + x1 + x2;
//! c0: x0 + x2 >= 1;
//! c1: x1 >= 1;
//! int x0,x1,x2;
//! ```

use std::fmt::Write as _;

use crate::matrix::DetectionMatrix;

/// Serialises the instance as an `lp_solve`-format integer program.
///
/// Columns covered by no row are skipped (they would make the program
/// infeasible); they are reported in a comment header instead.
///
/// # Example
///
/// ```
/// use fbist_setcover::{lp, DetectionMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["10", "01"].iter().map(|s| s.parse().unwrap()).collect();
/// let text = lp::to_lp(&DetectionMatrix::from_rows(2, rows));
/// assert!(text.contains("min: x0 + x1;"));
/// assert!(text.contains("c0: x1 >= 1;"));
/// ```
pub fn to_lp(matrix: &DetectionMatrix) -> String {
    let mut out = String::new();
    let uncoverable = matrix.uncoverable_cols();
    let _ = writeln!(
        out,
        "/* set covering: {} rows x {} cols{} */",
        matrix.rows(),
        matrix.cols(),
        if uncoverable.is_empty() {
            String::new()
        } else {
            format!("; {} uncoverable columns skipped", uncoverable.len())
        }
    );

    // objective
    out.push_str("min: ");
    for r in 0..matrix.rows() {
        if r > 0 {
            out.push_str(" + ");
        }
        let _ = write!(out, "x{r}");
    }
    out.push_str(";\n");

    // constraints
    for c in 0..matrix.cols() {
        let rows = matrix.covering_rows(c);
        if rows.is_empty() {
            continue;
        }
        let _ = write!(out, "c{c}: ");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            let _ = write!(out, "x{r}");
        }
        out.push_str(" >= 1;\n");
    }

    // integrality
    if matrix.rows() > 0 {
        out.push_str("int ");
        for r in 0..matrix.rows() {
            if r > 0 {
                out.push(',');
            }
            let _ = write!(out, "x{r}");
        }
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_bits::BitVec;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn full_structure() {
        let text = to_lp(&m(&["110", "011"]));
        assert!(text.starts_with("/* set covering: 2 rows x 3 cols */"));
        assert!(text.contains("min: x0 + x1;"));
        assert!(text.contains("c0: x1 >= 1;"));
        assert!(text.contains("c1: x0 + x1 >= 1;"));
        assert!(text.contains("c2: x0 >= 1;"));
        assert!(text.trim_end().ends_with("int x0,x1;"));
    }

    #[test]
    fn uncoverable_columns_skipped_with_note() {
        let text = to_lp(&m(&["10", "10"]));
        assert!(text.contains("1 uncoverable columns skipped"));
        assert!(!text.contains("c0:"));
        assert!(text.contains("c1: x0 + x1 >= 1;"));
    }

    #[test]
    fn empty_instance() {
        let text = to_lp(&DetectionMatrix::from_rows(0, vec![]));
        assert!(text.contains("0 rows x 0 cols"));
        assert!(!text.contains("int"));
    }

    #[test]
    fn constraint_count_matches_cols() {
        let rows: Vec<BitVec> = (0..5)
            .map(|i| {
                let mut v = BitVec::zeros(7);
                v.set(i, true);
                v.set((i + 1) % 7, true);
                v
            })
            .collect();
        let mat = DetectionMatrix::from_rows(7, rows);
        let text = to_lp(&mat);
        let constraints = text.lines().filter(|l| l.starts_with('c')).count();
        assert_eq!(constraints, 7 - mat.uncoverable_cols().len());
    }
}
