//! Local-search / metaheuristic set covering.
//!
//! §3.3 of the paper: *"Depending on the size of the matrix, either exact
//! approaches or local research and meta-heuristic techniques are
//! applied."* The experiments never needed them (the reductions always
//! left an exactly solvable residual), but the flow keeps the option.
//!
//! The implementation is the standard two-phase scheme:
//!
//! 1. start from the greedy cover;
//! 2. **redundancy elimination** — drop any row whose columns are all
//!    covered twice;
//! 3. **ruin-and-recreate descent** — repeatedly remove a few random rows
//!    and greedily repair, keeping improvements (with an optional
//!    simulated-annealing acceptance for escaping plateaus).
//!
//! The descent is wrapped in a **restart loop**: independent descents from
//! seeds derived from the master seed, evaluated in parallel on the
//! workspace pool, best cover wins (ties go to the lowest restart index,
//! so the result is bit-identical for every job count — restart 0 with a
//! single restart reproduces the historical single-descent behaviour
//! exactly).
//!
//! The result is always a valid cover; with enough iterations it matches
//! the exact optimum on small instances (tested), without the exponential
//! worst case.

use fbist_bits::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::greedy::greedy_cover;
use crate::matrix::DetectionMatrix;

/// Configuration for [`local_search_cover`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// Ruin-and-recreate iterations.
    pub iterations: usize,
    /// Rows removed per ruin step.
    pub ruin_size: usize,
    /// Simulated-annealing start temperature (0 = pure descent).
    pub temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (restart 0 uses it verbatim; later restarts derive theirs
    /// from it).
    pub seed: u64,
    /// Independent descents to run; the best cover wins. At least 1.
    pub restarts: usize,
    /// Worker threads for the restart loop (`0` = global default).
    pub jobs: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            iterations: 400,
            ruin_size: 3,
            temperature: 1.0,
            cooling: 0.99,
            seed: 0x10CA_15EA,
            restarts: 4,
            jobs: 0,
        }
    }
}

/// Removes redundant rows from a cover (rows whose every covered column is
/// covered by another selected row), scanning in reverse selection order.
///
/// The result is a *minimal* (irredundant) cover — the paper's Definition
/// of a minimal solution — though not necessarily minim**um**.
///
/// ```
/// use fbist_setcover::{eliminate_redundant, DetectionMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["110", "011", "111"].iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(3, rows);
/// // {0, 1, 2} is a cover with one redundant row; scanning in reverse
/// // drops row 2 (rows 0 and 1 already cover everything)
/// let minimal = eliminate_redundant(&m, &[0, 1, 2]);
/// assert_eq!(minimal, vec![0, 1]);
/// assert!(m.is_cover(&minimal));
/// ```
pub fn eliminate_redundant(matrix: &DetectionMatrix, cover: &[usize]) -> Vec<usize> {
    let mut kept: Vec<usize> = cover.to_vec();
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let without: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &r)| r)
            .collect();
        let cov = matrix.union_coverage(&without);
        let full = matrix.union_coverage(&kept);
        if cov == full {
            kept.remove(i);
        }
    }
    kept
}

/// Metaheuristic unicost set covering (see the module docs).
///
/// Always returns a valid cover of the coverable columns. Deterministic in
/// the seed.
///
/// ```
/// use fbist_setcover::{local_search_cover, LocalSearchConfig, DetectionMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["00001111", "00110000", "01000000", "01010101", "10101010"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(8, rows);
/// let cover = local_search_cover(&m, &LocalSearchConfig::default());
/// assert!(m.is_cover(&cover));
/// assert_eq!(cover.len(), 2); // finds the optimum greedy misses
/// ```
pub fn local_search_cover(matrix: &DetectionMatrix, config: &LocalSearchConfig) -> Vec<usize> {
    let restarts = config.restarts.max(1);
    // Per-restart seeds are derived from the master seed and the restart
    // index *before* dispatch — worker identity never reaches the RNG, so
    // the winner is the same for every job count. Restart 0 keeps the
    // master seed itself: `restarts = 1` is the historical single descent.
    let covers = mini_rayon::par_map_indexed(config.jobs, restarts, |i| {
        let seed = if i == 0 {
            config.seed
        } else {
            derive_seed(config.seed, i as u64)
        };
        descend(matrix, config, seed)
    });
    covers
        .into_iter()
        .reduce(|best, c| if c.len() < best.len() { c } else { best })
        .expect("at least one restart")
}

/// SplitMix64 finaliser over `(master, index)` — statistically independent
/// streams for each restart, reproducible from the master seed alone.
fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One ruin-and-recreate descent from an explicit seed.
fn descend(matrix: &DetectionMatrix, config: &LocalSearchConfig, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = eliminate_redundant(matrix, &greedy_cover(matrix));
    let mut best = current.clone();
    let mut temperature = config.temperature;

    for _ in 0..config.iterations {
        if best.len() <= 1 {
            break; // cannot improve on a singleton (or empty) cover
        }
        // ---- ruin: drop a few random rows --------------------------------
        let mut trial = current.clone();
        let ruin = config.ruin_size.min(trial.len().saturating_sub(1)).max(1);
        for _ in 0..ruin {
            if trial.is_empty() {
                break;
            }
            let k = rng.gen_range(0..trial.len());
            trial.swap_remove(k);
        }
        // ---- recreate: greedy repair of the uncovered columns ------------
        let mut uncovered = coverable_columns(matrix);
        let covered = matrix.union_coverage(&trial);
        uncovered = &uncovered & &!&covered;
        while uncovered.count_ones() > 0 {
            // Randomized tie-breaking among max-gain rows: a deterministic
            // first-max pick makes the repair a pure function of the ruined
            // set, collapsing the neighbourhood the descent can explore.
            let mut ties: Vec<usize> = Vec::new();
            let mut best_gain = 0usize;
            for r in 0..matrix.rows() {
                let gain = matrix.row_major().count_row_masked(r, &uncovered);
                if gain > best_gain {
                    best_gain = gain;
                    ties.clear();
                    ties.push(r);
                } else if gain == best_gain && gain > 0 {
                    ties.push(r);
                }
            }
            let Some(&pick) = ties.first() else { break };
            let best_row = if ties.len() > 1 {
                ties[rng.gen_range(0..ties.len())]
            } else {
                pick
            };
            trial.push(best_row);
            uncovered = &uncovered & &!&matrix.row_coverage(best_row);
        }
        let trial = eliminate_redundant(matrix, &trial);

        // ---- accept -------------------------------------------------------
        let delta = trial.len() as f64 - current.len() as f64;
        let accept =
            delta <= 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            current = trial;
            if current.len() < best.len() {
                best = current.clone();
            }
        }
        temperature *= config.cooling;
    }
    best
}

fn coverable_columns(matrix: &DetectionMatrix) -> BitVec {
    let mut v = BitVec::zeros(matrix.cols());
    for c in 0..matrix.cols() {
        if matrix.col_weight(c) > 0 {
            v.set(c, true);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use crate::generate::{detection_shaped, random_instance};

    #[test]
    fn valid_on_random_instances() {
        for seed in 0..10 {
            let m = random_instance(25, 60, 0.12, seed);
            let cover = local_search_cover(&m, &LocalSearchConfig::default());
            assert!(m.is_cover(&cover), "seed {seed}");
        }
    }

    #[test]
    fn matches_exact_on_small_instances() {
        for seed in 0..8 {
            let m = random_instance(14, 30, 0.18, 100 + seed);
            let exact = ExactSolver::new().solve(&m);
            assert!(exact.optimal);
            let ls = local_search_cover(&m, &LocalSearchConfig::default());
            assert_eq!(
                ls.len(),
                exact.rows.len(),
                "seed {seed}: local search {} vs optimum {}",
                ls.len(),
                exact.rows.len()
            );
        }
    }

    #[test]
    fn no_worse_than_greedy() {
        let m = detection_shaped(60, 200, 9);
        let g = greedy_cover(&m).len();
        let ls = local_search_cover(&m, &LocalSearchConfig::default()).len();
        assert!(ls <= g, "local search {ls} vs greedy {g}");
    }

    #[test]
    fn redundancy_elimination_is_minimal() {
        let m = random_instance(20, 50, 0.2, 5);
        let all: Vec<usize> = (0..20).collect();
        let minimal = eliminate_redundant(&m, &all);
        assert!(m.is_cover(&minimal));
        // removing any remaining row must break the cover
        for skip in 0..minimal.len() {
            let without: Vec<usize> = minimal
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &r)| r)
                .collect();
            assert!(!m.is_cover(&without), "row {skip} still redundant");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let m = detection_shaped(40, 120, 3);
        let cfg = LocalSearchConfig::default();
        assert_eq!(local_search_cover(&m, &cfg), local_search_cover(&m, &cfg));
    }

    #[test]
    fn restart_winner_invariant_in_jobs() {
        let m = detection_shaped(40, 120, 7);
        let base = LocalSearchConfig {
            restarts: 8,
            jobs: 1,
            ..LocalSearchConfig::default()
        };
        let serial = local_search_cover(&m, &base);
        for jobs in [2, 8] {
            let cfg = LocalSearchConfig { jobs, ..base };
            assert_eq!(local_search_cover(&m, &cfg), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn more_restarts_never_hurt() {
        let m = random_instance(25, 60, 0.12, 3);
        let one = local_search_cover(
            &m,
            &LocalSearchConfig {
                restarts: 1,
                ..LocalSearchConfig::default()
            },
        );
        let eight = local_search_cover(
            &m,
            &LocalSearchConfig {
                restarts: 8,
                ..LocalSearchConfig::default()
            },
        );
        assert!(m.is_cover(&eight));
        assert!(eight.len() <= one.len());
    }

    #[test]
    fn pure_descent_mode() {
        let m = random_instance(20, 40, 0.15, 2);
        let cfg = LocalSearchConfig {
            temperature: 0.0,
            ..LocalSearchConfig::default()
        };
        let cover = local_search_cover(&m, &cfg);
        assert!(m.is_cover(&cover));
    }
}
