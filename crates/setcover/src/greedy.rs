//! The Chvátal greedy heuristic.

use fbist_bits::BitVec;

use crate::matrix::DetectionMatrix;

/// Greedy set covering: repeatedly pick the row covering the most still-
/// uncovered columns (ties broken toward the lower row index). Runs in
/// `O(rows × cols / 64)` per selected row and guarantees an `H(d)`-factor
/// approximation (`d` = largest row weight) — the standard fallback when
/// the residual matrix is too large for the exact solver.
///
/// Columns no row covers are ignored (they cannot constrain any solution).
///
/// # Example
///
/// ```
/// use fbist_setcover::{greedy_cover, DetectionMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["1110", "0011", "1000"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(4, rows);
/// let cover = greedy_cover(&m);
/// assert!(m.is_cover(&cover));
/// assert_eq!(cover, vec![0, 1]); // row 0 covers 3, then row 1 finishes
/// ```
pub fn greedy_cover(matrix: &DetectionMatrix) -> Vec<usize> {
    let mut uncovered = BitVec::zeros(matrix.cols());
    for c in 0..matrix.cols() {
        if matrix.col_weight(c) > 0 {
            uncovered.set(c, true);
        }
    }
    let mut chosen = Vec::new();
    while uncovered.count_ones() > 0 {
        let mut best_row = usize::MAX;
        let mut best_gain = 0usize;
        for r in 0..matrix.rows() {
            let gain = matrix.row_major().count_row_masked(r, &uncovered);
            if gain > best_gain {
                best_gain = gain;
                best_row = r;
            }
        }
        if best_row == usize::MAX {
            break; // defensive: nothing can progress
        }
        chosen.push(best_row);
        let cov = matrix.row_coverage(best_row);
        uncovered = &uncovered & &!&cov;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn picks_largest_first() {
        let mat = m(&["0111", "1100", "1000"]);
        let cover = greedy_cover(&mat);
        assert_eq!(cover[0], 0);
        assert!(mat.is_cover(&cover));
    }

    #[test]
    fn handles_empty_matrix() {
        let mat = DetectionMatrix::from_rows(0, vec![]);
        assert!(greedy_cover(&mat).is_empty());
    }

    #[test]
    fn ignores_uncoverable_columns() {
        let mat = m(&["10", "10"]);
        let cover = greedy_cover(&mat);
        assert_eq!(cover, vec![0]);
    }

    #[test]
    fn greedy_is_valid_on_random_instances() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let nr = 4 + (next() % 10) as usize;
            let nc = 3 + (next() % 20) as usize;
            let mut rows = Vec::new();
            for _ in 0..nr {
                let mut v = fbist_bits::BitVec::zeros(nc);
                for c in 0..nc {
                    if next() % 4 == 0 {
                        v.set(c, true);
                    }
                }
                rows.push(v);
            }
            rows.push(fbist_bits::BitVec::ones(nc));
            let mat = DetectionMatrix::from_rows(nc, rows);
            assert!(mat.is_cover(&greedy_cover(&mat)));
        }
    }

    #[test]
    fn known_log_factor_worst_case() {
        // classical greedy trap: two "half" rows are optimal but greedy
        // takes the big diagonal rows; still must return a valid cover.
        let mat = m(&[
            "11110000", // greedy bait
            "00001111", "10101010", "01010101",
        ]);
        let cover = greedy_cover(&mat);
        assert!(mat.is_cover(&cover));
        assert!(cover.len() <= 3);
    }
}
