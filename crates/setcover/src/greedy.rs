//! The Chvátal greedy heuristic — dense word-scan and sparse incremental
//! implementations.

use fbist_bits::BitVec;

use crate::matrix::DetectionMatrix;
use crate::sparse::{Backend, SparseMatrix};

/// Greedy set covering: repeatedly pick the row covering the most still-
/// uncovered columns (ties broken toward the lower row index), guaranteeing
/// an `H(d)`-factor approximation (`d` = largest row weight) — the standard
/// fallback when the residual matrix is too large for the exact solver.
///
/// Dispatches between the dense scan and the sparse incremental engine by
/// instance size ([`Backend::Auto`]); see [`greedy_cover_with`] to force a
/// backend. Both produce the identical cover, row for row.
///
/// Columns no row covers are ignored (they cannot constrain any solution).
///
/// # Example
///
/// ```
/// use fbist_setcover::{greedy_cover, DetectionMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["1110", "0011", "1000"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(4, rows);
/// let cover = greedy_cover(&m);
/// assert!(m.is_cover(&cover));
/// assert_eq!(cover, vec![0, 1]); // row 0 covers 3, then row 1 finishes
/// ```
pub fn greedy_cover(matrix: &DetectionMatrix) -> Vec<usize> {
    greedy_cover_with(matrix, Backend::Auto)
}

/// [`greedy_cover`] with an explicit backend. The backend never changes
/// the result — only which implementation computes it.
pub fn greedy_cover_with(matrix: &DetectionMatrix, backend: Backend) -> Vec<usize> {
    if backend.use_sparse(matrix.rows(), matrix.cols()) {
        greedy_sparse(&SparseMatrix::from_dense(matrix))
    } else {
        greedy_dense(matrix)
    }
}

/// The dense reference implementation: a full `rows × cols/64` masked
/// rescan per selected row.
fn greedy_dense(matrix: &DetectionMatrix) -> Vec<usize> {
    let mut uncovered = BitVec::zeros(matrix.cols());
    for c in 0..matrix.cols() {
        if matrix.col_weight(c) > 0 {
            uncovered.set(c, true);
        }
    }
    let mut chosen = Vec::new();
    while uncovered.count_ones() > 0 {
        let mut best_row = usize::MAX;
        let mut best_gain = 0usize;
        for r in 0..matrix.rows() {
            let gain = matrix.row_major().count_row_masked(r, &uncovered);
            if gain > best_gain {
                best_gain = gain;
                best_row = r;
            }
        }
        if best_row == usize::MAX {
            break; // defensive: nothing can progress
        }
        chosen.push(best_row);
        let cov = matrix.row_coverage(best_row);
        uncovered = &uncovered & &!&cov;
    }
    chosen
}

/// The sparse incremental implementation: exact gains live in a bucket
/// priority queue; covering a column decrements the gain of exactly the
/// rows covering it (one O(1) bucket move per adjacency edge), so the
/// whole run costs `O(nnz)` bucket operations instead of a full matrix
/// rescan per pick. The pick is the lowest row index in the highest
/// non-empty bucket — precisely the dense scan's strict-maximum /
/// lowest-index tie-break.
pub(crate) fn greedy_sparse(sp: &SparseMatrix) -> Vec<usize> {
    let (rows, cols) = (sp.rows(), sp.cols());
    let mut covered = vec![false; cols];
    let mut uncovered = 0usize;
    for (c, done) in covered.iter_mut().enumerate() {
        if sp.col_weight(c) > 0 {
            uncovered += 1;
        } else {
            *done = true; // uncoverable: never constrains anything
        }
    }
    // gains start at the full row weight (every coverable column of the
    // row is uncovered; uncoverable columns belong to no row at all)
    let mut gain: Vec<usize> = (0..rows).map(|r| sp.row_weight(r)).collect();
    let max_gain = gain.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_gain + 1];
    let mut pos = vec![0usize; rows];
    for r in 0..rows {
        pos[r] = buckets[gain[r]].len();
        buckets[gain[r]].push(r as u32);
    }
    let mut cur_max = max_gain;
    let mut chosen = Vec::new();
    while uncovered > 0 {
        // gains only ever decrease, so the maximum can only move down
        while cur_max > 0 && buckets[cur_max].is_empty() {
            cur_max -= 1;
        }
        if cur_max == 0 {
            break; // defensive: mirrors the dense loop's bail-out
        }
        let best = *buckets[cur_max].iter().min().expect("bucket non-empty") as usize;
        chosen.push(best);
        for &c in sp.row_cols(best) {
            let c = c as usize;
            if covered[c] {
                continue;
            }
            covered[c] = true;
            uncovered -= 1;
            // every row covering c (including `best`) loses one gain unit
            for &k in sp.col_rows(c) {
                let k = k as usize;
                let g = gain[k];
                let p = pos[k];
                let last = *buckets[g].last().expect("k is in its bucket");
                buckets[g].swap_remove(p);
                if last as usize != k {
                    pos[last as usize] = p;
                }
                gain[k] = g - 1;
                pos[k] = buckets[g - 1].len();
                buckets[g - 1].push(k as u32);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn picks_largest_first() {
        let mat = m(&["0111", "1100", "1000"]);
        let cover = greedy_cover(&mat);
        assert_eq!(cover[0], 0);
        assert!(mat.is_cover(&cover));
    }

    #[test]
    fn handles_empty_matrix() {
        let mat = DetectionMatrix::from_rows(0, vec![]);
        assert!(greedy_cover(&mat).is_empty());
        assert!(greedy_cover_with(&mat, Backend::Sparse).is_empty());
    }

    #[test]
    fn ignores_uncoverable_columns() {
        let mat = m(&["10", "10"]);
        for backend in [Backend::Dense, Backend::Sparse] {
            assert_eq!(greedy_cover_with(&mat, backend), vec![0], "{backend}");
        }
    }

    /// Pins the documented tie-break contract: among rows of equal gain the
    /// *lower row index* is selected, at the first pick and at every later
    /// pick once incremental decrements have reshuffled the gains. The
    /// sparse rewrite must never silently change this selection order.
    #[test]
    fn ties_break_toward_the_lower_row_index() {
        // all three rows tie at gain 2 → row 0 wins; covering {0,1} zeroes
        // row 1's gain, so row 2 finishes. Expected exact order: [0, 2].
        let mat = m(&["0011", "0011", "1100"]);
        for backend in [Backend::Auto, Backend::Dense, Backend::Sparse] {
            assert_eq!(greedy_cover_with(&mat, backend), vec![0, 2], "{backend}");
        }

        // a mid-run tie: row 0 (gain 3) is picked first; on the remaining
        // columns {4,3} rows 1 and 2 then tie at gain 2 — row 1 must win.
        let mat = m(&["00111", "11000", "11000", "10000"]);
        for backend in [Backend::Auto, Backend::Dense, Backend::Sparse] {
            assert_eq!(greedy_cover_with(&mat, backend), vec![0, 1], "{backend}");
        }
    }

    #[test]
    fn greedy_is_valid_on_random_instances() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let nr = 4 + (next() % 10) as usize;
            let nc = 3 + (next() % 20) as usize;
            let mut rows = Vec::new();
            for _ in 0..nr {
                let mut v = fbist_bits::BitVec::zeros(nc);
                for c in 0..nc {
                    if next() % 4 == 0 {
                        v.set(c, true);
                    }
                }
                rows.push(v);
            }
            rows.push(fbist_bits::BitVec::ones(nc));
            let mat = DetectionMatrix::from_rows(nc, rows);
            assert!(mat.is_cover(&greedy_cover(&mat)));
        }
    }

    #[test]
    fn sparse_matches_dense_on_random_instances() {
        use crate::generate::{detection_shaped, random_instance};
        for seed in 0..12u64 {
            let m = random_instance(30, 90, 0.04 + 0.02 * seed as f64, seed);
            assert_eq!(
                greedy_cover_with(&m, Backend::Dense),
                greedy_cover_with(&m, Backend::Sparse),
                "random seed {seed}"
            );
        }
        for seed in 0..6u64 {
            let m = detection_shaped(40, 130, seed);
            assert_eq!(
                greedy_cover_with(&m, Backend::Dense),
                greedy_cover_with(&m, Backend::Sparse),
                "shaped seed {seed}"
            );
        }
    }

    #[test]
    fn known_log_factor_worst_case() {
        // classical greedy trap: two "half" rows are optimal but greedy
        // takes the big diagonal rows; still must return a valid cover.
        let mat = m(&[
            "11110000", // greedy bait
            "00001111", "10101010", "01010101",
        ]);
        let cover = greedy_cover(&mat);
        assert!(mat.is_cover(&cover));
        assert!(cover.len() <= 3);
    }
}
