//! Sparse adjacency view of a Detection Matrix and the backend selector.
//!
//! Real Detection Matrices are sparse: a triplet's test set detects a
//! small fraction of the random-resistant target faults, so a dense
//! `BitVec` scan pays for mostly-zero words on every greedy pick,
//! dominance probe and branch-and-bound node. [`SparseMatrix`] stores the
//! same incidence structure as compressed adjacency — CSR (per-row column
//! lists) plus CSC (per-column row lists), both index-ascending — and the
//! sparse solver paths in [`greedy`](crate::greedy_cover),
//! [`reduce`](crate::reduce) and [`ExactSolver`](crate::ExactSolver) walk
//! only the 1-cells.
//!
//! **Equivalence guarantee:** every sparse path is written to reproduce
//! its dense counterpart *bit for bit* — same cover rows in the same
//! order, same reduction event log, same branch-and-bound node count.
//! [`Backend`] is therefore purely a throughput knob, exactly like the
//! workspace's `--jobs` contract, and `Backend::Auto` may flip between
//! implementations on instance size without changing any result. The
//! root-level `sparse_dense_equivalence` suite pins this for every
//! genbench profile × TPG family.

use fbist_bits::BitMatrix;

use crate::matrix::DetectionMatrix;

/// Which covering implementation services a request.
///
/// `Auto` (the default) picks the sparse engine once the instance has at
/// least [`Backend::AUTO_SPARSE_CELLS`] cells — below that the dense
/// word-parallel scans win on constant factors, above it the incremental
/// sparse algorithms win asymptotically. Forcing `Dense` or `Sparse` is
/// useful for benchmarking and for the differential tests; it never
/// changes a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Size-based automatic choice (the default).
    #[default]
    Auto,
    /// Always use the dense `BitVec` scans.
    Dense,
    /// Always use the sparse incremental engine.
    Sparse,
}

impl Backend {
    /// Cell-count threshold (`rows × cols`) at which `Auto` switches from
    /// the dense scans to the sparse incremental engine.
    pub const AUTO_SPARSE_CELLS: usize = 1 << 15;

    /// `true` if this backend uses the sparse engine for a `rows × cols`
    /// instance.
    pub fn use_sparse(self, rows: usize, cols: usize) -> bool {
        match self {
            Backend::Auto => rows.saturating_mul(cols) >= Backend::AUTO_SPARSE_CELLS,
            Backend::Dense => false,
            Backend::Sparse => true,
        }
    }

    /// Parses a backend name as accepted by the CLI (`auto`, `dense`,
    /// `sparse`).
    pub fn parse(name: &str) -> Result<Backend, String> {
        match name {
            "auto" => Ok(Backend::Auto),
            "dense" => Ok(Backend::Dense),
            "sparse" => Ok(Backend::Sparse),
            other => Err(format!(
                "unknown backend {other:?} (expected auto, dense or sparse)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Dense => "dense",
            Backend::Sparse => "sparse",
        })
    }
}

/// Compressed row- and column-adjacency of a Detection Matrix.
///
/// Both directions are stored (CSR for "which faults does triplet `r`
/// detect", CSC for "which triplets detect fault `c`"), with index lists
/// in ascending order — the sparse solvers rely on that ordering to
/// reproduce the dense tie-breaking exactly. Indices are `u32` to halve
/// the memory traffic; matrices beyond `u32::MAX` rows or columns are far
/// outside anything the flow produces and are rejected.
///
/// # Example
///
/// ```
/// use fbist_setcover::{DetectionMatrix, SparseMatrix};
/// use fbist_bits::BitVec;
///
/// let rows: Vec<BitVec> = ["101", "011"].iter().map(|s| s.parse().unwrap()).collect();
/// let m = DetectionMatrix::from_rows(3, rows);
/// let sp = SparseMatrix::from_dense(&m);
/// assert_eq!(sp.nnz(), 4);
/// assert_eq!(sp.row_cols(0), &[0, 2]);
/// assert_eq!(sp.col_rows(1), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    col_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl SparseMatrix {
    /// Builds the sparse view of a [`DetectionMatrix`]. One pass over the
    /// packed words for CSR, one counting-sort pass for CSC.
    pub fn from_dense(matrix: &DetectionMatrix) -> SparseMatrix {
        SparseMatrix::from_bit_matrix(matrix.row_major())
    }

    /// Builds the sparse view of a raw `rows × cols` [`BitMatrix`].
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX`.
    pub fn from_bit_matrix(m: &BitMatrix) -> SparseMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed the sparse index width"
        );
        let nnz = m.count_ones();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut col_counts = vec![0usize; cols];
        row_ptr.push(0);
        for r in 0..rows {
            m.for_each_col_of_row(r, |c| {
                row_idx.push(c as u32);
                col_counts[c] += 1;
            });
            row_ptr.push(row_idx.len());
        }
        // CSC by counting sort: scanning rows in ascending order keeps each
        // column's row list ascending with no comparison sort.
        let mut col_ptr = Vec::with_capacity(cols + 1);
        col_ptr.push(0);
        for c in 0..cols {
            col_ptr.push(col_ptr[c] + col_counts[c]);
        }
        let mut cursor: Vec<usize> = col_ptr[..cols].to_vec();
        let mut col_idx = vec![0u32; nnz];
        for r in 0..rows {
            for &c in &row_idx[row_ptr[r]..row_ptr[r + 1]] {
                col_idx[cursor[c as usize]] = r as u32;
                cursor[c as usize] += 1;
            }
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            row_idx,
            col_ptr,
            col_idx,
        }
    }

    /// Number of rows (triplets).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (faults).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of 1-cells.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The ascending column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.row_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The ascending row indices covering column `c`.
    #[inline]
    pub fn col_rows(&self, c: usize) -> &[u32] {
        &self.col_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Number of columns row `r` covers.
    #[inline]
    pub fn row_weight(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Number of rows covering column `c`.
    #[inline]
    pub fn col_weight(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Fraction of 1-cells.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{detection_shaped, random_instance};

    #[test]
    fn adjacency_round_trips_the_dense_matrix() {
        let m = random_instance(23, 67, 0.13, 9);
        let sp = SparseMatrix::from_dense(&m);
        assert_eq!(sp.rows(), m.rows());
        assert_eq!(sp.cols(), m.cols());
        for r in 0..m.rows() {
            let cols: Vec<usize> = sp.row_cols(r).iter().map(|&c| c as usize).collect();
            assert_eq!(cols, m.row_major().cols_of_row(r), "row {r}");
            assert_eq!(sp.row_weight(r), m.row_weight(r));
        }
        for c in 0..m.cols() {
            let rows: Vec<usize> = sp.col_rows(c).iter().map(|&r| r as usize).collect();
            assert_eq!(rows, m.covering_rows(c), "col {c}");
            assert_eq!(sp.col_weight(c), m.col_weight(c));
        }
        assert_eq!(sp.nnz(), m.row_major().count_ones());
        assert!((sp.density() - m.density()).abs() < 1e-12);
    }

    #[test]
    fn adjacency_lists_are_ascending() {
        let m = detection_shaped(40, 150, 5);
        let sp = SparseMatrix::from_dense(&m);
        for r in 0..sp.rows() {
            assert!(sp.row_cols(r).windows(2).all(|w| w[0] < w[1]), "row {r}");
        }
        for c in 0..sp.cols() {
            assert!(sp.col_rows(c).windows(2).all(|w| w[0] < w[1]), "col {c}");
        }
    }

    #[test]
    fn empty_matrix() {
        let m = DetectionMatrix::from_rows(0, vec![]);
        let sp = SparseMatrix::from_dense(&m);
        assert_eq!(sp.nnz(), 0);
        assert_eq!(sp.density(), 0.0);
    }

    #[test]
    fn auto_backend_thresholds_on_cells() {
        assert!(!Backend::Auto.use_sparse(10, 10));
        assert!(Backend::Auto.use_sparse(1000, 1000));
        assert!(!Backend::Dense.use_sparse(1000, 1000));
        assert!(Backend::Sparse.use_sparse(1, 1));
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [Backend::Auto, Backend::Dense, Backend::Sparse] {
            assert_eq!(Backend::parse(&b.to_string()).unwrap(), b);
        }
        assert!(Backend::parse("bogus").is_err());
    }
}
