//! Essentiality and dominance reduction.
//!
//! The paper (§3.2): *"the Detection Matrix is simplified using
//! essentiality and dominance methods … iteratively applied until the
//! matrix cannot be reduced any more"*. These are the classical covering-
//! table reductions from two-level logic minimisation (McCluskey):
//!
//! * **Essentiality** — a column covered by exactly one active row forces
//!   that row into every solution ("necessary triplet"); the row and every
//!   column it covers leave the table.
//! * **Row dominance** — an active row whose active-column set is a subset
//!   of another active row's is never needed and is deleted.
//! * **Column dominance** (dual, optional) — if every row covering column
//!   `d` also covers column `c`, then satisfying `d` implies satisfying
//!   `c`; the weaker constraint `c` is deleted. The paper does not use it;
//!   it is exposed for the ablation study.

//!
//! Like the solvers, the reducer has two implementations selected by
//! [`Backend`]: the dense path runs masked word scans (`O(R²)` subset
//! tests per fixpoint round), the sparse path keeps incremental active
//! row/column weights on a [`SparseMatrix`] and restricts dominance
//! candidates through column adjacency. Both produce the identical
//! [`Reduction`] — same essential rows, same active sets, and the same
//! event log, entry for entry.

use fbist_bits::BitVec;

use crate::matrix::DetectionMatrix;
use crate::sparse::{Backend, SparseMatrix};

/// Which reductions to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducerConfig {
    /// Apply the essentiality rule.
    pub essentiality: bool,
    /// Apply row dominance.
    pub row_dominance: bool,
    /// Apply column dominance (off by default — the paper's reducer uses
    /// essentiality and row dominance only).
    pub col_dominance: bool,
}

impl Default for ReducerConfig {
    fn default() -> Self {
        ReducerConfig {
            essentiality: true,
            row_dominance: true,
            col_dominance: false,
        }
    }
}

impl ReducerConfig {
    /// Everything off — the ablation baseline (hand the full matrix to the
    /// solver).
    pub fn none() -> ReducerConfig {
        ReducerConfig {
            essentiality: false,
            row_dominance: false,
            col_dominance: false,
        }
    }

    /// Everything on, including column dominance.
    pub fn all() -> ReducerConfig {
        ReducerConfig {
            essentiality: true,
            row_dominance: true,
            col_dominance: true,
        }
    }
}

/// One step of the reduction, for auditability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionEvent {
    /// `row` is essential: it is the only active row covering `col`.
    Essential {
        /// The forced row.
        row: usize,
        /// The column that forced it.
        col: usize,
    },
    /// `row`'s active columns are a subset of `by`'s; `row` is deleted.
    RowDominated {
        /// The deleted row.
        row: usize,
        /// The dominating row.
        by: usize,
    },
    /// Constraint `col` is implied by constraint `implied_by`; deleted.
    ColDominated {
        /// The deleted (weaker) column.
        col: usize,
        /// The column that implies it.
        implied_by: usize,
    },
    /// `col` is covered by an essential row; deleted from the table.
    ColSatisfied {
        /// The satisfied column.
        col: usize,
        /// The essential row covering it.
        by: usize,
    },
    /// `col` has no covering row at all (degenerate instance); deleted.
    ColUncoverable {
        /// The uncoverable column.
        col: usize,
    },
}

/// Result of [`reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// Rows forced into every solution ("necessary triplets"), in
    /// discovery order.
    pub essential_rows: Vec<usize>,
    /// Still-active rows after reduction (candidates for the solver).
    pub active_rows: Vec<usize>,
    /// Still-active (uncovered, non-redundant) columns.
    pub active_cols: Vec<usize>,
    /// Columns that no row covers (degenerate; excluded from the cover
    /// obligation).
    pub uncoverable_cols: Vec<usize>,
    /// The full event log.
    pub log: Vec<ReductionEvent>,
    /// Number of fixpoint iterations.
    pub iterations: usize,
}

impl Reduction {
    /// `true` if the residual matrix is empty — the essential rows alone
    /// form the (unique minimal) solution, as happens on several of the
    /// paper's circuits (c499, c880, c1355, …).
    pub fn is_closed(&self) -> bool {
        self.active_cols.is_empty()
    }

    /// Residual matrix dimensions `(rows, cols)`.
    pub fn residual_size(&self) -> (usize, usize) {
        (self.active_rows.len(), self.active_cols.len())
    }
}

/// Applies the configured reductions to fixpoint. See the module docs.
///
/// Dispatches between the dense and sparse implementations by instance
/// size ([`Backend::Auto`]); see [`reduce_with`] to force a backend. The
/// backend never changes the result.
pub fn reduce(matrix: &DetectionMatrix, config: &ReducerConfig) -> Reduction {
    reduce_with(matrix, config, Backend::Auto)
}

/// [`reduce`] with an explicit backend. Dense and sparse produce the
/// identical [`Reduction`], including the event log order.
pub fn reduce_with(
    matrix: &DetectionMatrix,
    config: &ReducerConfig,
    backend: Backend,
) -> Reduction {
    if backend.use_sparse(matrix.rows(), matrix.cols()) {
        reduce_sparse(matrix, config)
    } else {
        reduce_dense(matrix, config)
    }
}

/// The dense reference implementation: masked word scans over the packed
/// matrix, all-pairs subset tests for dominance.
fn reduce_dense(matrix: &DetectionMatrix, config: &ReducerConfig) -> Reduction {
    let (nr, nc) = (matrix.rows(), matrix.cols());
    let mut row_active = BitVec::ones(nr);
    let mut col_active = BitVec::ones(nc);
    let mut essential_rows = Vec::new();
    let mut uncoverable = Vec::new();
    let mut log = Vec::new();
    let mut iterations = 0;

    // Pre-pass: drop columns nothing covers (degenerate instances only).
    for c in 0..nc {
        if matrix.col_weight(c) == 0 {
            col_active.set(c, false);
            uncoverable.push(c);
            log.push(ReductionEvent::ColUncoverable { col: c });
        }
    }

    loop {
        iterations += 1;
        let mut changed = false;

        // ---- essentiality ------------------------------------------------
        if config.essentiality {
            // iterate until no new essentials inside this phase
            let mut found = true;
            while found {
                found = false;
                for c in 0..nc {
                    if !col_active.get(c) {
                        continue;
                    }
                    let cnt = matrix.col_major().count_row_masked(c, &row_active);
                    if cnt == 1 {
                        // locate the single active covering row
                        let row = matrix
                            .covering_rows(c)
                            .into_iter()
                            .find(|&r| row_active.get(r))
                            .expect("count said one");
                        log.push(ReductionEvent::Essential { row, col: c });
                        essential_rows.push(row);
                        row_active.set(row, false);
                        // retire every column the essential row covers
                        for cc in matrix.row_major().cols_of_row(row) {
                            if col_active.get(cc) {
                                col_active.set(cc, false);
                                log.push(ReductionEvent::ColSatisfied { col: cc, by: row });
                            }
                        }
                        changed = true;
                        found = true;
                    }
                }
            }
        }

        // ---- row dominance ----------------------------------------------
        if config.row_dominance {
            let active: Vec<usize> = (0..nr).filter(|&r| row_active.get(r)).collect();
            let weights: Vec<usize> = active
                .iter()
                .map(|&r| matrix.row_major().count_row_masked(r, &col_active))
                .collect();
            for (ai, &r) in active.iter().enumerate() {
                if !row_active.get(r) {
                    continue;
                }
                // a row covering nothing active is trivially dominated
                // (by any other row); prefer reporting a real dominator.
                for (bi, &k) in active.iter().enumerate() {
                    if r == k || !row_active.get(k) {
                        continue;
                    }
                    if weights[ai] > weights[bi] {
                        continue; // cannot be a subset of a lighter row
                    }
                    if weights[ai] == weights[bi] && r < k {
                        continue; // tie-break: keep the lower index
                    }
                    if matrix.row_major().row_is_subset_masked(r, k, &col_active) {
                        log.push(ReductionEvent::RowDominated { row: r, by: k });
                        row_active.set(r, false);
                        changed = true;
                        break;
                    }
                }
            }
        }

        // ---- column dominance ---------------------------------------------
        if config.col_dominance {
            let active: Vec<usize> = (0..nc).filter(|&c| col_active.get(c)).collect();
            let weights: Vec<usize> = active
                .iter()
                .map(|&c| matrix.col_major().count_row_masked(c, &row_active))
                .collect();
            for (ci, &c) in active.iter().enumerate() {
                if !col_active.get(c) {
                    continue;
                }
                for (di, &d) in active.iter().enumerate() {
                    if c == d || !col_active.get(d) {
                        continue;
                    }
                    // drop c if rows(d) ⊆ rows(c): d is the tighter constraint
                    if weights[di] > weights[ci] {
                        continue;
                    }
                    if weights[di] == weights[ci] && d > c {
                        continue; // tie-break: keep the lower index
                    }
                    if matrix.col_major().row_is_subset_masked(d, c, &row_active) {
                        log.push(ReductionEvent::ColDominated {
                            col: c,
                            implied_by: d,
                        });
                        col_active.set(c, false);
                        changed = true;
                        break;
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    Reduction {
        essential_rows,
        active_rows: (0..nr).filter(|&r| row_active.get(r)).collect(),
        active_cols: (0..nc).filter(|&c| col_active.get(c)).collect(),
        uncoverable_cols: uncoverable,
        log,
        iterations,
    }
}

/// Incremental active-weight state shared by the sparse reduction phases.
///
/// `w[r]` is row `r`'s count of *active* columns and `cw[c]` is column
/// `c`'s count of *active* rows; deactivating a row or column updates the
/// dual counts along its adjacency list, so every count the dense code
/// recomputes with an `O(width/64)` masked scan is available here in O(1).
/// Each row and column is deactivated at most once, so all bookkeeping
/// over a full reduction costs `O(nnz)`.
struct SparseReducer<'a> {
    matrix: &'a DetectionMatrix,
    sp: SparseMatrix,
    row_active: Vec<bool>,
    col_active: Vec<bool>,
    w: Vec<usize>,
    cw: Vec<usize>,
}

impl SparseReducer<'_> {
    fn new(matrix: &DetectionMatrix) -> SparseReducer<'_> {
        let sp = SparseMatrix::from_dense(matrix);
        let (nr, nc) = (sp.rows(), sp.cols());
        SparseReducer {
            matrix,
            row_active: vec![true; nr],
            col_active: vec![true; nc],
            w: (0..nr).map(|r| sp.row_weight(r)).collect(),
            cw: (0..nc).map(|c| sp.col_weight(c)).collect(),
            sp,
        }
    }

    fn deactivate_row(&mut self, r: usize) {
        self.row_active[r] = false;
        for &c in self.sp.row_cols(r) {
            self.cw[c as usize] -= 1;
        }
    }

    fn deactivate_col(&mut self, c: usize) {
        self.col_active[c] = false;
        for &r in self.sp.col_rows(c) {
            self.w[r as usize] -= 1;
        }
    }

    /// `true` if row `r`'s active columns are all covered by row `k` —
    /// the dense `row_is_subset_masked(r, k, col_active)`, evaluated in
    /// `O(deg(r))` single-cell probes instead of a word scan.
    fn row_subset_on_active(&self, r: usize, k: usize) -> bool {
        self.sp.row_cols(r).iter().all(|&c| {
            let c = c as usize;
            !self.col_active[c] || self.matrix.get(k, c)
        })
    }
}

/// The sparse incremental implementation. The control flow deliberately
/// mirrors [`reduce_dense`] phase by phase and scan by scan, so the event
/// log comes out identical; only the *primitives* differ — O(1) cover
/// counts instead of masked popcounts, and dominance candidates drawn
/// from the adjacency list of one of the dominated row's columns (any
/// dominator must cover all of them) instead of every active row.
fn reduce_sparse(matrix: &DetectionMatrix, config: &ReducerConfig) -> Reduction {
    let (nr, nc) = (matrix.rows(), matrix.cols());
    let mut st = SparseReducer::new(matrix);
    let mut essential_rows = Vec::new();
    let mut uncoverable = Vec::new();
    let mut log = Vec::new();
    let mut iterations = 0;

    // Pre-pass: drop columns nothing covers (degenerate instances only).
    for c in 0..nc {
        if st.cw[c] == 0 {
            st.col_active[c] = false;
            uncoverable.push(c);
            log.push(ReductionEvent::ColUncoverable { col: c });
        }
    }

    loop {
        iterations += 1;
        let mut changed = false;

        // ---- essentiality ------------------------------------------------
        if config.essentiality {
            let mut found = true;
            while found {
                found = false;
                for c in 0..nc {
                    if !st.col_active[c] {
                        continue;
                    }
                    if st.cw[c] == 1 {
                        let row = st
                            .sp
                            .col_rows(c)
                            .iter()
                            .map(|&r| r as usize)
                            .find(|&r| st.row_active[r])
                            .expect("count said one");
                        log.push(ReductionEvent::Essential { row, col: c });
                        essential_rows.push(row);
                        st.deactivate_row(row);
                        // retire every column the essential row covers
                        for i in 0..st.sp.row_weight(row) {
                            let cc = st.sp.row_cols(row)[i] as usize;
                            if st.col_active[cc] {
                                st.deactivate_col(cc);
                                log.push(ReductionEvent::ColSatisfied { col: cc, by: row });
                            }
                        }
                        changed = true;
                        found = true;
                    }
                }
            }
        }

        // ---- row dominance ----------------------------------------------
        if config.row_dominance {
            let active: Vec<usize> = (0..nr).filter(|&r| st.row_active[r]).collect();
            for &r in &active {
                if !st.row_active[r] {
                    continue;
                }
                let wr = st.w[r];
                if wr == 0 {
                    // a row covering nothing active is trivially dominated
                    // by the first active row passing the tie-break (the
                    // dense loop's skip conditions reduce to exactly this)
                    for &k in &active {
                        if k == r || !st.row_active[k] {
                            continue;
                        }
                        if st.w[k] == 0 && r < k {
                            continue;
                        }
                        log.push(ReductionEvent::RowDominated { row: r, by: k });
                        st.deactivate_row(r);
                        changed = true;
                        break;
                    }
                    continue;
                }
                // any dominator covers all of r's active columns, so the
                // rows covering r's sparsest active column are a complete,
                // index-ascending candidate list
                let mut cstar = usize::MAX;
                let mut cstar_cw = usize::MAX;
                for &c in st.sp.row_cols(r) {
                    let c = c as usize;
                    if st.col_active[c] && st.cw[c] < cstar_cw {
                        cstar_cw = st.cw[c];
                        cstar = c;
                    }
                }
                for i in 0..st.sp.col_weight(cstar) {
                    let k = st.sp.col_rows(cstar)[i] as usize;
                    if k == r || !st.row_active[k] {
                        continue;
                    }
                    if wr > st.w[k] {
                        continue; // cannot be a subset of a lighter row
                    }
                    if wr == st.w[k] && r < k {
                        continue; // tie-break: keep the lower index
                    }
                    if st.row_subset_on_active(r, k) {
                        log.push(ReductionEvent::RowDominated { row: r, by: k });
                        st.deactivate_row(r);
                        changed = true;
                        break;
                    }
                }
            }
        }

        // ---- column dominance ---------------------------------------------
        if config.col_dominance {
            let active: Vec<usize> = (0..nc).filter(|&c| st.col_active[c]).collect();
            for &c in &active {
                if !st.col_active[c] {
                    continue;
                }
                for &d in &active {
                    if c == d || !st.col_active[d] {
                        continue;
                    }
                    // drop c if rows(d) ⊆ rows(c): d is the tighter constraint
                    if st.cw[d] > st.cw[c] {
                        continue;
                    }
                    if st.cw[d] == st.cw[c] && d > c {
                        continue; // tie-break: keep the lower index
                    }
                    let implies = st.sp.col_rows(d).iter().all(|&r| {
                        let r = r as usize;
                        !st.row_active[r] || st.matrix.get(r, c)
                    });
                    if implies {
                        log.push(ReductionEvent::ColDominated {
                            col: c,
                            implied_by: d,
                        });
                        st.deactivate_col(c);
                        changed = true;
                        break;
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    Reduction {
        essential_rows,
        active_rows: (0..nr).filter(|&r| st.row_active[r]).collect(),
        active_cols: (0..nc).filter(|&c| st.col_active[c]).collect(),
        uncoverable_cols: uncoverable,
        log,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn essential_row_detected() {
        // col 0 covered only by row 2 (string is MSB-first: last char = col 0)
        let mat = m(&["110", "010", "001"]);
        let r = reduce(&mat, &ReducerConfig::default());
        assert!(r.essential_rows.contains(&2));
        assert!(r
            .log
            .iter()
            .any(|e| matches!(e, ReductionEvent::Essential { row: 2, col: 0 })));
    }

    #[test]
    fn essential_cascade_closes_matrix() {
        // r0 essential for col2 ("100"), covering col2 leaves cols 1,0;
        // r1 = "011" wait — choose: r0=100, r1=110, r2=011.
        // col2 only in r0? "100"=col2; "110"=cols2,1 → col2 covered by r0,r1.
        // Use: r0=101 (cols 2,0), r1=010 (col 1), r2=110 (cols 2,1).
        // col0 essential → r0 forced, retires cols 2,0; col1: rows r1,r2
        // remain → not closed. Then row dominance: r1 ⊆ r2 on active {col1}?
        // r1 covers col1, r2 covers col1 → equal on active; tie keeps r1.
        // Second essentiality pass: col1 now covered by 1 active row → r1
        // essential → closed.
        let mat = m(&["101", "010", "110"]);
        let r = reduce(&mat, &ReducerConfig::default());
        assert!(r.is_closed(), "{r:?}");
        assert_eq!(r.essential_rows, vec![0, 1]);
    }

    #[test]
    fn row_dominance_removes_subsets() {
        let mat = m(&["1100", "1110", "0011"]);
        let r = reduce(
            &mat,
            &ReducerConfig {
                essentiality: false,
                row_dominance: true,
                col_dominance: false,
            },
        );
        // row 0 ⊂ row 1
        assert!(!r.active_rows.contains(&0));
        assert!(r.active_rows.contains(&1));
        assert!(r
            .log
            .iter()
            .any(|e| matches!(e, ReductionEvent::RowDominated { row: 0, by: 1 })));
    }

    #[test]
    fn equal_rows_keep_lower_index() {
        let mat = m(&["110", "110", "001"]);
        let r = reduce(
            &mat,
            &ReducerConfig {
                essentiality: false,
                row_dominance: true,
                col_dominance: false,
            },
        );
        assert!(r.active_rows.contains(&0));
        assert!(!r.active_rows.contains(&1));
    }

    #[test]
    fn col_dominance_drops_implied_constraint() {
        // col layout (MSB first strings of width 2): col1, col0.
        // rows: r0=11, r1=01 → rows(col1)={0}, rows(col0)={0,1}.
        // rows(col1) ⊆ rows(col0) → covering col1 implies col0 → drop col0.
        let mat = m(&["11", "01"]);
        let r = reduce(
            &mat,
            &ReducerConfig {
                essentiality: false,
                row_dominance: false,
                col_dominance: true,
            },
        );
        assert_eq!(r.active_cols, vec![1]);
        assert!(r.log.iter().any(|e| matches!(
            e,
            ReductionEvent::ColDominated {
                col: 0,
                implied_by: 1
            }
        )));
    }

    #[test]
    fn reduction_preserves_optimum() {
        // brute-force check on a batch of pseudo-random instances
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let nr = 3 + (next() % 6) as usize;
            let nc = 2 + (next() % 6) as usize;
            let mut rows = Vec::new();
            for _ in 0..nr {
                let mut v = BitVec::zeros(nc);
                for c in 0..nc {
                    if next() % 3 == 0 {
                        v.set(c, true);
                    }
                }
                rows.push(v);
            }
            // ensure coverable: last row covers everything
            rows.push(BitVec::ones(nc));
            let mat = DetectionMatrix::from_rows(nc, rows);
            let opt_full = brute_force_optimum(&mat);
            for cfg in [ReducerConfig::default(), ReducerConfig::all()] {
                let r = reduce(&mat, &cfg);
                // optimum after reduction = essentials + optimum of residual
                let (sub, _) = mat.submatrix(&r.active_rows, &r.active_cols);
                let opt_res = brute_force_optimum(&sub);
                assert_eq!(
                    r.essential_rows.len() + opt_res,
                    opt_full,
                    "reduction changed the optimum (cfg {cfg:?})"
                );
            }
        }
    }

    /// Smallest cover size by exhaustive subset enumeration (rows ≤ 20).
    fn brute_force_optimum(m: &DetectionMatrix) -> usize {
        let nr = m.rows();
        assert!(nr <= 20, "brute force is for tiny instances");
        if m.cols() == 0 {
            return 0;
        }
        let mut best = usize::MAX;
        for mask in 0u32..(1u32 << nr) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let rows: Vec<usize> = (0..nr).filter(|&r| (mask >> r) & 1 == 1).collect();
            if m.is_cover(&rows) {
                best = size;
            }
        }
        best
    }

    use fbist_bits::BitVec;

    #[test]
    fn uncoverable_columns_isolated() {
        let mat = m(&["10", "10"]);
        let r = reduce(&mat, &ReducerConfig::default());
        assert_eq!(r.uncoverable_cols, vec![0]);
        assert!(!r.active_cols.contains(&0));
    }

    #[test]
    fn sparse_matches_dense_reduction_everywhere() {
        use crate::generate::{detection_shaped, random_instance};
        let configs = [
            ReducerConfig::default(),
            ReducerConfig::all(),
            ReducerConfig::none(),
            ReducerConfig {
                essentiality: false,
                row_dominance: true,
                col_dominance: false,
            },
            ReducerConfig {
                essentiality: false,
                row_dominance: false,
                col_dominance: true,
            },
        ];
        for seed in 0..8u64 {
            let m = random_instance(35, 80, 0.05 + 0.02 * (seed % 4) as f64, seed);
            for cfg in configs {
                assert_eq!(
                    reduce_with(&m, &cfg, Backend::Dense),
                    reduce_with(&m, &cfg, Backend::Sparse),
                    "random seed {seed}, cfg {cfg:?}"
                );
            }
        }
        for seed in 0..5u64 {
            let m = detection_shaped(40, 110, seed);
            for cfg in configs {
                assert_eq!(
                    reduce_with(&m, &cfg, Backend::Dense),
                    reduce_with(&m, &cfg, Backend::Sparse),
                    "shaped seed {seed}, cfg {cfg:?}"
                );
            }
        }
        // degenerate shapes: uncoverable columns, duplicate and empty rows
        let m = m(&["10", "10"]);
        assert_eq!(
            reduce_with(&m, &ReducerConfig::default(), Backend::Dense),
            reduce_with(&m, &ReducerConfig::default(), Backend::Sparse),
        );
        let m2 = DetectionMatrix::from_rows(
            3,
            vec![
                "110".parse().unwrap(),
                "110".parse().unwrap(),
                "000".parse().unwrap(),
                "001".parse().unwrap(),
            ],
        );
        for cfg in configs {
            assert_eq!(
                reduce_with(&m2, &cfg, Backend::Dense),
                reduce_with(&m2, &cfg, Backend::Sparse),
                "degenerate, cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn no_reductions_is_identity() {
        let mat = m(&["110", "011", "101"]);
        let r = reduce(&mat, &ReducerConfig::none());
        assert!(r.essential_rows.is_empty());
        assert_eq!(r.active_rows.len(), 3);
        assert_eq!(r.active_cols.len(), 3);
    }
}
