//! The end-to-end solve pipeline (reduce → exact/greedy) and its result.

use std::fmt;

use crate::exact::{ExactConfig, ExactSolver};
use crate::greedy::greedy_cover_with;
use crate::local::{local_search_cover, LocalSearchConfig};
use crate::matrix::DetectionMatrix;
use crate::reduce::{reduce_with, ReducerConfig, Reduction};
use crate::sparse::Backend;

/// Which engine processes the residual matrix after reduction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Engine {
    /// Exact branch-and-bound (the paper's LINGO role).
    #[default]
    Exact,
    /// Chvátal greedy (for very large residuals).
    Greedy,
    /// Ruin-and-recreate local search (§3.3's "local research and
    /// meta-heuristic techniques" option for very large matrices).
    LocalSearch(LocalSearchConfig),
}

/// Configuration of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveConfig {
    /// Reductions to apply before the engine.
    pub reducer: ReducerConfig,
    /// Engine for the residual matrix.
    pub engine: Engine,
    /// Node budget for the exact engine.
    pub exact: ExactConfig,
    /// Covering implementation (dense scans vs. the sparse incremental
    /// engine) for the reducer and the engine. Purely a throughput knob:
    /// every backend computes bit-identical results, and [`Backend::Auto`]
    /// (the default) picks by instance size.
    pub backend: Backend,
}

/// A set-covering solution in the paper's terms: the *necessary* triplets
/// found by essentiality plus the triplets chosen by the solver on the
/// residual matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverSolution {
    necessary: Vec<usize>,
    solver_chosen: Vec<usize>,
    optimal: bool,
    reduction_iterations: usize,
    residual_size: (usize, usize),
    solver_nodes: u64,
}

impl CoverSolution {
    /// Rows forced by essentiality ("necessary triplets", Table 2).
    pub fn necessary(&self) -> &[usize] {
        &self.necessary
    }

    /// Rows chosen by the engine on the residual matrix ("LINGO triplets",
    /// Table 2).
    pub fn solver_chosen(&self) -> &[usize] {
        &self.solver_chosen
    }

    /// All selected rows: necessary first, then solver-chosen.
    pub fn rows(&self) -> Vec<usize> {
        let mut out = self.necessary.clone();
        out.extend_from_slice(&self.solver_chosen);
        out
    }

    /// Solution cardinality (the paper's `#Triplets`).
    pub fn cardinality(&self) -> usize {
        self.necessary.len() + self.solver_chosen.len()
    }

    /// `true` when the engine proved minimality of its part (greedy runs
    /// and budget-exhausted exact runs report `false`).
    pub fn is_optimal(&self) -> bool {
        self.optimal
    }

    /// Residual matrix size `(rows, cols)` handed to the engine.
    pub fn residual_size(&self) -> (usize, usize) {
        self.residual_size
    }

    /// Reduction fixpoint iterations.
    pub fn reduction_iterations(&self) -> usize {
        self.reduction_iterations
    }

    /// Search nodes spent by the exact engine (0 for greedy).
    pub fn solver_nodes(&self) -> u64 {
        self.solver_nodes
    }
}

impl fmt::Display for CoverSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} triplets ({} necessary + {} solver{})",
            self.cardinality(),
            self.necessary.len(),
            self.solver_chosen.len(),
            if self.optimal { ", optimal" } else { "" }
        )
    }
}

/// Solves a Detection Matrix with the default configuration
/// (essentiality + row dominance, then exact branch-and-bound).
pub fn solve(matrix: &DetectionMatrix, config: &SolveConfig) -> CoverSolution {
    let reduction = reduce_with(matrix, &config.reducer, config.backend);
    solve_with(matrix, config, &reduction)
}

/// Solves using a precomputed [`Reduction`] (lets callers inspect or log
/// the reduction separately without paying for it twice).
pub fn solve_with(
    matrix: &DetectionMatrix,
    config: &SolveConfig,
    reduction: &Reduction,
) -> CoverSolution {
    let residual_size = reduction.residual_size();
    let (solver_chosen, optimal, nodes) = if reduction.active_cols.is_empty() {
        (Vec::new(), true, 0)
    } else {
        let (sub, map) = matrix.submatrix(&reduction.active_rows, &reduction.active_cols);
        match config.engine {
            Engine::Exact => {
                let res = ExactSolver::with_config(config.exact)
                    .with_backend(config.backend)
                    .solve(&sub);
                (
                    res.rows.iter().map(|&r| map.row_map[r]).collect(),
                    res.optimal,
                    res.nodes,
                )
            }
            Engine::Greedy => {
                let rows = greedy_cover_with(&sub, config.backend);
                (rows.iter().map(|&r| map.row_map[r]).collect(), false, 0)
            }
            Engine::LocalSearch(cfg) => {
                let rows = local_search_cover(&sub, &cfg);
                (rows.iter().map(|&r| map.row_map[r]).collect(), false, 0)
            }
        }
    };
    CoverSolution {
        necessary: reduction.essential_rows.clone(),
        solver_chosen,
        optimal,
        reduction_iterations: reduction.iterations,
        residual_size,
        solver_nodes: nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_bits::BitVec;

    fn m(rows: &[&str]) -> DetectionMatrix {
        let cols = rows[0].len();
        DetectionMatrix::from_rows(cols, rows.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn closed_by_reduction() {
        // col0 only in r2, col2 only in r0 → both essential, covering all.
        let mat = m(&["110", "010", "001"]);
        let sol = solve(&mat, &SolveConfig::default());
        assert!(sol.solver_chosen().is_empty());
        assert_eq!(sol.necessary(), &[2, 0]);
        assert!(sol.is_optimal());
        assert!(mat.is_cover(&sol.rows()));
    }

    #[test]
    fn mixed_necessary_and_solver() {
        // col 4 (leftmost) only in row 0 → essential, retires cols {4,3}.
        // Remaining cols {2,1,0} over rows 1..4 need the solver.
        let mat = m(&[
            "11000", // essential via col 4
            "00110", "00011", "00101",
        ]);
        let sol = solve(&mat, &SolveConfig::default());
        assert_eq!(sol.necessary(), &[0]);
        assert!(!sol.solver_chosen().is_empty());
        assert!(mat.is_cover(&sol.rows()));
        assert!(sol.is_optimal());
        assert_eq!(sol.cardinality(), 3); // 0 + {e.g. 1&2 or 3&2}
    }

    #[test]
    fn engines_agree_on_validity() {
        let mat = m(&["00001111", "00110000", "01000000", "01010101", "10101010"]);
        for engine in [
            Engine::Exact,
            Engine::Greedy,
            Engine::LocalSearch(crate::local::LocalSearchConfig::default()),
        ] {
            let cfg = SolveConfig {
                engine,
                reducer: crate::reduce::ReducerConfig::none(),
                ..SolveConfig::default()
            };
            let sol = solve(&mat, &cfg);
            assert!(mat.is_cover(&sol.rows()), "{engine:?}");
        }
    }

    #[test]
    fn reduction_plus_solver_is_optimal() {
        // random cross-check against a no-reduction exact run
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..25 {
            let nr = 4 + (next() % 8) as usize;
            let nc = 4 + (next() % 10) as usize;
            let mut rows = Vec::new();
            for _ in 0..nr {
                let mut v = BitVec::zeros(nc);
                for c in 0..nc {
                    if next() % 3 == 0 {
                        v.set(c, true);
                    }
                }
                rows.push(v);
            }
            rows.push(BitVec::ones(nc));
            let mat = DetectionMatrix::from_rows(nc, rows);
            let with_red = solve(&mat, &SolveConfig::default());
            let without = solve(
                &mat,
                &SolveConfig {
                    reducer: crate::reduce::ReducerConfig::none(),
                    ..SolveConfig::default()
                },
            );
            assert!(with_red.is_optimal() && without.is_optimal());
            assert_eq!(with_red.cardinality(), without.cardinality());
            assert!(mat.is_cover(&with_red.rows()));
        }
    }

    #[test]
    fn display_summarises() {
        let mat = m(&["10", "01"]);
        let sol = solve(&mat, &SolveConfig::default());
        let s = sol.to_string();
        assert!(s.contains("2 triplets"), "{s}");
        assert!(s.contains("2 necessary"), "{s}");
    }
}
