//! Property-based tests for the bit-vector arithmetic and cube algebra.
//!
//! These check the algebraic laws the rest of the workspace relies on:
//! modular arithmetic must behave exactly like a hardware register, and
//! cube merge/compatibility must be a proper meet-semilattice.

use fbist_bits::{BitMatrix, BitVec, Cube, Trit};
use proptest::prelude::*;

/// Strategy: a width in [1, 200] and two raw word seeds.
fn wv2() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>)> {
    (1usize..200).prop_flat_map(|w| {
        let nw = w.div_ceil(64);
        (
            Just(w),
            proptest::collection::vec(any::<u64>(), nw),
            proptest::collection::vec(any::<u64>(), nw),
        )
    })
}

proptest! {
    #[test]
    fn add_commutes((w, a, b) in wv2()) {
        let a = BitVec::from_words(w, &a);
        let b = BitVec::from_words(w, &b);
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_sub_roundtrip((w, a, b) in wv2()) {
        let a = BitVec::from_words(w, &a);
        let b = BitVec::from_words(w, &b);
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn neg_is_sub_from_zero((w, a, _b) in wv2()) {
        let a = BitVec::from_words(w, &a);
        prop_assert!(a.wrapping_add(&a.wrapping_neg()).is_zero());
    }

    #[test]
    fn mul_commutes((w, a, b) in wv2()) {
        let a = BitVec::from_words(w, &a);
        let b = BitVec::from_words(w, &b);
        prop_assert_eq!(a.wrapping_mul(&b), b.wrapping_mul(&a));
    }

    #[test]
    fn mul_distributes_over_add((w, a, b) in wv2(), c in proptest::collection::vec(any::<u64>(), 4)) {
        let a = BitVec::from_words(w, &a);
        let b = BitVec::from_words(w, &b);
        let c = BitVec::from_words(w, &c);
        let lhs = c.wrapping_mul(&a.wrapping_add(&b));
        let rhs = c.wrapping_mul(&a).wrapping_add(&c.wrapping_mul(&b));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mul_matches_u128_reference(w in 1usize..120, x in any::<u64>(), y in any::<u64>()) {
        // Reference: compute in u128 then truncate, valid whenever w <= 120
        // and both operands fit in 60 bits so the product fits u128.
        let x = x >> 4; // 60-bit
        let y = y >> 4;
        let a = BitVec::from_u64(w, x);
        let b = BitVec::from_u64(w, y);
        let got = a.wrapping_mul(&b);
        let full = (x as u128) * (y as u128);
        // compare low min(w,128) bits
        for i in 0..w.min(128) {
            let want = if w <= 64 {
                // operands were truncated to w bits first
                let xa = x & fbist_bits::tail_mask(w);
                let yb = y & fbist_bits::tail_mask(w);
                ((xa as u128 * yb as u128) >> i) & 1 == 1
            } else {
                (full >> i) & 1 == 1
            };
            prop_assert_eq!(got.get(i), want, "bit {} of {}x{} width {}", i, x, y, w);
        }
    }

    #[test]
    fn parse_display_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..150)) {
        let v = BitVec::from_bits(&bits);
        let s = v.to_string();
        let back: BitVec = s.parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn shl_shr_inverse_on_lsb_cleared((w, a, _b) in wv2()) {
        let mut a = BitVec::from_words(w, &a);
        if w > 0 { a.set(w - 1, false); }
        prop_assert_eq!(a.shl1().shr1(), a);
    }

    #[test]
    fn transposed_roundtrip((rows, cols, words) in bitmatrix()) {
        let m = matrix_from(rows, cols, &words);
        let t = m.transposed();
        prop_assert_eq!(t.rows(), cols);
        prop_assert_eq!(t.cols(), rows);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m.get(r, c), t.get(c, r), "cell ({}, {})", r, c);
            }
        }
        prop_assert_eq!(t.transposed(), m);
    }

    #[test]
    fn hamming_triangle((w, a, b) in wv2(), c in proptest::collection::vec(any::<u64>(), 4)) {
        let a = BitVec::from_words(w, &a);
        let b = BitVec::from_words(w, &b);
        let c = BitVec::from_words(w, &c);
        let ab = a.hamming_distance(&b);
        let bc = b.hamming_distance(&c);
        let ac = a.hamming_distance(&c);
        prop_assert!(ac <= ab + bc);
    }
}

/// Strategy: matrix dimensions plus enough raw words to fill every row.
fn bitmatrix() -> impl Strategy<Value = (usize, usize, Vec<u64>)> {
    (1usize..24, 1usize..150).prop_flat_map(|(rows, cols)| {
        let per_row = cols.div_ceil(64);
        (
            Just(rows),
            Just(cols),
            proptest::collection::vec(any::<u64>(), rows * per_row),
        )
    })
}

fn matrix_from(rows: usize, cols: usize, words: &[u64]) -> BitMatrix {
    let per_row = cols.div_ceil(64);
    let row_vecs: Vec<BitVec> = (0..rows)
        .map(|r| BitVec::from_words(cols, &words[r * per_row..(r + 1) * per_row]))
        .collect();
    BitMatrix::from_rows(cols, &row_vecs)
}

/// Strategy: a cube as a string over {0,1,X}.
fn cube_str() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('0'), Just('1'), Just('X')], 1..80)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #[test]
    fn cube_merge_symmetric(a in cube_str(), b in cube_str()) {
        let a: Cube = a.parse().unwrap();
        let mut bs = b;
        // force same width
        bs.truncate(a.width());
        while bs.len() < a.width() { bs.push('X'); }
        let b: Cube = bs.parse().unwrap();
        prop_assert_eq!(a.is_compatible(&b), b.is_compatible(&a));
        match (a.merge(&b), b.merge(&a)) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y),
            (None, None) => {}
            _ => prop_assert!(false, "merge not symmetric"),
        }
    }

    #[test]
    fn merged_cube_contains_common_patterns(a in cube_str()) {
        let a: Cube = a.parse().unwrap();
        // Any fill of a is contained in a.
        let p0 = a.fill_const(false);
        let p1 = a.fill_const(true);
        prop_assert!(a.contains(&p0));
        prop_assert!(a.contains(&p1));
    }

    #[test]
    fn fill_with_is_contained(a in cube_str(), seed in any::<u64>()) {
        let a: Cube = a.parse().unwrap();
        let mut s = seed | 1;
        let mut src = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let p = a.fill_with(&mut src);
        prop_assert!(a.contains(&p));
        prop_assert!(Cube::from_pattern(&p).is_fully_specified());
    }

    #[test]
    fn cube_set_get_consistent(a in cube_str(), idx_frac in 0.0f64..1.0) {
        let mut c: Cube = a.parse().unwrap();
        let i = ((c.width() - 1) as f64 * idx_frac) as usize;
        for t in [Trit::Zero, Trit::One, Trit::X] {
            c.set(i, t);
            prop_assert_eq!(c.get(i), t);
        }
    }
}

proptest! {
    #[test]
    fn matrix_subset_is_reflexive_transitive(
        rows in 2usize..8, cols in 1usize..100, seed in any::<u64>()
    ) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let mut m = BitMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if next() % 3 == 0 { m.set(r, c, true); }
            }
        }
        for r in 0..rows {
            prop_assert!(m.row_is_subset(r, r));
        }
        // transitivity spot check on the first three rows
        if rows >= 3 && m.row_is_subset(0, 1) && m.row_is_subset(1, 2) {
            prop_assert!(m.row_is_subset(0, 2));
        }
        // transpose involution
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn union_of_rows_covers_each_row(rows in 1usize..6, cols in 1usize..80, seed in any::<u64>()) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let mut m = BitMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if next() % 4 == 0 { m.set(r, c, true); }
            }
        }
        let all: Vec<usize> = (0..rows).collect();
        let u = m.union_of_rows(&all);
        for r in 0..rows {
            for c in m.cols_of_row(r) {
                prop_assert!(u.get(c));
            }
        }
    }
}
