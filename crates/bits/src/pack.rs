//! Transposition between pattern-major and signal-major bit layouts.
//!
//! The logic and fault simulators in this workspace are *bit-parallel*: one
//! block word per circuit signal carries the value of that signal under up
//! to `64·W` different input patterns simultaneously (flat lane `k` of the
//! word is the value under pattern `k` — see [`SimWord`] for the lane
//! numbering contract). Test sets, on the other hand, are naturally
//! stored pattern-major (one [`BitVec`] per pattern, one bit per input).
//! This module converts between the two layouts, in both the classic
//! one-`u64` (`W = 1`) form and the width-generic [`SimWord<W>`] form —
//! the `u64` functions are exactly the `W = 1` instantiations.
//!
//! # Example
//!
//! ```
//! use fbist_bits::{BitVec, pack};
//!
//! let patterns = vec![
//!     "01".parse::<BitVec>().unwrap(), // pattern 0: in0=1, in1=0
//!     "10".parse::<BitVec>().unwrap(), // pattern 1: in0=0, in1=1
//! ];
//! let words = pack::pack_patterns(2, &patterns);
//! assert_eq!(words[0] & 0b11, 0b01); // in0 is 1 under pattern 0 only
//! assert_eq!(words[1] & 0b11, 0b10); // in1 is 1 under pattern 1 only
//! ```

use crate::bitvec::BitVec;
use crate::simd::SimWord;

/// Maximum number of patterns per packed `u64` block (= lanes per word).
pub const BLOCK: usize = 64;

/// Packs up to 64 patterns into signal-major words.
///
/// Returns one `u64` per input signal; bit `k` of word `i` is the value of
/// input `i` under pattern `k`. Patterns beyond the first 64 are ignored.
///
/// # Panics
///
/// Panics if any pattern's width differs from `inputs`.
pub fn pack_patterns(inputs: usize, patterns: &[BitVec]) -> Vec<u64> {
    pack_patterns_w::<1>(inputs, patterns)
        .into_iter()
        .map(|w| w.0[0])
        .collect()
}

/// Packs up to `64·W` patterns into signal-major [`SimWord`]s.
///
/// Width-generic [`pack_patterns`]: flat lane `k` of word `i` is the value
/// of input `i` under pattern `k`. Patterns beyond the first `64·W` are
/// ignored.
///
/// # Panics
///
/// Panics if any pattern's width differs from `inputs`.
pub fn pack_patterns_w<const W: usize>(inputs: usize, patterns: &[BitVec]) -> Vec<SimWord<W>> {
    let mut words = vec![SimWord::<W>::ZERO; inputs];
    let take = patterns.len().min(SimWord::<W>::LANES);
    pack_patterns_at_w(&mut words, 0, &patterns[..take]);
    words
}

/// Splits a pattern set into packed blocks of at most 64 patterns each.
///
/// Returns `(blocks, patterns_in_last_block)`. An empty input yields no
/// blocks.
pub fn pack_blocks(inputs: usize, patterns: &[BitVec]) -> (Vec<Vec<u64>>, usize) {
    let (blocks, last) = pack_blocks_w::<1>(inputs, patterns);
    (
        blocks
            .into_iter()
            .map(|b| b.into_iter().map(|w| w.0[0]).collect())
            .collect(),
        last,
    )
}

/// Splits a pattern set into packed blocks of at most `64·W` patterns
/// each, in a single pass over the patterns.
///
/// Returns `(blocks, patterns_in_last_block)`. An empty input yields no
/// blocks.
///
/// # Panics
///
/// Panics if any pattern's width differs from `inputs`.
pub fn pack_blocks_w<const W: usize>(
    inputs: usize,
    patterns: &[BitVec],
) -> (Vec<Vec<SimWord<W>>>, usize) {
    let lanes = SimWord::<W>::LANES;
    let mut blocks: Vec<Vec<SimWord<W>>> = Vec::with_capacity(patterns.len().div_ceil(lanes));
    let mut last = 0;
    for (k, p) in patterns.iter().enumerate() {
        let lane = k % lanes;
        if lane == 0 {
            blocks.push(vec![SimWord::<W>::ZERO; inputs]);
        }
        let block = blocks.last_mut().expect("pushed above");
        assert_eq!(p.width(), inputs, "pattern {k} width mismatch");
        scatter_pattern(block, lane, p);
        last = lane + 1;
    }
    (blocks, last)
}

/// Unpacks signal-major words back into `count` pattern-major [`BitVec`]s.
///
/// Inverse of [`pack_patterns`] for `count <= 64`.
pub fn unpack_patterns(words: &[u64], count: usize) -> Vec<BitVec> {
    assert!(count <= BLOCK, "cannot unpack more than {BLOCK} patterns");
    (0..count)
        .map(|k| {
            let mut p = BitVec::zeros(words.len());
            for (i, &w) in words.iter().enumerate() {
                if (w >> k) & 1 == 1 {
                    p.set(i, true);
                }
            }
            p
        })
        .collect()
}

/// Unpacks signal-major [`SimWord`]s back into `count` pattern-major
/// [`BitVec`]s. Inverse of [`pack_patterns_w`] for `count <= 64·W`.
pub fn unpack_patterns_w<const W: usize>(words: &[SimWord<W>], count: usize) -> Vec<BitVec> {
    assert!(
        count <= SimWord::<W>::LANES,
        "cannot unpack more than {} patterns",
        SimWord::<W>::LANES
    );
    (0..count)
        .map(|k| {
            let mut p = BitVec::zeros(words.len());
            for (i, w) in words.iter().enumerate() {
                if w.lane(k) {
                    p.set(i, true);
                }
            }
            p
        })
        .collect()
}

/// A mask with the low `n` bits set — selects the valid pattern lanes of a
/// partially filled block.
///
/// ```
/// assert_eq!(fbist_bits::pack::lane_mask(64), u64::MAX);
/// assert_eq!(fbist_bits::pack::lane_mask(3), 0b111);
/// assert_eq!(fbist_bits::pack::lane_mask(0), 0);
/// ```
#[inline]
pub const fn lane_mask(n: usize) -> u64 {
    if n >= BLOCK {
        u64::MAX
    } else if n == 0 {
        0
    } else {
        (1u64 << n) - 1
    }
}

/// A [`SimWord`] mask with the low `n` flat lanes set — the width-generic
/// [`lane_mask`].
#[inline]
pub fn lane_mask_w<const W: usize>(n: usize) -> SimWord<W> {
    let mut out = SimWord::<W>::ZERO;
    for (i, w) in out.0.iter_mut().enumerate() {
        *w = lane_mask(n.saturating_sub(i * BLOCK));
    }
    out
}

/// A mask with `len` bits set starting at lane `start` — selects one *lane
/// group* of a shared block (the lanes one batched row occupies).
///
/// ```
/// assert_eq!(fbist_bits::pack::lane_group_mask(0, 64), u64::MAX);
/// assert_eq!(fbist_bits::pack::lane_group_mask(2, 3), 0b11100);
/// assert_eq!(fbist_bits::pack::lane_group_mask(60, 4), 0xF000_0000_0000_0000);
/// assert_eq!(fbist_bits::pack::lane_group_mask(5, 0), 0);
/// ```
///
/// # Panics
///
/// Panics if the group overruns the block — `start + len > 64`, including
/// `start + len` combinations that would overflow `usize` (checked
/// arithmetic, so release builds panic instead of silently wrapping into
/// an in-range group).
#[inline]
pub const fn lane_group_mask(start: usize, len: usize) -> u64 {
    match start.checked_add(len) {
        Some(end) if end <= BLOCK => lane_mask(len) << start,
        _ => panic!("lane group overruns the block"),
    }
}

/// A [`SimWord`] mask with `len` flat lanes set starting at lane `start` —
/// the width-generic [`lane_group_mask`].
///
/// # Panics
///
/// Panics (checked arithmetic, never silent wraparound) if the group
/// overruns the flat lane space: `start + len > 64·W`.
#[inline]
pub fn lane_group_mask_w<const W: usize>(start: usize, len: usize) -> SimWord<W> {
    match start.checked_add(len) {
        Some(end) if end <= SimWord::<W>::LANES => {}
        _ => panic!("lane group overruns the block"),
    }
    let mut out = SimWord::<W>::ZERO;
    for (i, w) in out.0.iter_mut().enumerate() {
        let lo = start.saturating_sub(i * BLOCK).min(BLOCK);
        let hi = (start + len).saturating_sub(i * BLOCK).min(BLOCK);
        *w = lane_mask(hi) & !lane_mask(lo);
    }
    out
}

/// Packs patterns into an existing block of signal-major words, occupying
/// the lanes `lane_offset..lane_offset + patterns.len()`.
///
/// This is the building block of cross-row batching: several pattern
/// segments from different rows share one 64-lane block, each at its own
/// lane offset. Lanes outside the group are left untouched.
///
/// # Panics
///
/// Panics if the group overruns the block or a pattern's width differs
/// from `words.len()`.
pub fn pack_patterns_at(words: &mut [u64], lane_offset: usize, patterns: &[BitVec]) {
    assert!(
        lane_offset + patterns.len() <= BLOCK,
        "lane group overruns the block: offset {lane_offset} + {} patterns",
        patterns.len()
    );
    for (k, p) in patterns.iter().enumerate() {
        assert_eq!(p.width(), words.len(), "pattern {k} width mismatch");
        let bit = 1u64 << (lane_offset + k);
        for (i, &pw) in p.as_words().iter().enumerate() {
            let mut m = pw;
            while m != 0 {
                words[i * BLOCK + m.trailing_zeros() as usize] |= bit;
                m &= m - 1;
            }
        }
    }
}

/// Packs patterns into an existing block of signal-major [`SimWord`]s,
/// occupying the flat lanes `lane_offset..lane_offset + patterns.len()` —
/// the width-generic [`pack_patterns_at`].
///
/// # Panics
///
/// Panics if the group overruns the flat lane space or a pattern's width
/// differs from `words.len()`.
pub fn pack_patterns_at_w<const W: usize>(
    words: &mut [SimWord<W>],
    lane_offset: usize,
    patterns: &[BitVec],
) {
    assert!(
        lane_offset + patterns.len() <= SimWord::<W>::LANES,
        "lane group overruns the block: offset {lane_offset} + {} patterns",
        patterns.len()
    );
    for (k, p) in patterns.iter().enumerate() {
        assert_eq!(p.width(), words.len(), "pattern {k} width mismatch");
        scatter_pattern(words, lane_offset + k, p);
    }
}

/// Sets flat lane `lane` of `words[i]` for every set bit `i` of `p`,
/// scanning the pattern word-at-a-time (one `trailing_zeros` per set bit
/// instead of one `get` per input).
#[inline]
fn scatter_pattern<const W: usize>(words: &mut [SimWord<W>], lane: usize, p: &BitVec) {
    let wi = lane / BLOCK;
    let bit = 1u64 << (lane % BLOCK);
    for (i, &pw) in p.as_words().iter().enumerate() {
        let mut m = pw;
        while m != 0 {
            words[i * BLOCK + m.trailing_zeros() as usize].0[wi] |= bit;
            m &= m - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let patterns: Vec<BitVec> = (0..10u64).map(|v| BitVec::from_u64(7, v * 37)).collect();
        let words = pack_patterns(7, &patterns);
        let back = unpack_patterns(&words, 10);
        assert_eq!(back, patterns);
    }

    #[test]
    fn pack_unpack_roundtrip_wide() {
        let patterns: Vec<BitVec> = (0..200u64).map(|v| BitVec::from_u64(9, v * 37)).collect();
        let words = pack_patterns_w::<4>(9, &patterns);
        let back = unpack_patterns_w(&words, 200);
        assert_eq!(back, patterns);
    }

    #[test]
    fn wide_block_is_consecutive_narrow_blocks() {
        // lane k of a W-wide block == lane k%64 of narrow block k/64: the
        // flat-lane contract that makes every width byte-identical.
        let patterns: Vec<BitVec> = (0..130u64).map(|v| BitVec::from_u64(7, v * 31)).collect();
        let wide = pack_patterns_w::<4>(7, &patterns);
        let (narrow, _) = pack_blocks(7, &patterns);
        for i in 0..7 {
            for (b, nb) in narrow.iter().enumerate() {
                assert_eq!(wide[i].0[b], nb[i], "input {i} word {b}");
            }
            assert_eq!(wide[i].0[3], 0, "lanes past the pattern count stay 0");
        }
    }

    #[test]
    fn pack_blocks_chunks() {
        let patterns: Vec<BitVec> = (0..130u64).map(|v| BitVec::from_u64(5, v)).collect();
        let (blocks, last) = pack_blocks(5, &patterns);
        assert_eq!(blocks.len(), 3);
        assert_eq!(last, 2);
        let back = unpack_patterns(&blocks[2], last);
        assert_eq!(back[0], patterns[128]);
        assert_eq!(back[1], patterns[129]);
    }

    #[test]
    fn pack_blocks_wide_chunks() {
        let patterns: Vec<BitVec> = (0..300u64).map(|v| BitVec::from_u64(5, v)).collect();
        let (blocks, last) = pack_blocks_w::<2>(5, &patterns);
        assert_eq!(blocks.len(), 3);
        assert_eq!(last, 300 - 2 * 128);
        let back = unpack_patterns_w(&blocks[2], last);
        assert_eq!(back, patterns[256..]);
    }

    #[test]
    fn empty_pattern_set() {
        let (blocks, last) = pack_blocks(4, &[]);
        assert!(blocks.is_empty());
        assert_eq!(last, 0);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63).count_ones(), 63);
    }

    #[test]
    fn lane_masks_wide() {
        assert_eq!(lane_mask_w::<2>(0), SimWord::ZERO);
        assert_eq!(lane_mask_w::<2>(128), SimWord::MAX);
        let m = lane_mask_w::<2>(70);
        assert_eq!(m.0, [u64::MAX, 0b11_1111]);
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let p = vec![BitVec::zeros(3)];
        let _ = pack_patterns(4, &p);
    }

    #[test]
    fn pack_at_matches_whole_block_packing() {
        // packing two segments at their offsets == packing the
        // concatenation in one go
        let a: Vec<BitVec> = (0..5u64).map(|v| BitVec::from_u64(6, v * 11)).collect();
        let b: Vec<BitVec> = (0..7u64).map(|v| BitVec::from_u64(6, v * 23)).collect();
        let mut concat = a.clone();
        concat.extend(b.iter().cloned());
        let whole = pack_patterns(6, &concat);
        let mut words = vec![0u64; 6];
        pack_patterns_at(&mut words, 0, &a);
        pack_patterns_at(&mut words, 5, &b);
        assert_eq!(words, whole);
    }

    #[test]
    fn pack_at_wide_matches_whole_block_packing() {
        let a: Vec<BitVec> = (0..80u64).map(|v| BitVec::from_u64(6, v * 11)).collect();
        let b: Vec<BitVec> = (0..47u64).map(|v| BitVec::from_u64(6, v * 23)).collect();
        let mut concat = a.clone();
        concat.extend(b.iter().cloned());
        let whole = pack_patterns_w::<2>(6, &concat);
        let mut words = vec![SimWord::<2>::ZERO; 6];
        pack_patterns_at_w(&mut words, 0, &a);
        pack_patterns_at_w(&mut words, 80, &b);
        assert_eq!(words, whole);
    }

    #[test]
    fn lane_group_masks_tile_the_block() {
        assert_eq!(lane_group_mask(0, 10) | lane_group_mask(10, 54), u64::MAX);
        assert_eq!(lane_group_mask(0, 10) & lane_group_mask(10, 54), 0);
        assert_eq!(lane_group_mask(63, 1), 1u64 << 63);
    }

    #[test]
    fn lane_group_masks_wide() {
        // a group straddling word boundaries sets exactly its flat lanes
        let m = lane_group_mask_w::<4>(60, 10);
        assert_eq!(m.0, [0xF000_0000_0000_0000, 0b11_1111, 0, 0]);
        assert_eq!(m.count_ones(), 10);
        assert_eq!(m.trailing_zeros(), 60);
        assert_eq!(lane_group_mask_w::<4>(0, 256), SimWord::MAX);
        assert_eq!(lane_group_mask_w::<4>(100, 0), SimWord::ZERO);
        // tiles the flat space like the u64 version tiles 64 lanes
        let a = lane_group_mask_w::<2>(0, 100);
        let b = lane_group_mask_w::<2>(100, 28);
        assert_eq!(a | b, SimWord::MAX);
        assert_eq!(a & b, SimWord::ZERO);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn lane_group_overrun_panics() {
        let mut words = vec![0u64; 2];
        let patterns = vec![BitVec::zeros(2); 10];
        pack_patterns_at(&mut words, 60, &patterns);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn lane_group_mask_overrun_panics() {
        let _ = lane_group_mask(60, 5);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn lane_group_mask_overflow_panics_not_wraps() {
        // start + len overflows usize; without checked arithmetic the sum
        // wraps into range and silently yields a bogus in-range mask
        let _ = lane_group_mask(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn lane_group_mask_wide_overflow_panics_not_wraps() {
        let _ = lane_group_mask_w::<8>(usize::MAX, 2);
    }
}
