//! Transposition between pattern-major and signal-major bit layouts.
//!
//! The logic and fault simulators in this workspace are *bit-parallel*: one
//! `u64` word per circuit signal carries the value of that signal under up
//! to 64 different input patterns simultaneously (bit `k` of the word is the
//! value under pattern `k`). Test sets, on the other hand, are naturally
//! stored pattern-major (one [`BitVec`] per pattern, one bit per input).
//! This module converts between the two layouts.
//!
//! # Example
//!
//! ```
//! use fbist_bits::{BitVec, pack};
//!
//! let patterns = vec![
//!     "01".parse::<BitVec>().unwrap(), // pattern 0: in0=1, in1=0
//!     "10".parse::<BitVec>().unwrap(), // pattern 1: in0=0, in1=1
//! ];
//! let words = pack::pack_patterns(2, &patterns);
//! assert_eq!(words[0] & 0b11, 0b01); // in0 is 1 under pattern 0 only
//! assert_eq!(words[1] & 0b11, 0b10); // in1 is 1 under pattern 1 only
//! ```

use crate::bitvec::BitVec;

/// Maximum number of patterns per packed block.
pub const BLOCK: usize = 64;

/// Packs up to 64 patterns into signal-major words.
///
/// Returns one `u64` per input signal; bit `k` of word `i` is the value of
/// input `i` under pattern `k`. Patterns beyond the first 64 are ignored.
///
/// # Panics
///
/// Panics if any pattern's width differs from `inputs`.
pub fn pack_patterns(inputs: usize, patterns: &[BitVec]) -> Vec<u64> {
    let mut words = vec![0u64; inputs];
    for (k, p) in patterns.iter().take(BLOCK).enumerate() {
        assert_eq!(p.width(), inputs, "pattern {k} width mismatch");
        for (i, word) in words.iter_mut().enumerate() {
            if p.get(i) {
                *word |= 1u64 << k;
            }
        }
    }
    words
}

/// Splits a pattern set into packed blocks of at most 64 patterns each.
///
/// Returns `(blocks, patterns_in_last_block)`. An empty input yields no
/// blocks.
pub fn pack_blocks(inputs: usize, patterns: &[BitVec]) -> (Vec<Vec<u64>>, usize) {
    let mut blocks = Vec::with_capacity(patterns.len().div_ceil(BLOCK));
    let mut last = 0;
    for chunk in patterns.chunks(BLOCK) {
        blocks.push(pack_patterns(inputs, chunk));
        last = chunk.len();
    }
    (blocks, last)
}

/// Unpacks signal-major words back into `count` pattern-major [`BitVec`]s.
///
/// Inverse of [`pack_patterns`] for `count <= 64`.
pub fn unpack_patterns(words: &[u64], count: usize) -> Vec<BitVec> {
    assert!(count <= BLOCK, "cannot unpack more than {BLOCK} patterns");
    (0..count)
        .map(|k| {
            let mut p = BitVec::zeros(words.len());
            for (i, &w) in words.iter().enumerate() {
                if (w >> k) & 1 == 1 {
                    p.set(i, true);
                }
            }
            p
        })
        .collect()
}

/// A mask with the low `n` bits set — selects the valid pattern lanes of a
/// partially filled block.
///
/// ```
/// assert_eq!(fbist_bits::pack::lane_mask(64), u64::MAX);
/// assert_eq!(fbist_bits::pack::lane_mask(3), 0b111);
/// assert_eq!(fbist_bits::pack::lane_mask(0), 0);
/// ```
#[inline]
pub const fn lane_mask(n: usize) -> u64 {
    if n >= BLOCK {
        u64::MAX
    } else if n == 0 {
        0
    } else {
        (1u64 << n) - 1
    }
}

/// A mask with `len` bits set starting at lane `start` — selects one *lane
/// group* of a shared block (the lanes one batched row occupies).
///
/// ```
/// assert_eq!(fbist_bits::pack::lane_group_mask(0, 64), u64::MAX);
/// assert_eq!(fbist_bits::pack::lane_group_mask(2, 3), 0b11100);
/// assert_eq!(fbist_bits::pack::lane_group_mask(60, 4), 0xF000_0000_0000_0000);
/// assert_eq!(fbist_bits::pack::lane_group_mask(5, 0), 0);
/// ```
///
/// # Panics
///
/// Panics if the group overruns the block (`start + len > 64`).
#[inline]
pub const fn lane_group_mask(start: usize, len: usize) -> u64 {
    assert!(start + len <= BLOCK, "lane group overruns the block");
    lane_mask(len) << start
}

/// Packs patterns into an existing block of signal-major words, occupying
/// the lanes `lane_offset..lane_offset + patterns.len()`.
///
/// This is the building block of cross-row batching: several pattern
/// segments from different rows share one 64-lane block, each at its own
/// lane offset. Lanes outside the group are left untouched.
///
/// # Panics
///
/// Panics if the group overruns the block or a pattern's width differs
/// from `words.len()`.
pub fn pack_patterns_at(words: &mut [u64], lane_offset: usize, patterns: &[BitVec]) {
    assert!(
        lane_offset + patterns.len() <= BLOCK,
        "lane group overruns the block: offset {lane_offset} + {} patterns",
        patterns.len()
    );
    for (k, p) in patterns.iter().enumerate() {
        assert_eq!(p.width(), words.len(), "pattern {k} width mismatch");
        let bit = 1u64 << (lane_offset + k);
        for (i, word) in words.iter_mut().enumerate() {
            if p.get(i) {
                *word |= bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let patterns: Vec<BitVec> = (0..10u64).map(|v| BitVec::from_u64(7, v * 37)).collect();
        let words = pack_patterns(7, &patterns);
        let back = unpack_patterns(&words, 10);
        assert_eq!(back, patterns);
    }

    #[test]
    fn pack_blocks_chunks() {
        let patterns: Vec<BitVec> = (0..130u64).map(|v| BitVec::from_u64(5, v)).collect();
        let (blocks, last) = pack_blocks(5, &patterns);
        assert_eq!(blocks.len(), 3);
        assert_eq!(last, 2);
        let back = unpack_patterns(&blocks[2], last);
        assert_eq!(back[0], patterns[128]);
        assert_eq!(back[1], patterns[129]);
    }

    #[test]
    fn empty_pattern_set() {
        let (blocks, last) = pack_blocks(4, &[]);
        assert!(blocks.is_empty());
        assert_eq!(last, 0);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63).count_ones(), 63);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let p = vec![BitVec::zeros(3)];
        let _ = pack_patterns(4, &p);
    }

    #[test]
    fn pack_at_matches_whole_block_packing() {
        // packing two segments at their offsets == packing the
        // concatenation in one go
        let a: Vec<BitVec> = (0..5u64).map(|v| BitVec::from_u64(6, v * 11)).collect();
        let b: Vec<BitVec> = (0..7u64).map(|v| BitVec::from_u64(6, v * 23)).collect();
        let mut concat = a.clone();
        concat.extend(b.iter().cloned());
        let whole = pack_patterns(6, &concat);
        let mut words = vec![0u64; 6];
        pack_patterns_at(&mut words, 0, &a);
        pack_patterns_at(&mut words, 5, &b);
        assert_eq!(words, whole);
    }

    #[test]
    fn lane_group_masks_tile_the_block() {
        assert_eq!(lane_group_mask(0, 10) | lane_group_mask(10, 54), u64::MAX);
        assert_eq!(lane_group_mask(0, 10) & lane_group_mask(10, 54), 0);
        assert_eq!(lane_group_mask(63, 1), 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn lane_group_overrun_panics() {
        let mut words = vec![0u64; 2];
        let patterns = vec![BitVec::zeros(2); 10];
        pack_patterns_at(&mut words, 60, &patterns);
    }
}
