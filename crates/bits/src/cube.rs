//! Three-valued test cubes.

use std::fmt;
use std::str::FromStr;

use crate::bitvec::{BitVec, ParseBitVecError};

/// A single three-valued logic value: `0`, `1` or don't-care (`X`).
///
/// ```
/// use fbist_bits::Trit;
/// assert_eq!(Trit::from_bool(true), Trit::One);
/// assert_eq!(Trit::X.to_bool(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unspecified / don't-care.
    #[default]
    X,
}

impl Trit {
    /// Converts a concrete boolean into a trit.
    pub fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The concrete value, or `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// `true` unless the value is `X`.
    pub fn is_specified(self) -> bool {
        self != Trit::X
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Trit::Zero => "0",
            Trit::One => "1",
            Trit::X => "X",
        })
    }
}

/// A test *cube*: a partially specified input assignment.
///
/// A cube over `w` inputs assigns each input one of `0`, `1`, `X`. It is the
/// natural output of a deterministic ATPG (only the inputs needed to excite
/// and propagate a fault are specified) and the input of pattern *fill*,
/// which replaces the `X` positions by concrete values.
///
/// Internally a cube is a pair of [`BitVec`]s: a *care* mask (`1` where the
/// bit is specified) and a *value* plane that is kept at zero wherever the
/// care bit is clear, so structural equality equals semantic equality.
///
/// # Example
///
/// ```
/// use fbist_bits::{Cube, Trit};
///
/// let mut c: Cube = "1X0".parse()?; // MSB-first, like BitVec
/// assert_eq!(c.get(0), Trit::Zero);
/// assert_eq!(c.get(1), Trit::X);
/// assert_eq!(c.get(2), Trit::One);
/// c.set(1, Trit::One);
/// assert!(c.is_fully_specified());
/// # Ok::<(), fbist_bits::ParseBitVecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    care: BitVec,
    value: BitVec,
}

impl Cube {
    /// Creates a cube of the given width with every position `X`.
    pub fn all_x(width: usize) -> Cube {
        Cube {
            care: BitVec::zeros(width),
            value: BitVec::zeros(width),
        }
    }

    /// Creates a fully specified cube from a concrete pattern.
    pub fn from_pattern(pattern: &BitVec) -> Cube {
        Cube {
            care: BitVec::ones(pattern.width()),
            value: pattern.clone(),
        }
    }

    /// Width in positions.
    pub fn width(&self) -> usize {
        self.care.width()
    }

    /// The care mask: bit `i` set iff position `i` is specified.
    pub fn care(&self) -> &BitVec {
        &self.care
    }

    /// The value plane (zero at unspecified positions).
    pub fn value(&self) -> &BitVec {
        &self.value
    }

    /// Value at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn get(&self, i: usize) -> Trit {
        if !self.care.get(i) {
            Trit::X
        } else if self.value.get(i) {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Sets position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set(&mut self, i: usize, t: Trit) {
        match t {
            Trit::X => {
                self.care.set(i, false);
                self.value.set(i, false);
            }
            Trit::Zero => {
                self.care.set(i, true);
                self.value.set(i, false);
            }
            Trit::One => {
                self.care.set(i, true);
                self.value.set(i, true);
            }
        }
    }

    /// Number of specified (non-`X`) positions.
    pub fn specified_count(&self) -> usize {
        self.care.count_ones()
    }

    /// `true` if no position is `X`.
    pub fn is_fully_specified(&self) -> bool {
        self.care.count_ones() == self.care.width()
    }

    /// `true` if two cubes agree on every position both specify.
    ///
    /// Compatible cubes can be [merged](Cube::merge) into one, the basis of
    /// static test compaction.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn is_compatible(&self, other: &Cube) -> bool {
        let both = &self.care & &other.care;
        let diff = &self.value ^ &other.value;
        (&both & &diff).is_zero()
    }

    /// Merges two compatible cubes (union of their specified positions).
    ///
    /// Returns `None` if the cubes conflict.
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if !self.is_compatible(other) {
            return None;
        }
        Some(Cube {
            care: &self.care | &other.care,
            value: &self.value | &other.value,
        })
    }

    /// `true` if `pattern` is contained in this cube, i.e. the pattern
    /// matches every specified position.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn contains(&self, pattern: &BitVec) -> bool {
        let diff = &self.value ^ pattern;
        (&diff & &self.care).is_zero()
    }

    /// Fills every `X` position from the supplied word source, producing a
    /// concrete pattern (random fill).
    ///
    /// ```
    /// use fbist_bits::Cube;
    /// let c: Cube = "1XX0".parse().unwrap();
    /// let p = c.fill_with(&mut || u64::MAX);
    /// assert_eq!(p.to_string(), "1110"); // Xs filled with 1s
    /// ```
    pub fn fill_with<F: FnMut() -> u64>(&self, word_source: &mut F) -> BitVec {
        let w = self.width();
        let random = BitVec::random_with(w, word_source);
        // value where cared, random elsewhere
        &self.value | &(&random & &!&self.care)
    }

    /// Fills every `X` position with `bit`.
    pub fn fill_const(&self, bit: bool) -> BitVec {
        if bit {
            &self.value | &!&self.care
        } else {
            self.value.clone()
        }
    }
}

impl fmt::Display for Cube {
    /// MSB-first rendering with `X` for don't-cares, e.g. `1X0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width() == 0 {
            return write!(f, "ε");
        }
        for i in (0..self.width()).rev() {
            write!(f, "{}", self.get(i))?;
        }
        Ok(())
    }
}

impl FromStr for Cube {
    type Err = ParseBitVecError;

    /// Parses an MSB-first string of `0`, `1`, `X`/`x`/`-`; `_` is ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cleaned: Vec<char> = s.chars().filter(|&c| c != '_').collect();
        let width = cleaned.len();
        let mut cube = Cube::all_x(width);
        for (pos, c) in cleaned.into_iter().enumerate() {
            let i = width - 1 - pos;
            match c {
                '0' => cube.set(i, Trit::Zero),
                '1' => cube.set(i, Trit::One),
                'X' | 'x' | '-' => {}
                _ => {
                    // reuse BitVec's error by delegating to its parser
                    return Err("?".parse::<BitVec>().unwrap_err());
                }
            }
        }
        Ok(cube)
    }
}

// Bit-wise operator plumbing used above; defined on references to avoid
// consuming operands.
impl std::ops::BitAnd for &BitVec {
    type Output = BitVec;
    fn bitand(self, rhs: &BitVec) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "bitand: width mismatch");
        let words: Vec<u64> = self
            .as_words()
            .iter()
            .zip(rhs.as_words())
            .map(|(a, b)| a & b)
            .collect();
        BitVec::from_words(self.width(), &words)
    }
}

impl std::ops::BitOr for &BitVec {
    type Output = BitVec;
    fn bitor(self, rhs: &BitVec) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "bitor: width mismatch");
        let words: Vec<u64> = self
            .as_words()
            .iter()
            .zip(rhs.as_words())
            .map(|(a, b)| a | b)
            .collect();
        BitVec::from_words(self.width(), &words)
    }
}

impl std::ops::BitXor for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: &BitVec) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "bitxor: width mismatch");
        let words: Vec<u64> = self
            .as_words()
            .iter()
            .zip(rhs.as_words())
            .map(|(a, b)| a ^ b)
            .collect();
        BitVec::from_words(self.width(), &words)
    }
}

impl std::ops::Not for &BitVec {
    type Output = BitVec;
    fn not(self) -> BitVec {
        let words: Vec<u64> = self.as_words().iter().map(|a| !a).collect();
        BitVec::from_words(self.width(), &words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_x_roundtrip() {
        let c = Cube::all_x(5);
        assert_eq!(c.specified_count(), 0);
        assert_eq!(c.to_string(), "XXXXX");
        assert!(!c.is_fully_specified());
    }

    #[test]
    fn set_get() {
        let mut c = Cube::all_x(4);
        c.set(0, Trit::One);
        c.set(3, Trit::Zero);
        assert_eq!(c.get(0), Trit::One);
        assert_eq!(c.get(1), Trit::X);
        assert_eq!(c.get(3), Trit::Zero);
        assert_eq!(c.to_string(), "0XX1");
        c.set(0, Trit::X);
        assert_eq!(c.get(0), Trit::X);
        assert_eq!(c.specified_count(), 1);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["1X0", "XXXX", "0101", "1-0"] {
            let c: Cube = s.parse().unwrap();
            let canon = s.replace('-', "X");
            assert_eq!(c.to_string(), canon);
        }
        assert!("10Z".parse::<Cube>().is_err());
    }

    #[test]
    fn compatibility_and_merge() {
        let a: Cube = "1X0".parse().unwrap();
        let b: Cube = "1XX".parse().unwrap();
        let c: Cube = "0X0".parse().unwrap();
        assert!(a.is_compatible(&b));
        assert!(!a.is_compatible(&c));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.to_string(), "1X0");
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn merge_unions_cares() {
        let a: Cube = "1XX".parse().unwrap();
        let b: Cube = "XX0".parse().unwrap();
        assert_eq!(a.merge(&b).unwrap().to_string(), "1X0");
    }

    #[test]
    fn contains_pattern() {
        let c: Cube = "1X0".parse().unwrap();
        assert!(c.contains(&"110".parse().unwrap()));
        assert!(c.contains(&"100".parse().unwrap()));
        assert!(!c.contains(&"101".parse().unwrap()));
    }

    #[test]
    fn fill_respects_cares() {
        let c: Cube = "1XX0".parse().unwrap();
        assert_eq!(c.fill_const(false).to_string(), "1000");
        assert_eq!(c.fill_const(true).to_string(), "1110");
        let filled = c.fill_with(&mut || 0b0110);
        assert!(c.contains(&filled));
    }

    #[test]
    fn from_pattern_is_fully_specified() {
        let p: BitVec = "1010".parse().unwrap();
        let c = Cube::from_pattern(&p);
        assert!(c.is_fully_specified());
        assert!(c.contains(&p));
    }
}
