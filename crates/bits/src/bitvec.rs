//! Arbitrary-width bit vectors with modular arithmetic.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{tail_mask, words_for, WORD_BITS};

/// An arbitrary-width bit vector.
///
/// `BitVec` is the fundamental value type of this workspace: it represents a
/// test pattern applied to the primary inputs of a circuit, the state
/// register of an accumulator- or LFSR-based test pattern generator, and the
/// seed values `δ` / `θ` of a reseeding triplet.
///
/// Bit 0 is the least-significant bit. All arithmetic is performed modulo
/// `2^width`, exactly like a hardware register of that width.
///
/// The internal representation always keeps the unused high bits of the last
/// storage word at zero, so equality and hashing are structural.
///
/// # Example
///
/// ```
/// use fbist_bits::BitVec;
///
/// let a: BitVec = "1011".parse()?; // MSB-first textual form
/// assert_eq!(a.width(), 4);
/// assert_eq!(a.to_u64(), Some(0b1011));
/// let b = a.wrapping_add(&BitVec::from_u64(4, 0b0101));
/// assert_eq!(b.to_u64(), Some(0)); // 11 + 5 = 16 ≡ 0 (mod 2^4)
/// # Ok::<(), fbist_bits::ParseBitVecError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    width: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of the given width.
    ///
    /// ```
    /// let z = fbist_bits::BitVec::zeros(100);
    /// assert!(z.is_zero());
    /// assert_eq!(z.width(), 100);
    /// ```
    pub fn zeros(width: usize) -> Self {
        BitVec {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates an all-one bit vector of the given width.
    ///
    /// ```
    /// let o = fbist_bits::BitVec::ones(65);
    /// assert_eq!(o.count_ones(), 65);
    /// ```
    pub fn ones(width: usize) -> Self {
        let mut v = BitVec {
            width,
            words: vec![u64::MAX; words_for(width)],
        };
        v.normalize();
        v
    }

    /// Creates a bit vector holding `value` zero-extended (or truncated) to
    /// `width` bits.
    ///
    /// ```
    /// let v = fbist_bits::BitVec::from_u64(8, 0x1_F0); // truncated to 8 bits
    /// assert_eq!(v.to_u64(), Some(0xF0));
    /// ```
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut v = BitVec::zeros(width);
        if !v.words.is_empty() {
            v.words[0] = value;
        }
        v.normalize();
        v
    }

    /// Creates a bit vector from a little-endian slice of bools
    /// (`bits[0]` becomes bit 0).
    ///
    /// ```
    /// let v = fbist_bits::BitVec::from_bits(&[true, false, true]);
    /// assert_eq!(v.to_u64(), Some(0b101));
    /// ```
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a bit vector of the given width from raw little-endian words.
    ///
    /// Extra words are ignored; missing words are zero; unused high bits of
    /// the last word are cleared.
    pub fn from_words(width: usize, words: &[u64]) -> Self {
        let n = words_for(width);
        let mut w: Vec<u64> = words.iter().copied().take(n).collect();
        w.resize(n, 0);
        let mut v = BitVec { width, words: w };
        v.normalize();
        v
    }

    /// Creates a bit vector of the given width by taking ownership of a
    /// little-endian word buffer, avoiding [`from_words`](Self::from_words)'
    /// copy — the constructor of choice when a hot loop has just filled the
    /// buffer (e.g. word-at-a-time pattern generation).
    ///
    /// The buffer is resized to the exact storage size (extra words dropped,
    /// missing words zero) and unused high bits of the last word are cleared.
    pub fn from_word_vec(width: usize, mut words: Vec<u64>) -> Self {
        words.resize(words_for(width), 0);
        let mut v = BitVec { width, words };
        v.normalize();
        v
    }

    /// Creates a uniformly random bit vector using the supplied word source.
    ///
    /// The closure is called once per 64-bit storage word. Taking a closure
    /// rather than an RNG trait keeps this crate dependency-free; callers
    /// typically pass `|| rng.gen()`.
    ///
    /// ```
    /// use fbist_bits::BitVec;
    /// let mut state = 0x1234_5678_9abc_def0u64;
    /// let mut next = || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
    /// let v = BitVec::random_with(130, &mut next);
    /// assert_eq!(v.width(), 130);
    /// ```
    pub fn random_with<F: FnMut() -> u64>(width: usize, mut word_source: F) -> Self {
        let mut v = BitVec {
            width,
            words: (0..words_for(width)).map(|_| word_source()).collect(),
        };
        v.normalize();
        v
    }

    /// Width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` if the width is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Value of bit `i` (bit 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = i / WORD_BITS;
        let b = i % WORD_BITS;
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn toggle(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// ORs `other` into `self`, word by word.
    ///
    /// ```
    /// use fbist_bits::BitVec;
    /// let mut a: BitVec = "0011".parse().unwrap();
    /// a.union_with(&"0101".parse().unwrap());
    /// assert_eq!(a, "0111".parse().unwrap());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.width, other.width, "union_with requires equal widths");
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The underlying little-endian storage words.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// The value as a `u64` if the width allows it, i.e. if all bits above
    /// bit 63 are zero.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words.len() <= 1 {
            Some(self.words.first().copied().unwrap_or(0))
        } else if self.words[1..].iter().all(|&w| w == 0) {
            Some(self.words[0])
        } else {
            None
        }
    }

    /// Iterator over the bits from LSB (bit 0) to MSB.
    ///
    /// ```
    /// let v = fbist_bits::BitVec::from_u64(3, 0b110);
    /// let bits: Vec<bool> = v.iter().collect();
    /// assert_eq!(bits, vec![false, true, true]);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, idx: 0 }
    }

    /// Returns a copy zero-extended or truncated to `new_width` bits.
    ///
    /// ```
    /// let v = fbist_bits::BitVec::from_u64(8, 0xAB);
    /// assert_eq!(v.resized(4).to_u64(), Some(0xB));
    /// assert_eq!(v.resized(16).to_u64(), Some(0xAB));
    /// ```
    pub fn resized(&self, new_width: usize) -> BitVec {
        let mut out = BitVec::from_words(new_width, &self.words);
        out.normalize();
        out
    }

    /// Modular addition: `(self + rhs) mod 2^width`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn wrapping_add(&self, rhs: &BitVec) -> BitVec {
        self.check_width(rhs, "wrapping_add");
        let mut out = BitVec::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.words.len() {
            let (s1, c1) = self.words[i].overflowing_add(rhs.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Modular subtraction: `(self - rhs) mod 2^width`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn wrapping_sub(&self, rhs: &BitVec) -> BitVec {
        self.check_width(rhs, "wrapping_sub");
        let mut out = BitVec::zeros(self.width);
        let mut borrow = 0u64;
        for i in 0..self.words.len() {
            let (d1, b1) = self.words[i].overflowing_sub(rhs.words[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.words[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        out.normalize();
        out
    }

    /// Modular multiplication: `(self * rhs) mod 2^width`
    /// (schoolbook over 64-bit limbs).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn wrapping_mul(&self, rhs: &BitVec) -> BitVec {
        self.check_width(rhs, "wrapping_mul");
        let n = self.words.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            if self.words[i] == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..n - i {
                let prod =
                    (self.words[i] as u128) * (rhs.words[j] as u128) + acc[i + j] as u128 + carry;
                acc[i + j] = prod as u64;
                carry = prod >> 64;
            }
        }
        let mut out = BitVec {
            width: self.width,
            words: acc,
        };
        out.normalize();
        out
    }

    /// Two's-complement negation: `(0 - self) mod 2^width`.
    pub fn wrapping_neg(&self) -> BitVec {
        BitVec::zeros(self.width).wrapping_sub(self)
    }

    /// Adds one modulo `2^width`, in place. Returns `true` on wrap-around to
    /// zero. Useful for exhaustive enumeration of small widths.
    pub fn increment(&mut self) -> bool {
        for w in &mut self.words {
            let (s, carry) = w.overflowing_add(1);
            *w = s;
            if !carry {
                break;
            }
        }
        self.normalize();
        // wrap-around happened exactly when the truncated result is zero
        // (covers widths that are not word multiples, where the carry never
        // leaves the top storage word)
        self.is_zero()
    }

    /// Logical shift left by one bit (the MSB is dropped).
    pub fn shl1(&self) -> BitVec {
        let mut out = BitVec::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.words.len() {
            out.words[i] = (self.words[i] << 1) | carry;
            carry = self.words[i] >> 63;
        }
        out.normalize();
        out
    }

    /// Logical shift right by one bit (a zero enters at the MSB).
    pub fn shr1(&self) -> BitVec {
        let mut out = BitVec::zeros(self.width);
        let n = self.words.len();
        for i in 0..n {
            let hi = if i + 1 < n {
                self.words[i + 1] << 63
            } else {
                0
            };
            out.words[i] = (self.words[i] >> 1) | hi;
        }
        out.normalize();
        out
    }

    /// Even parity of all bits (`true` if the number of set bits is odd).
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Index of the lowest set bit, if any.
    pub fn lowest_set_bit(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Concatenates `self` (low part) with `high` (high part).
    ///
    /// ```
    /// use fbist_bits::BitVec;
    /// let lo = BitVec::from_u64(4, 0xA);
    /// let hi = BitVec::from_u64(4, 0x5);
    /// assert_eq!(lo.concat(&hi).to_u64(), Some(0x5A));
    /// ```
    pub fn concat(&self, high: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.width + high.width);
        for i in 0..self.width {
            if self.get(i) {
                out.set(i, true);
            }
        }
        for i in 0..high.width {
            if high.get(i) {
                out.set(self.width + i, true);
            }
        }
        out
    }

    /// Hamming distance to `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(&self, rhs: &BitVec) -> usize {
        self.check_width(rhs, "hamming_distance");
        self.words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    #[inline]
    fn normalize(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.width);
        }
        if self.width == 0 {
            self.words.clear();
        }
    }

    #[inline]
    fn check_width(&self, rhs: &BitVec, op: &str) {
        assert_eq!(
            self.width, rhs.width,
            "{op}: width mismatch ({} vs {})",
            self.width, rhs.width
        );
    }
}

impl Default for BitVec {
    fn default() -> Self {
        BitVec::zeros(0)
    }
}

impl PartialOrd for BitVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitVec {
    /// Numeric comparison; a shorter vector compares as if zero-extended.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let n = self.words.len().max(other.words.len());
        for i in (0..n).rev() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

/// Iterator over the bits of a [`BitVec`], LSB first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a BitVec,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.idx < self.vec.width {
            let b = self.vec.get(self.idx);
            self.idx += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.width - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bits(&bits)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec<{}>({})", self.width, self)
    }
}

impl fmt::Display for BitVec {
    /// MSB-first binary rendering, e.g. `1011` for the 4-bit value 11.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "ε");
        }
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.words.is_empty() {
            return write!(f, "0");
        }
        let mut started = false;
        for (i, w) in self.words.iter().enumerate().rev() {
            if started {
                write!(f, "{w:016x}")?;
            } else if *w != 0 || i == 0 {
                write!(f, "{w:x}")?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`BitVec`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    offending: char,
    position: usize,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid character {:?} at position {} (expected '0', '1' or '_')",
            self.offending, self.position
        )
    }
}

impl Error for ParseBitVecError {}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    /// Parses an MSB-first binary string; `_` separators are ignored.
    ///
    /// ```
    /// use fbist_bits::BitVec;
    /// let v: BitVec = "1010_0001".parse()?;
    /// assert_eq!(v.to_u64(), Some(0xA1));
    /// # Ok::<(), fbist_bits::ParseBitVecError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for (position, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                '_' => {}
                offending => {
                    return Err(ParseBitVecError {
                        offending,
                        position,
                    })
                }
            }
        }
        bits.reverse(); // textual MSB-first -> storage LSB-first
        Ok(BitVec::from_bits(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert!(z.is_zero());
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(0));
        assert!(o.get(69));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(8);
        let _ = v.get(8);
    }

    #[test]
    fn add_carry_across_words() {
        let a = BitVec::from_words(128, &[u64::MAX, 0]);
        let b = BitVec::from_u64(128, 1);
        let s = a.wrapping_add(&b);
        assert_eq!(s.as_words(), &[0, 1]);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = BitVec::from_u64(4, 15);
        let b = BitVec::from_u64(4, 1);
        assert!(a.wrapping_add(&b).is_zero());
    }

    #[test]
    fn sub_borrows_across_words() {
        let a = BitVec::from_words(128, &[0, 1]);
        let b = BitVec::from_u64(128, 1);
        let d = a.wrapping_sub(&b);
        assert_eq!(d.as_words(), &[u64::MAX, 0]);
    }

    #[test]
    fn sub_is_add_inverse() {
        let a = BitVec::from_u64(17, 0x1F0F3);
        let b = BitVec::from_u64(17, 0x0ABCD);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_matches_u64_for_small_widths() {
        for (x, y) in [(3u64, 5u64), (255, 255), (1000, 999), (0, 42)] {
            let a = BitVec::from_u64(16, x);
            let b = BitVec::from_u64(16, y);
            assert_eq!(
                a.wrapping_mul(&b).to_u64().unwrap(),
                (x.wrapping_mul(y)) & 0xFFFF,
                "{x} * {y}"
            );
        }
    }

    #[test]
    fn mul_cross_word() {
        // (2^64 + 1)^2 = 2^128 + 2^65 + 1; mod 2^128 -> bits 65 and 0.
        let a = BitVec::from_words(128, &[1, 1]);
        let sq = a.wrapping_mul(&a);
        assert!(sq.get(0));
        assert!(sq.get(65));
        assert_eq!(sq.count_ones(), 2);
    }

    #[test]
    fn neg_roundtrip() {
        let a = BitVec::from_u64(12, 100);
        assert!(a.wrapping_add(&a.wrapping_neg()).is_zero());
    }

    #[test]
    fn shifts() {
        let a = BitVec::from_words(70, &[1u64 << 63, 0]);
        assert!(a.shl1().get(64));
        let b = BitVec::from_words(70, &[0, 1]);
        assert!(b.shr1().get(63));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let v: BitVec = "10110".parse().unwrap();
        assert_eq!(v.to_string(), "10110");
        assert_eq!(v.to_u64(), Some(0b10110));
        assert!("10x1".parse::<BitVec>().is_err());
    }

    #[test]
    fn concat_order() {
        let lo: BitVec = "11".parse().unwrap();
        let hi: BitVec = "00".parse().unwrap();
        assert_eq!(lo.concat(&hi).to_string(), "0011");
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BitVec::from_u64(8, 5);
        let b = BitVec::from_u64(8, 200);
        assert!(a < b);
        let c = BitVec::from_words(128, &[0, 1]);
        assert!(b < c);
    }

    #[test]
    fn resize_truncates_and_extends() {
        let v = BitVec::from_u64(16, 0xFFFF);
        assert_eq!(v.resized(8).count_ones(), 8);
        assert_eq!(v.resized(32).count_ones(), 16);
    }

    #[test]
    fn hamming() {
        let a: BitVec = "1100".parse().unwrap();
        let b: BitVec = "1010".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn to_u64_refuses_wide_values() {
        let mut v = BitVec::zeros(65);
        v.set(64, true);
        assert_eq!(v.to_u64(), None);
        v.set(64, false);
        assert_eq!(v.to_u64(), Some(0));
    }

    #[test]
    fn increment_wraps() {
        let mut v = BitVec::ones(3);
        assert!(v.increment(), "wrap must be reported");
        assert!(v.is_zero());
    }

    #[test]
    fn increment_reports_wrap_on_non_word_widths() {
        // regression: the carry never leaves the storage word for widths
        // that are not multiples of 64, but the wrap must still be reported
        for width in [1usize, 3, 63, 64, 65, 100] {
            let mut v = BitVec::ones(width);
            assert!(v.increment(), "width {width}: wrap not reported");
            assert!(v.is_zero(), "width {width}");
            // and a non-wrapping increment reports false
            let mut v = BitVec::zeros(width);
            assert!(!v.increment(), "width {width}: false wrap");
            assert_eq!(v.count_ones(), 1);
        }
    }

    #[test]
    fn lowest_set_bit_scan() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.lowest_set_bit(), None);
        v.set(100, true);
        assert_eq!(v.lowest_set_bit(), Some(100));
        v.set(3, true);
        assert_eq!(v.lowest_set_bit(), Some(3));
    }
}
