//! Width-parametric simulation words: `[u64; W]` blocks of pattern lanes.
//!
//! The bit-parallel simulators carry one word per net, where each bit is
//! one pattern *lane*. [`SimWord<W>`] generalises that word from a single
//! `u64` (64 lanes) to `W` of them (`64·W` lanes, `W ∈ {1, 2, 4, 8}`),
//! monomorphised through a generic const parameter. All operations are
//! plain safe-Rust array loops — the autovectorizer lowers them to
//! 128/256/512-bit SIMD where the target supports it, so the crate keeps
//! `#![forbid(unsafe_code)]` and no target-feature detection is needed.
//!
//! # Lane numbering
//!
//! Lane `k` of a `W`-wide block is bit `k % 64` of word `k / 64` — i.e.
//! the flat lane space `0..64·W` runs through word 0's bits first, then
//! word 1's, and so on. Every cross-width contract in the workspace
//! (detection ORs, first-detection minimums, occupancy accounting) reduces
//! in this flat-lane order, which is what makes results byte-identical at
//! every width: a `W`-wide block is exactly `W` consecutive 64-lane blocks
//! evaluated together.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// The simulation-block widths the workspace instantiates, in words.
pub const SIMD_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// A `64·W`-lane simulation word: `W` `u64`s treated as one flat lane
/// space (see the module docs for the lane numbering contract).
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimWord<const W: usize>(pub [u64; W]);

impl<const W: usize> SimWord<W> {
    /// Number of pattern lanes the word carries.
    pub const LANES: usize = 64 * W;

    /// The all-zero word.
    pub const ZERO: SimWord<W> = SimWord([0; W]);

    /// The all-ones word.
    pub const MAX: SimWord<W> = SimWord([u64::MAX; W]);

    /// Whether every lane is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        let mut acc = 0u64;
        for &w in &self.0 {
            acc |= w;
        }
        acc == 0
    }

    /// The value of flat lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= Self::LANES`.
    #[inline]
    pub fn lane(&self, k: usize) -> bool {
        assert!(k < Self::LANES, "lane {k} out of range");
        (self.0[k / 64] >> (k % 64)) & 1 == 1
    }

    /// Sets flat lane `k` to 1.
    ///
    /// # Panics
    ///
    /// Panics if `k >= Self::LANES`.
    #[inline]
    pub fn set_lane(&mut self, k: usize) {
        assert!(k < Self::LANES, "lane {k} out of range");
        self.0[k / 64] |= 1u64 << (k % 64);
    }

    /// Index of the lowest set flat lane, or `Self::LANES` if zero —
    /// the `W`-word generalisation of `u64::trailing_zeros`.
    #[inline]
    pub fn trailing_zeros(&self) -> u32 {
        let mut tz = 0u32;
        for &w in &self.0 {
            if w != 0 {
                return tz + w.trailing_zeros();
            }
            tz += 64;
        }
        tz
    }

    /// Number of set lanes.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Clears the lowest set lane (no-op on zero) — the `W`-word
    /// `det &= det - 1` idiom for iterating set lanes.
    #[inline]
    pub fn clear_lowest(&mut self) {
        for w in &mut self.0 {
            if *w != 0 {
                *w &= *w - 1;
                return;
            }
        }
    }
}

impl<const W: usize> Default for SimWord<W> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const W: usize> fmt::Debug for SimWord<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimWord[")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

macro_rules! simword_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt, $assign_op:tt) => {
        impl<const W: usize> $trait for SimWord<W> {
            type Output = SimWord<W>;
            #[inline]
            fn $method(self, rhs: SimWord<W>) -> SimWord<W> {
                let mut out = [0u64; W];
                for i in 0..W {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                SimWord(out)
            }
        }
        impl<const W: usize> $assign_trait for SimWord<W> {
            #[inline]
            fn $assign_method(&mut self, rhs: SimWord<W>) {
                for i in 0..W {
                    self.0[i] $assign_op rhs.0[i];
                }
            }
        }
    };
}

simword_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &, &=);
simword_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |, |=);
simword_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^, ^=);

impl<const W: usize> Not for SimWord<W> {
    type Output = SimWord<W>;
    #[inline]
    fn not(self) -> SimWord<W> {
        let mut out = [0u64; W];
        for (o, w) in out.iter_mut().zip(self.0) {
            *o = !w;
        }
        SimWord(out)
    }
}

/// The simulation-block width knob: how many `u64` words per block.
///
/// A pure *throughput* knob, pinned like `jobs` and `backend`: every
/// width produces byte-identical matrices, first-detection indices, ATPG
/// results and reports (`tests/simd_width_equivalence.rs`), so it is
/// excluded from content-addressed stage keys via the `THROUGHPUT_KNOBS`
/// manifest in `crates/core/src/stage.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdWidth {
    /// Pick the widest width whose block count actually shrinks for the
    /// workload at hand (see [`SimdWidth::resolve`]).
    #[default]
    Auto,
    /// One `u64` per block (64 lanes) — the pre-SIMD baseline.
    W1,
    /// Two words per block (128 lanes).
    W2,
    /// Four words per block (256 lanes).
    W4,
    /// Eight words per block (512 lanes).
    W8,
}

impl SimdWidth {
    /// Every variant, for exhaustive sweeps in tests.
    pub const ALL: [SimdWidth; 5] = [
        SimdWidth::Auto,
        SimdWidth::W1,
        SimdWidth::W2,
        SimdWidth::W4,
        SimdWidth::W8,
    ];

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SimdWidth::Auto => "auto",
            SimdWidth::W1 => "1",
            SimdWidth::W2 => "2",
            SimdWidth::W4 => "4",
            SimdWidth::W8 => "8",
        }
    }

    /// Parses a CLI name (`auto`, `1`, `2`, `4`, `8`).
    pub fn parse(s: &str) -> Option<SimdWidth> {
        match s {
            "auto" => Some(SimdWidth::Auto),
            "1" => Some(SimdWidth::W1),
            "2" => Some(SimdWidth::W2),
            "4" => Some(SimdWidth::W4),
            "8" => Some(SimdWidth::W8),
            _ => None,
        }
    }

    /// The pinned width in words, or `None` for `Auto`.
    pub fn words(self) -> Option<usize> {
        match self {
            SimdWidth::Auto => None,
            SimdWidth::W1 => Some(1),
            SimdWidth::W2 => Some(2),
            SimdWidth::W4 => Some(4),
            SimdWidth::W8 => Some(8),
        }
    }

    /// Resolves the knob to a concrete width in words for a workload of
    /// `total_lanes` packed pattern lanes.
    ///
    /// `Auto` mirrors the `MatrixBuild::Auto` rule: walk the widths in
    /// doubling order and keep widening only while the block count
    /// *strictly* shrinks. Each kept doubling halves the number of sweep
    /// passes at equal word-operation cost, so it is never a loss; a
    /// doubling that leaves the block count unchanged would only pad dead
    /// lanes (each block costs `W` word-ops per gate) and is rejected.
    /// Small workloads — an ATPG round dictionary of 64 candidates, a
    /// τ=31 per-row build — therefore stay at `W = 1`.
    pub fn resolve(self, total_lanes: usize) -> usize {
        match self.words() {
            Some(w) => w,
            None => {
                let mut best = 1usize;
                let mut blocks = total_lanes.div_ceil(64);
                for cand in [2usize, 4, 8] {
                    let b = total_lanes.div_ceil(64 * cand);
                    if b < blocks {
                        blocks = b;
                        best = cand;
                    } else {
                        break;
                    }
                }
                best
            }
        }
    }
}

impl fmt::Display for SimdWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_numbering_is_flat() {
        let mut w = SimWord::<4>::ZERO;
        w.set_lane(0);
        w.set_lane(63);
        w.set_lane(64);
        w.set_lane(255);
        assert_eq!(w.0[0], (1 << 63) | 1);
        assert_eq!(w.0[1], 1);
        assert_eq!(w.0[3], 1 << 63);
        assert!(w.lane(64));
        assert!(!w.lane(65));
        assert_eq!(w.count_ones(), 4);
    }

    #[test]
    fn trailing_zeros_is_first_flat_lane() {
        assert_eq!(SimWord::<2>::ZERO.trailing_zeros(), 128);
        let mut w = SimWord::<2>::ZERO;
        w.set_lane(100);
        w.set_lane(120);
        assert_eq!(w.trailing_zeros(), 100);
        w.clear_lowest();
        assert_eq!(w.trailing_zeros(), 120);
        w.clear_lowest();
        assert!(w.is_zero());
    }

    #[test]
    fn bit_ops_are_elementwise() {
        let a = SimWord::<2>([0b1100, 0b1010]);
        let b = SimWord::<2>([0b1010, 0b0110]);
        assert_eq!((a & b).0, [0b1000, 0b0010]);
        assert_eq!((a | b).0, [0b1110, 0b1110]);
        assert_eq!((a ^ b).0, [0b0110, 0b1100]);
        assert_eq!((!SimWord::<2>::ZERO), SimWord::<2>::MAX);
        let mut c = a;
        c |= b;
        c &= !b;
        assert_eq!(c, a & !b);
    }

    #[test]
    fn simd_width_names_roundtrip() {
        for w in SimdWidth::ALL {
            assert_eq!(SimdWidth::parse(w.name()), Some(w));
            assert_eq!(format!("{w}"), w.name());
        }
        assert_eq!(SimdWidth::parse("0"), None);
        assert_eq!(SimdWidth::parse("16"), None);
        assert_eq!(SimdWidth::parse("wide"), None);
    }

    #[test]
    fn pinned_widths_resolve_to_themselves() {
        for (knob, want) in [
            (SimdWidth::W1, 1),
            (SimdWidth::W2, 2),
            (SimdWidth::W4, 4),
            (SimdWidth::W8, 8),
        ] {
            assert_eq!(knob.resolve(0), want);
            assert_eq!(knob.resolve(1_000_000), want);
        }
    }

    #[test]
    fn auto_widens_only_while_blocks_shrink() {
        // tiny workloads stay narrow
        assert_eq!(SimdWidth::Auto.resolve(0), 1);
        assert_eq!(SimdWidth::Auto.resolve(1), 1);
        assert_eq!(SimdWidth::Auto.resolve(64), 1);
        // 128 lanes: 2 blocks -> 1 at W=2, no further shrink at W=4
        assert_eq!(SimdWidth::Auto.resolve(128), 2);
        assert_eq!(SimdWidth::Auto.resolve(65), 2);
        // 256 lanes: shrinks through W=4, not W=8
        assert_eq!(SimdWidth::Auto.resolve(256), 4);
        // >= 512 lanes: every doubling shrinks
        assert_eq!(SimdWidth::Auto.resolve(512), 8);
        assert_eq!(SimdWidth::Auto.resolve(1 << 20), 8);
    }
}
