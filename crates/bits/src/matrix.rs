//! Dense two-dimensional bit matrices.

use std::fmt;

use crate::bitvec::BitVec;
use crate::{tail_mask, words_for, WORD_BITS};

/// A dense `rows × cols` bit matrix with word-packed rows.
///
/// `BitMatrix` is the backing store of the paper's *Detection Matrix*
/// (rows = triplets, columns = faults). Rows are contiguous in memory so
/// the subset tests that drive the dominance reduction compile down to a
/// handful of word operations per row pair.
///
/// # Example
///
/// ```
/// use fbist_bits::BitMatrix;
///
/// let mut m = BitMatrix::new(2, 100);
/// m.set(0, 3, true);
/// m.set(1, 3, true);
/// m.set(1, 99, true);
/// assert!(m.row_is_subset(0, 1)); // row 0 ⊆ row 1
/// assert!(!m.row_is_subset(1, 0));
/// assert_eq!(m.count_row(1), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a matrix from per-row [`BitVec`]s.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from `cols`.
    pub fn from_rows(cols: usize, rows: &[BitVec]) -> Self {
        let mut m = BitMatrix::new(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.width(), cols, "row {r} width mismatch");
            let base = r * m.words_per_row;
            m.data[base..base + m.words_per_row].copy_from_slice(row.as_words());
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.check(row, col);
        let w = self.words_per_row * row + col / WORD_BITS;
        (self.data[w] >> (col % WORD_BITS)) & 1 == 1
    }

    /// Sets cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.check(row, col);
        let w = self.words_per_row * row + col / WORD_BITS;
        let b = col % WORD_BITS;
        if value {
            self.data[w] |= 1u64 << b;
        } else {
            self.data[w] &= !(1u64 << b);
        }
    }

    #[inline]
    fn check(&self, row: usize, col: usize) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
    }

    /// The packed words of one row.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        let base = row * self.words_per_row;
        &self.data[base..base + self.words_per_row]
    }

    /// Copies a row out as a [`BitVec`].
    pub fn row(&self, row: usize) -> BitVec {
        BitVec::from_words(self.cols, self.row_words(row))
    }

    /// ORs a [`BitVec`] into a row (in-place accumulation), the primitive
    /// behind assembling rows from independently computed partials.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `bits` is not `cols` wide.
    pub fn or_bits_into_row(&mut self, row: usize, bits: &BitVec) {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        assert_eq!(
            bits.width(),
            self.cols,
            "row {row}: partial width {} != matrix cols {}",
            bits.width(),
            self.cols
        );
        let base = row * self.words_per_row;
        for (i, &w) in bits.as_words().iter().enumerate() {
            self.data[base + i] |= w;
        }
    }

    /// ORs `src` row into `dst` row (in place accumulation).
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows);
        let (s, d) = (src * self.words_per_row, dst * self.words_per_row);
        for i in 0..self.words_per_row {
            let v = self.data[s + i];
            self.data[d + i] |= v;
        }
    }

    /// Number of set bits in a row.
    pub fn count_row(&self, row: usize) -> usize {
        self.row_words(row)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of set bits in a row, restricted to the columns selected by
    /// `mask` (a `cols`-bit vector).
    pub fn count_row_masked(&self, row: usize, mask: &BitVec) -> usize {
        debug_assert_eq!(mask.width(), self.cols);
        self.row_words(row)
            .iter()
            .zip(mask.as_words())
            .map(|(w, m)| (w & m).count_ones() as usize)
            .sum()
    }

    /// `true` if row `a` ⊆ row `b` (every set bit of `a` is set in `b`).
    pub fn row_is_subset(&self, a: usize, b: usize) -> bool {
        self.row_words(a)
            .iter()
            .zip(self.row_words(b))
            .all(|(x, y)| x & !y == 0)
    }

    /// `true` if row `a` ⊆ row `b` when both are restricted to the columns
    /// selected by `mask`.
    pub fn row_is_subset_masked(&self, a: usize, b: usize, mask: &BitVec) -> bool {
        debug_assert_eq!(mask.width(), self.cols);
        self.row_words(a)
            .iter()
            .zip(self.row_words(b))
            .zip(mask.as_words())
            .all(|((x, y), m)| (x & m) & !(y & m) == 0)
    }

    /// `true` if rows `a` and `b` are identical on the columns selected by
    /// `mask`.
    pub fn rows_equal_masked(&self, a: usize, b: usize, mask: &BitVec) -> bool {
        self.row_words(a)
            .iter()
            .zip(self.row_words(b))
            .zip(mask.as_words())
            .all(|((x, y), m)| x & m == y & m)
    }

    /// Indices of the rows that cover column `col` (have a 1 there).
    pub fn rows_covering(&self, col: usize) -> Vec<usize> {
        (0..self.rows).filter(|&r| self.get(r, col)).collect()
    }

    /// Indices of the columns set in `row`.
    pub fn cols_of_row(&self, row: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_col_of_row(row, |c| out.push(c));
        out
    }

    /// Calls `f` with each set column of `row`, in ascending order, without
    /// allocating. This is the building block of sparse adjacency (CSR)
    /// construction, where a `Vec` per row would dominate the build cost.
    #[inline]
    pub fn for_each_col_of_row(&self, row: usize, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.row_words(row).iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(wi * WORD_BITS + b);
                bits &= bits - 1;
            }
        }
    }

    /// The transposed matrix (columns become rows). Used to accelerate
    /// per-column queries in the covering reductions.
    pub fn transposed(&self) -> BitMatrix {
        let mut t = BitMatrix::new(self.cols, self.rows);
        for r in 0..self.rows {
            for c in self.cols_of_row(r) {
                t.set(c, r, true);
            }
        }
        t
    }

    /// OR of the selected rows as a [`BitVec`] over the columns.
    pub fn union_of_rows(&self, rows: &[usize]) -> BitVec {
        let mut acc = vec![0u64; self.words_per_row];
        for &r in rows {
            for (a, w) in acc.iter_mut().zip(self.row_words(r)) {
                *a |= w;
            }
        }
        if let Some(last) = acc.last_mut() {
            *last &= tail_mask(self.cols);
        }
        BitVec::from_words(self.cols, &acc)
    }

    /// Total number of set cells.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Density: fraction of cells set (`0.0` for an empty matrix).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.count_ones() as f64 / cells as f64
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BitMatrix {}x{} ({} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )?;
        if self.rows <= 16 && self.cols <= 80 {
            for r in 0..self.rows {
                writeln!(f, "  {}", {
                    let mut s = String::with_capacity(self.cols);
                    for c in 0..self.cols {
                        s.push(if self.get(r, c) { '1' } else { '.' });
                    }
                    s
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitMatrix {
        // rows over 5 cols:
        // r0: 1 1 0 0 0
        // r1: 1 1 1 0 0
        // r2: 0 0 0 1 1
        let mut m = BitMatrix::new(3, 5);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 3), (2, 4)] {
            m.set(r, c, true);
        }
        m
    }

    #[test]
    fn get_set() {
        let mut m = BitMatrix::new(4, 130);
        m.set(3, 129, true);
        assert!(m.get(3, 129));
        assert!(!m.get(3, 128));
        m.set(3, 129, false);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        let m = BitMatrix::new(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    fn subset_relations() {
        let m = sample();
        assert!(m.row_is_subset(0, 1));
        assert!(!m.row_is_subset(1, 0));
        assert!(!m.row_is_subset(0, 2));
        assert!(m.row_is_subset(0, 0));
    }

    #[test]
    fn masked_subset() {
        let m = sample();
        // restrict to columns {0}: rows 0 and 1 equal there
        let mut mask = BitVec::zeros(5);
        mask.set(0, true);
        assert!(m.row_is_subset_masked(1, 0, &mask));
        assert!(m.rows_equal_masked(0, 1, &mask));
    }

    #[test]
    fn counting() {
        let m = sample();
        assert_eq!(m.count_row(1), 3);
        assert_eq!(m.count_ones(), 7);
        let mut mask = BitVec::ones(5);
        mask.set(0, false);
        assert_eq!(m.count_row_masked(1, &mask), 2);
    }

    #[test]
    fn cover_queries() {
        let m = sample();
        assert_eq!(m.rows_covering(0), vec![0, 1]);
        assert_eq!(m.rows_covering(4), vec![2]);
        assert_eq!(m.cols_of_row(2), vec![3, 4]);
    }

    #[test]
    fn for_each_col_matches_cols_of_row_across_words() {
        let mut m = BitMatrix::new(2, 150);
        for c in [0, 63, 64, 100, 149] {
            m.set(1, c, true);
        }
        let mut seen = Vec::new();
        m.for_each_col_of_row(1, |c| seen.push(c));
        assert_eq!(seen, m.cols_of_row(1));
        assert_eq!(seen, vec![0, 63, 64, 100, 149]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert!(t.get(2, 1));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn union_rows() {
        let m = sample();
        let u = m.union_of_rows(&[0, 2]);
        assert_eq!(u.count_ones(), 4);
        let all = m.union_of_rows(&[0, 1, 2]);
        assert_eq!(all.count_ones(), 5);
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![
            "10010".parse::<BitVec>().unwrap(),
            "01100".parse::<BitVec>().unwrap(),
        ];
        let m = BitMatrix::from_rows(5, &rows);
        assert_eq!(m.row(0), rows[0]);
        assert_eq!(m.row(1), rows[1]);
    }

    #[test]
    fn density_bounds() {
        let m = sample();
        let d = m.density();
        assert!(d > 0.0 && d < 1.0);
        assert_eq!(BitMatrix::new(0, 0).density(), 0.0);
    }
}
