//! Bit-level building blocks for the functional-BIST tool chain.
//!
//! This crate provides the low-level data types shared by the whole
//! workspace:
//!
//! * [`BitVec`] — an arbitrary-width bit vector with *modular* arithmetic
//!   (`+`, `-`, `*` mod `2^w`), the value domain of test patterns, TPG
//!   state registers and seeds;
//! * [`Cube`] — a three-valued (`0`/`1`/`X`) test cube, produced by the
//!   ATPG and consumed by pattern fill;
//! * [`Trit`] — a single three-valued logic value;
//! * [`BitMatrix`] — a dense two-dimensional bit matrix, the backing store
//!   of the paper's *Detection Matrix*;
//! * [`pack`] — helpers to transpose pattern sets into the 64-way packed
//!   ("bit-parallel") layout used by the logic and fault simulators;
//! * [`SimWord`] / [`SimdWidth`] — the width-parametric `[u64; W]`
//!   simulation block word and the throughput knob that selects `W`.
//!
//! # Example
//!
//! ```
//! use fbist_bits::BitVec;
//!
//! // An 80-bit accumulator step: S' = S + theta (mod 2^80).
//! let s = BitVec::from_u64(80, 0xFFFF_FFFF_FFFF_FFFF);
//! let theta = BitVec::from_u64(80, 1);
//! let next = s.wrapping_add(&theta);
//! assert_eq!(next.get(64), true); // carry propagated into the high limb
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod cube;
mod matrix;
pub mod pack;
pub mod simd;

pub use bitvec::{BitVec, ParseBitVecError};
pub use cube::{Cube, Trit};
pub use matrix::BitMatrix;
pub use simd::{SimWord, SimdWidth, SIMD_WIDTHS};

/// Number of bits in one storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to store `bits` bits.
///
/// ```
/// assert_eq!(fbist_bits::words_for(0), 0);
/// assert_eq!(fbist_bits::words_for(64), 1);
/// assert_eq!(fbist_bits::words_for(65), 2);
/// ```
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask selecting the valid bits of the last storage word of a `bits`-bit
/// value, or all ones when the width is a multiple of 64.
///
/// ```
/// assert_eq!(fbist_bits::tail_mask(64), u64::MAX);
/// assert_eq!(fbist_bits::tail_mask(3), 0b111);
/// ```
#[inline]
pub const fn tail_mask(bits: usize) -> u64 {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}
