//! Property tests for the artifact codec: decode(encode(x)) == x for
//! every serialised type under arbitrary inputs, re-encoding is
//! byte-stable, and any single-byte corruption of a stored envelope is
//! detected rather than silently decoded.

use fbist_bits::BitVec;
use fbist_fault::{Fault, FaultList, FaultSite};
use fbist_netlist::GateId;
use fbist_setcover::FirstDetectionMatrix;
use fbist_store::{decode_from_slice, encode_to_vec, Artifact, ArtifactStore, StageKey};
use fbist_tpg::Triplet;
use proptest::prelude::*;

/// decode(encode(x)) == x, and the re-encoding is the same byte stream
/// (a canonical encoding — required for content addressing to be stable).
fn assert_round_trip<T: Artifact + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = encode_to_vec(value);
    let back: T = decode_from_slice(&bytes).expect("decode of a fresh encoding");
    assert_eq!(&back, value);
    assert_eq!(encode_to_vec(&back), bytes, "re-encoding must be stable");
}

fn bitvec() -> impl Strategy<Value = BitVec> {
    (0usize..200).prop_flat_map(|w| {
        proptest::collection::vec(any::<u64>(), w.div_ceil(64))
            .prop_map(move |words| BitVec::from_words(w, &words))
    })
}

fn triplet() -> impl Strategy<Value = Triplet> {
    (1usize..140, 0usize..10_000).prop_flat_map(|(w, tau)| {
        let nw = w.div_ceil(64);
        (
            proptest::collection::vec(any::<u64>(), nw),
            proptest::collection::vec(any::<u64>(), nw),
        )
            .prop_map(move |(d, t)| {
                Triplet::new(BitVec::from_words(w, &d), BitVec::from_words(w, &t), tau)
            })
    })
}

fn fault() -> impl Strategy<Value = Fault> {
    (0u32..1_000_000, any::<bool>(), 0u32..8, any::<bool>()).prop_map(
        |(gate, on_input, pin, stuck)| {
            let site = if on_input {
                FaultSite::GateInput {
                    gate: GateId::from_index(gate as usize),
                    pin,
                }
            } else {
                FaultSite::GateOutput(GateId::from_index(gate as usize))
            };
            Fault::stuck_at(site, stuck)
        },
    )
}

/// A structurally valid first-detection CSR: per row, a strictly
/// ascending subset of the columns with arbitrary bounded first-indices.
fn first_detection() -> impl Strategy<Value = FirstDetectionMatrix> {
    (0usize..12, 1usize..20).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec((0..cols, 0u32..5_000), 0..cols),
            rows,
        )
        .prop_map(move |row_entries| {
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut first = Vec::new();
            for entries in &row_entries {
                let mut cells: Vec<(usize, u32)> = entries.clone();
                cells.sort_by_key(|&(c, _)| c);
                cells.dedup_by_key(|&mut (c, _)| c);
                for (c, f) in cells {
                    col_idx.push(c as u32);
                    first.push(f);
                }
                row_ptr.push(col_idx.len());
            }
            FirstDetectionMatrix::from_csr(rows, cols, row_ptr, col_idx, first)
                .expect("constructed CSR is valid")
        })
    })
}

proptest! {
    #[test]
    fn bitvec_round_trips(v in bitvec()) {
        assert_round_trip(&v);
    }

    #[test]
    fn triplet_round_trips(t in triplet()) {
        assert_round_trip(&t);
    }

    #[test]
    fn fault_round_trips(f in fault()) {
        assert_round_trip(&f);
    }

    #[test]
    fn fault_list_round_trips(faults in proptest::collection::vec(fault(), 0..50)) {
        assert_round_trip(&FaultList::from_faults(faults));
    }

    #[test]
    fn u64_round_trips(v in any::<u64>()) {
        assert_round_trip(&v);
    }

    #[test]
    fn first_detection_round_trips(m in first_detection()) {
        assert_round_trip(&m);
    }

    #[test]
    fn truncated_encodings_never_decode(t in triplet(), cut in 0usize..100) {
        // any strict prefix must be rejected, never misread
        let bytes = encode_to_vec(&t);
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_from_slice::<Triplet>(&bytes[..cut]).is_err());
    }
}

#[test]
fn every_single_byte_corruption_of_a_stored_artifact_is_detected() {
    // flip each byte of a stored envelope in turn: the load must fail
    // (magic, version, kind, key digest, payload checksum, or a codec
    // invariant) — never silently return a different artifact
    let dir = std::env::temp_dir().join(format!("fbist-store-corrupt-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).unwrap();
    let value = Triplet::new(BitVec::from_u64(8, 0xA5), BitVec::from_u64(8, 0x3C), 7);
    let key = StageKey::new("triplet", {
        let mut d = fbist_store::Digest::new("corruption-prop");
        d.u64(1);
        d.finish()
    });
    store.save(key, &value).unwrap();
    let path = key.path_under(store.root());
    let pristine = std::fs::read(&path).unwrap();
    for i in 0..pristine.len() {
        for flip in [0x01u8, 0xFF] {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= flip;
            std::fs::write(&path, &corrupt).unwrap();
            match store.load::<Triplet>(key) {
                Err(_) => {}
                Ok(got) => panic!("byte {i} ^ {flip:#04x}: corruption not detected (got {got:?})"),
            }
        }
    }
    // restore and prove the pristine file still loads
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(store.load::<Triplet>(key).unwrap(), Some(value));
    let _ = std::fs::remove_dir_all(dir);
}
