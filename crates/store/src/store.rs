//! The on-disk artifact store.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::artifacts::Artifact;
use crate::codec::{DecodeError, Reader, Writer};
use crate::digest::Digest;
use crate::key::StageKey;

/// The store's file format version. Bumped whenever any artifact's byte
/// layout changes; a store written by another version is simply treated
/// as cold (artifact by artifact, with a warning) rather than
/// misdecoded.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes every artifact file starts with.
const MAGIC: &[u8; 4] = b"FBST";

/// What went wrong talking to the store.
#[derive(Debug)]
pub enum StoreError {
    /// The store root exists but is not a directory.
    NotADirectory(PathBuf),
    /// The store root cannot be created or written.
    NotWritable {
        /// The store root.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An artifact file could not be read or written.
    Io {
        /// The artifact path.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An artifact file exists but does not decode (corrupt bytes, a
    /// foreign format version, a kind mismatch).
    Decode {
        /// The artifact path.
        path: PathBuf,
        /// What the decoder rejected.
        source: DecodeError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotADirectory(p) => {
                write!(f, "store path {} is not a directory", p.display())
            }
            StoreError::NotWritable { path, source } => write!(
                f,
                "store directory {} is not writable: {source}",
                path.display()
            ),
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Decode { path, source } => {
                write!(f, "cannot decode artifact {}: {source}", path.display())
            }
        }
    }
}

impl Error for StoreError {}

/// A content-addressed artifact store rooted at a directory.
///
/// Layout: `<root>/<kind>/<digest>.fbst`, one file per artifact, each
/// wrapped in a self-describing envelope (magic, format version, kind,
/// key digest, payload, payload checksum). Writes go through a
/// temporary file in the same directory followed by a rename, so a
/// crashed writer can never leave a half-written artifact under a live
/// key, and concurrent writers of the same key are safe (they write
/// identical bytes — keys are content addresses).
///
/// The store is cheap to clone and safe to share across threads.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    tmp_counter: Arc<AtomicU64>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotADirectory`] if `dir` exists and is a file,
    /// [`StoreError::NotWritable`] if the directory cannot be created or
    /// a probe file cannot be written (e.g. a read-only mount).
    pub fn open(dir: &Path) -> Result<ArtifactStore, StoreError> {
        if dir.exists() && !dir.is_dir() {
            return Err(StoreError::NotADirectory(dir.to_path_buf()));
        }
        fs::create_dir_all(dir).map_err(|source| StoreError::NotWritable {
            path: dir.to_path_buf(),
            source,
        })?;
        // probe writability now, with a clear error, instead of failing
        // obscurely mid-flow on the first put
        let probe = dir.join(".fbist-store-probe");
        fs::write(&probe, b"probe")
            .and_then(|()| fs::remove_file(&probe))
            .map_err(|source| StoreError::NotWritable {
                path: dir.to_path_buf(),
                source,
            })?;
        Ok(ArtifactStore {
            root: dir.to_path_buf(),
            tmp_counter: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `true` if an artifact file exists under `key` (it may still fail
    /// to decode — use [`load`](Self::load) for the real answer).
    pub fn contains(&self, key: StageKey) -> bool {
        key.path_under(&self.root).is_file()
    }

    /// Loads the artifact under `key`.
    ///
    /// Returns `Ok(None)` when no artifact exists — the normal cold-path
    /// answer.
    ///
    /// # Errors
    ///
    /// [`StoreError::Decode`] for a file that exists but is corrupt, of
    /// a foreign format version, or of the wrong kind;
    /// [`StoreError::Io`] for filesystem failures.
    pub fn load<T: Artifact>(&self, key: StageKey) -> Result<Option<T>, StoreError> {
        let path = key.path_under(&self.root);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        let payload = unwrap_envelope(&bytes, key).map_err(|source| StoreError::Decode {
            path: path.clone(),
            source,
        })?;
        let mut r = Reader::new(payload);
        let value = T::decode(&mut r).map_err(|source| StoreError::Decode {
            path: path.clone(),
            source,
        })?;
        if !r.is_exhausted() {
            return Err(StoreError::Decode {
                path,
                source: DecodeError::Invalid(format!(
                    "{} trailing bytes after the payload",
                    r.remaining()
                )),
            });
        }
        Ok(Some(value))
    }

    /// [`load`](Self::load) with the store's standard degradation: any
    /// error is reported on stderr and answered with `None`, so the
    /// caller transparently falls back to recomputing (and a later
    /// [`put`](Self::put) overwrites the bad artifact).
    pub fn get<T: Artifact>(&self, key: StageKey) -> Option<T> {
        match self.load(key) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fbist-store: warning: {e}; recomputing {key}");
                None
            }
        }
    }

    /// Writes `value` under `key`, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn save<T: Artifact>(&self, key: StageKey, value: &T) -> Result<(), StoreError> {
        let path = key.path_under(&self.root);
        let dir = path.parent().expect("artifact paths always have a parent");
        fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let mut payload = Writer::new();
        value.encode(&mut payload);
        let bytes = wrap_envelope(key, &payload.into_bytes());
        // unique within the process; cross-process collisions only race
        // identical content, and rename() is atomic either way
        let n = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".{}.tmp-{}-{n}", key.digest, std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|source| {
            let _ = fs::remove_file(&tmp);
            StoreError::Io {
                path: path.clone(),
                source,
            }
        })
    }

    /// [`save`](Self::save) with the store's standard degradation: a
    /// failed write is reported on stderr and otherwise ignored — the
    /// computed value is still returned to the caller, the store just
    /// stays cold for this key.
    pub fn put<T: Artifact>(&self, key: StageKey, value: &T) {
        if let Err(e) = self.save(key, value) {
            eprintln!("fbist-store: warning: {e}; artifact not cached");
        }
    }
}

/// Builds the self-describing envelope around a payload.
fn wrap_envelope(key: StageKey, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    w.str(key.kind);
    w.bytes(&key.digest.0);
    w.bytes(payload);
    w.bytes(&checksum(payload).0);
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Validates the envelope and returns the payload slice.
fn unwrap_envelope(bytes: &[u8], key: StageKey) -> Result<&[u8], DecodeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = r.str()?;
    if kind != key.kind {
        return Err(DecodeError::BadKind {
            found: kind,
            expected: key.kind.to_owned(),
        });
    }
    let digest = r.bytes()?;
    if digest != key.digest.0 {
        return Err(DecodeError::Invalid(
            "artifact was written under a different key digest".into(),
        ));
    }
    let payload = r.bytes()?;
    let stored_sum = r.bytes()?;
    if stored_sum != checksum(payload).0 {
        return Err(DecodeError::Invalid("payload checksum mismatch".into()));
    }
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid(format!(
            "{} trailing bytes after the envelope",
            r.remaining()
        )));
    }
    Ok(payload)
}

fn checksum(payload: &[u8]) -> crate::digest::DigestBytes {
    let mut d = Digest::new("payload-checksum");
    d.bytes(payload);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fbist-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(tag: u64) -> StageKey {
        let mut d = Digest::new("test");
        d.u64(tag);
        StageKey::new("cover", d.finish())
    }

    #[test]
    fn round_trip_and_miss() {
        let dir = tmpdir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.load::<u64>(key(1)).unwrap(), None);
        assert!(!store.contains(key(1)));
        store.save(key(1), &42u64).unwrap();
        assert!(store.contains(key(1)));
        assert_eq!(store.load::<u64>(key(1)).unwrap(), Some(42));
        // a different key digest is a different artifact
        assert_eq!(store.load::<u64>(key(2)).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifact_is_a_decode_error_and_get_degrades() {
        let dir = tmpdir("corrupt");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key(1), &7u64).unwrap();
        let path = key(1).path_under(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load::<u64>(key(1)),
            Err(StoreError::Decode { .. })
        ));
        assert_eq!(store.get::<u64>(key(1)), None);
        // a fresh save repairs the entry
        store.save(key(1), &7u64).unwrap();
        assert_eq!(store.load::<u64>(key(1)).unwrap(), Some(7));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_format_version_is_rejected() {
        let dir = tmpdir("version");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key(1), &7u64).unwrap();
        let path = key(1).path_under(&dir);
        let mut bytes = fs::read(&path).unwrap();
        // the version field sits right after the 4 magic bytes
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        match store.load::<u64>(key(1)) {
            Err(StoreError::Decode {
                source: DecodeError::BadVersion { found, expected },
                ..
            }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dir = tmpdir("kind");
        let store = ArtifactStore::open(&dir).unwrap();
        let k = key(1);
        store.save(k, &7u64).unwrap();
        // read the same digest back under a different kind directory name
        let alias = StageKey::new("atpg", k.digest);
        let from = k.path_under(&dir);
        let to = alias.path_under(&dir);
        fs::create_dir_all(to.parent().unwrap()).unwrap();
        fs::copy(&from, &to).unwrap();
        assert!(matches!(
            store.load::<u64>(alias),
            Err(StoreError::Decode {
                source: DecodeError::BadKind { .. },
                ..
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_a_file_path() {
        let dir = tmpdir("file");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        fs::write(&file, b"x").unwrap();
        assert!(matches!(
            ArtifactStore::open(&file),
            Err(StoreError::NotADirectory(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_magic_is_bad_magic() {
        let dir = tmpdir("magic");
        let store = ArtifactStore::open(&dir).unwrap();
        let path = key(1).path_under(&dir);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"FB").unwrap();
        assert!(matches!(
            store.load::<u64>(key(1)),
            Err(StoreError::Decode {
                source: DecodeError::BadMagic,
                ..
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
