//! Stage keys: (kind, content digest) → store path.

use std::path::{Path, PathBuf};

use crate::digest::DigestBytes;

/// The address of one artifact in the store: the *stage kind* (one
/// directory per kind) plus the 128-bit content digest of everything the
/// stage's output depends on.
///
/// The layout is `<store>/<kind>/<digest-hex>.fbst` — flat per kind, no
/// fan-out subdirectories (a store holds thousands of artifacts, not
/// millions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageKey {
    /// Stage kind — `"netlist"`, `"atpg"`, `"first-detection"`,
    /// `"cover"`. Doubles as the subdirectory name, so it must stay a
    /// valid path component.
    pub kind: &'static str,
    /// Content digest of the stage's inputs.
    pub digest: DigestBytes,
}

impl StageKey {
    /// Creates a key.
    pub fn new(kind: &'static str, digest: DigestBytes) -> StageKey {
        StageKey { kind, digest }
    }

    /// The artifact's path under a store root.
    pub fn path_under(&self, root: &Path) -> PathBuf {
        root.join(self.kind).join(format!("{}.fbst", self.digest))
    }
}

impl std::fmt::Display for StageKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.kind, self.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;

    #[test]
    fn path_layout() {
        let key = StageKey::new("cover", Digest::new("t").finish());
        let p = key.path_under(Path::new("/tmp/store"));
        let s = p.to_string_lossy();
        assert!(s.starts_with("/tmp/store/cover/"), "{s}");
        assert!(s.ends_with(".fbst"), "{s}");
        assert_eq!(key.to_string(), format!("cover/{}", key.digest));
    }
}
