//! The byte codec every artifact shares.
//!
//! Fixed-width little-endian primitives over a plain `Vec<u8>` — no
//! varints, no alignment, no reflection. The encoding of a value is a
//! *pure function of the value*: encoding the same artifact twice yields
//! the same bytes, which is what lets the store's checksums and the
//! cold-vs-warm byte-identity tests work at all. Floating-point fields
//! travel as their IEEE-754 bit patterns ([`Writer::f64_bits`]), so even
//! NaN payloads round-trip exactly.

use std::error::Error;
use std::fmt;

/// Why a decode failed. Every variant carries enough context to name the
/// problem in a CLI warning without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value did.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// The artifact file does not start with the store magic.
    BadMagic,
    /// The artifact was written by a different (older or newer) format
    /// version of this crate.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The artifact on disk is of a different kind than the one requested
    /// (e.g. a `cover` key resolving to an `atpg` payload).
    BadKind {
        /// Kind string found in the file.
        found: String,
        /// Kind string the caller asked for.
        expected: String,
    },
    /// The payload bytes do not match their stored checksum, or a decoded
    /// value violates an invariant (an out-of-range tag, a width
    /// mismatch, a malformed netlist …).
    Invalid(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of artifact: needed {needed} bytes, {remaining} left"
            ),
            DecodeError::BadMagic => write!(f, "not an fbist artifact (bad magic)"),
            DecodeError::BadVersion { found, expected } => write!(
                f,
                "artifact format version {found} (this build reads version {expected})"
            ),
            DecodeError::BadKind { found, expected } => {
                write!(f, "artifact is a {found:?}, expected a {expected:?}")
            }
            DecodeError::Invalid(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl Error for DecodeError {}

/// Encodes primitives into a growing byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize`, stored as `u64` so 32- and 64-bit builds interoperate.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// A bool as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// An `f64` as its IEEE-754 bit pattern — exact round-trip, NaN
    /// payloads included.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }
}

/// Decodes primitives from a byte slice, tracking its position.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed — decoders check this to
    /// reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A `usize` stored as `u64`, rejected if it does not fit this
    /// platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid(format!("length {v} overflows usize")))
    }

    /// A bool byte; anything but `0` / `1` is corrupt.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Invalid(format!("bad bool byte {other}"))),
        }
    }

    /// An `f64` from its stored bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| DecodeError::Invalid("string is not UTF-8".into()))
    }

    /// Length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, DecodeError> {
        let n = self.usize()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 4));
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, DecodeError> {
        let n = self.usize()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 8));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.f64_bits(f64::NAN);
        w.str("δθτ");
        w.bytes(&[1, 2, 3]);
        w.u32_slice(&[5, 6]);
        w.u64_slice(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert!(r.f64_bits().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "δθτ");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.u32_vec().unwrap(), vec![5, 6]);
        assert_eq!(r.u64_vec().unwrap(), Vec::<u64>::new());
        assert!(r.is_exhausted());
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.u32().unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 2
            }
        );
        assert!(err.to_string().contains("needed 4"));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool().unwrap_err(), DecodeError::Invalid(_)));
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str().unwrap_err(), DecodeError::Invalid(_)));
    }

    #[test]
    fn oversized_length_prefix_is_eof_not_alloc() {
        // a corrupt huge length must fail cleanly instead of allocating
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.bytes().is_err());
        let mut r = Reader::new(&bytes);
        assert!(r.u32_vec().is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = || {
            let mut w = Writer::new();
            w.str("same");
            w.f64_bits(0.25);
            w.u64_slice(&[1, 2, 3]);
            w.into_bytes()
        };
        assert_eq!(enc(), enc());
    }
}
