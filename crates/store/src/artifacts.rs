//! Binary codecs for the workspace's shared artifact types.
//!
//! Every codec is exact: `decode(encode(x)) == x`, pinned by the
//! round-trip proptests in `tests/roundtrip.rs`. Decoders validate
//! every structural invariant they rebuild (widths, index ranges, CSR
//! monotonicity, netlist arities) so a corrupt payload is reported as
//! [`DecodeError::Invalid`] instead of panicking deep inside a consumer.

use fbist_atpg::AtpgResult;
use fbist_bits::BitVec;
use fbist_fault::{Fault, FaultId, FaultList, FaultSite};
use fbist_netlist::{GateId, GateKind, Netlist};
use fbist_setcover::FirstDetectionMatrix;
use fbist_tpg::Triplet;

use crate::codec::{DecodeError, Reader, Writer};

/// A type that can live in the store: a stage kind name plus an exact
/// byte codec.
///
/// Implementations compose: a struct's `encode` calls its fields'
/// `encode`s in order, and `decode` mirrors it. The store wraps the
/// payload in its own envelope (magic, version, kind, key digest,
/// checksum), so codecs never need framing of their own.
pub trait Artifact: Sized {
    /// The stage-kind directory this artifact type lives under when
    /// stored at the top level (composed sub-artifacts ignore it).
    const KIND: &'static str;

    /// Appends the exact byte encoding of `self`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value, validating every invariant.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated, corrupt, or invariant-violating
    /// bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl Artifact for u64 {
    const KIND: &'static str = "u64";

    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Artifact for BitVec {
    const KIND: &'static str = "bitvec";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.width());
        w.u64_slice(self.as_words());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let width = r.usize()?;
        let words = r.u64_vec()?;
        if words.len() != width.div_ceil(64) {
            return Err(DecodeError::Invalid(format!(
                "BitVec of width {width} stored with {} words",
                words.len()
            )));
        }
        // from_words clears unused high bits; encoded vectors are already
        // normalized, so this is the identity on well-formed payloads
        Ok(BitVec::from_words(width, &words))
    }
}

impl Artifact for Triplet {
    const KIND: &'static str = "triplet";

    fn encode(&self, w: &mut Writer) {
        self.delta().encode(w);
        self.theta().encode(w);
        w.usize(self.tau());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let delta = BitVec::decode(r)?;
        let theta = BitVec::decode(r)?;
        let tau = r.usize()?;
        if delta.width() != theta.width() {
            return Err(DecodeError::Invalid(format!(
                "triplet δ width {} ≠ θ width {}",
                delta.width(),
                theta.width()
            )));
        }
        Ok(Triplet::new(delta, theta, tau))
    }
}

fn encode_bitvec_list(w: &mut Writer, list: &[BitVec]) {
    w.usize(list.len());
    for v in list {
        v.encode(w);
    }
}

fn decode_bitvec_list(r: &mut Reader<'_>) -> Result<Vec<BitVec>, DecodeError> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 8));
    for _ in 0..n {
        out.push(BitVec::decode(r)?);
    }
    Ok(out)
}

fn encode_fault_ids(w: &mut Writer, ids: &[FaultId]) {
    w.usize(ids.len());
    for id in ids {
        w.u32(id.index() as u32);
    }
}

fn decode_fault_ids(r: &mut Reader<'_>) -> Result<Vec<FaultId>, DecodeError> {
    let n = r.usize()?;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 4));
    for _ in 0..n {
        out.push(FaultId::from_index(r.u32()? as usize));
    }
    Ok(out)
}

impl Artifact for Fault {
    const KIND: &'static str = "fault";

    fn encode(&self, w: &mut Writer) {
        match self.site() {
            FaultSite::GateOutput(g) => {
                w.u8(0);
                w.u32(g.index() as u32);
            }
            FaultSite::GateInput { gate, pin } => {
                w.u8(1);
                w.u32(gate.index() as u32);
                w.u32(pin);
            }
        }
        w.bool(self.stuck_value());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let site = match r.u8()? {
            0 => FaultSite::GateOutput(GateId::from_index(r.u32()? as usize)),
            1 => FaultSite::GateInput {
                gate: GateId::from_index(r.u32()? as usize),
                pin: r.u32()?,
            },
            other => return Err(DecodeError::Invalid(format!("bad fault-site tag {other}"))),
        };
        Ok(Fault::stuck_at(site, r.bool()?))
    }
}

impl Artifact for FaultList {
    const KIND: &'static str = "fault-list";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for f in self.as_slice() {
            f.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.usize()?;
        let mut faults = Vec::with_capacity(n.min(r.remaining() / 6));
        for _ in 0..n {
            faults.push(Fault::decode(r)?);
        }
        Ok(FaultList::from_faults(faults))
    }
}

impl Artifact for AtpgResult {
    const KIND: &'static str = "atpg-result";

    fn encode(&self, w: &mut Writer) {
        encode_bitvec_list(w, &self.patterns);
        self.detected.encode(w);
        encode_fault_ids(w, &self.untestable);
        encode_fault_ids(w, &self.aborted);
        w.usize(self.random_detected);
        w.usize(self.podem_tests);
        w.usize(self.total_faults);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let patterns = decode_bitvec_list(r)?;
        if let Some(w0) = patterns.first().map(BitVec::width) {
            if patterns.iter().any(|p| p.width() != w0) {
                return Err(DecodeError::Invalid(
                    "ATPG patterns have mixed widths".into(),
                ));
            }
        }
        let detected = BitVec::decode(r)?;
        let untestable = decode_fault_ids(r)?;
        let aborted = decode_fault_ids(r)?;
        let random_detected = r.usize()?;
        let podem_tests = r.usize()?;
        let total_faults = r.usize()?;
        if detected.width() != total_faults {
            return Err(DecodeError::Invalid(format!(
                "detected mask is {} bits for {total_faults} faults",
                detected.width()
            )));
        }
        for id in untestable.iter().chain(&aborted) {
            if id.index() >= total_faults {
                return Err(DecodeError::Invalid(format!(
                    "fault id {} out of range ({total_faults} faults)",
                    id.index()
                )));
            }
        }
        Ok(AtpgResult {
            patterns,
            detected,
            untestable,
            aborted,
            random_detected,
            podem_tests,
            total_faults,
        })
    }
}

impl Artifact for FirstDetectionMatrix {
    const KIND: &'static str = "first-detection-matrix";

    fn encode(&self, w: &mut Writer) {
        let (row_ptr, col_idx, first) = self.csr_parts();
        w.usize(self.rows());
        w.usize(self.cols());
        w.usize(row_ptr.len());
        for &p in row_ptr {
            w.usize(p);
        }
        w.u32_slice(col_idx);
        w.u32_slice(first);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let rows = r.usize()?;
        let cols = r.usize()?;
        let n_ptr = r.usize()?;
        let mut row_ptr = Vec::with_capacity(n_ptr.min(r.remaining() / 8));
        for _ in 0..n_ptr {
            row_ptr.push(r.usize()?);
        }
        let col_idx = r.u32_vec()?;
        let first = r.u32_vec()?;
        FirstDetectionMatrix::from_csr(rows, cols, row_ptr, col_idx, first)
            .map_err(DecodeError::Invalid)
    }
}

impl Artifact for Netlist {
    const KIND: &'static str = "netlist";

    fn encode(&self, w: &mut Writer) {
        w.str(self.name());
        w.usize(self.gate_count());
        for (_, gate) in self.iter() {
            let tag = GateKind::ALL
                .iter()
                .position(|&k| k == gate.kind())
                .expect("GateKind::ALL covers every kind") as u8;
            w.u8(tag);
            w.str(gate.name());
            w.usize(gate.fanin().len());
            for &f in gate.fanin() {
                w.u32(f.index() as u32);
            }
        }
        w.usize(self.outputs().len());
        for &o in self.outputs() {
            w.u32(o.index() as u32);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bad = |e: fbist_netlist::NetlistError| DecodeError::Invalid(e.to_string());
        let name = r.str()?;
        let n = r.usize()?;
        let mut netlist = Netlist::new(name);
        // Pass 1: gates in id order. Non-DFF gates always reference
        // earlier ids (Netlist::add_gate enforces it at construction, so
        // any encoded netlist has the property); DFF `D` pins may point
        // forward and are connected in pass 2, mirroring how the .bench
        // reader builds feedback loops.
        let mut dff_fanin: Vec<(GateId, u32)> = Vec::new();
        for i in 0..n {
            let tag = r.u8()? as usize;
            let &kind = GateKind::ALL
                .get(tag)
                .ok_or_else(|| DecodeError::Invalid(format!("bad gate-kind tag {tag}")))?;
            let gname = r.str()?;
            let fanin_len = r.usize()?;
            let mut fanin = Vec::with_capacity(fanin_len.min(r.remaining() / 4));
            for _ in 0..fanin_len {
                fanin.push(GateId::from_index(r.u32()? as usize));
            }
            let id = if kind == GateKind::Dff {
                if fanin.len() > 1 {
                    return Err(DecodeError::Invalid(format!(
                        "DFF {gname:?} has {} fanins",
                        fanin.len()
                    )));
                }
                let id = netlist.add_dff(gname).map_err(bad)?;
                if let Some(&d) = fanin.first() {
                    dff_fanin.push((id, d.index() as u32));
                }
                id
            } else {
                netlist.add_gate(kind, gname, fanin).map_err(bad)?
            };
            if id.index() != i {
                return Err(DecodeError::Invalid(format!(
                    "gate {i} decoded to id {}",
                    id.index()
                )));
            }
        }
        for (dff, d) in dff_fanin {
            netlist
                .connect_dff(dff, GateId::from_index(d as usize))
                .map_err(bad)?;
        }
        let n_out = r.usize()?;
        for _ in 0..n_out {
            let o = r.u32()? as usize;
            if o >= netlist.gate_count() {
                return Err(DecodeError::Invalid(format!(
                    "output id {o} out of range ({} gates)",
                    netlist.gate_count()
                )));
            }
            netlist.add_output(GateId::from_index(o));
        }
        Ok(netlist)
    }
}

/// Encodes any artifact to a standalone byte vector (no envelope).
pub fn encode_to_vec<T: Artifact>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes an artifact from a standalone byte vector, requiring the
/// buffer to be fully consumed.
///
/// # Errors
///
/// [`DecodeError`] on corrupt bytes or trailing garbage.
pub fn decode_from_slice<T: Artifact>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid(format!(
            "{} trailing bytes",
            r.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::embedded;

    fn round_trip<T: Artifact + PartialEq + std::fmt::Debug>(x: &T) {
        let bytes = encode_to_vec(x);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(&back, x);
        // exactness both ways: re-encoding reproduces the bytes
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn bitvec_and_triplet_round_trip() {
        for width in [0usize, 1, 63, 64, 65, 130] {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            let mut word = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let v = BitVec::random_with(width, &mut word);
            round_trip(&v);
            round_trip(&Triplet::new(v.clone(), v.clone(), width * 3));
        }
    }

    #[test]
    fn bitvec_rejects_word_count_mismatch() {
        let mut w = Writer::new();
        w.usize(64);
        w.u64_slice(&[1, 2]);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_from_slice::<BitVec>(&bytes),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn fault_list_round_trips() {
        let n = embedded::c17();
        round_trip(&FaultList::collapsed(&n));
        round_trip(&FaultList::full(&n));
        round_trip(&FaultList::new());
    }

    #[test]
    fn embedded_netlists_round_trip() {
        for n in embedded::all() {
            round_trip(&n);
        }
    }

    #[test]
    fn sequential_netlist_round_trips_feedback_loops() {
        // q = DFF(not q): the D pin points forward, exercising pass 2
        let mut n = Netlist::new("loop");
        let q = n.add_dff("q").unwrap();
        let inv = n.add_gate(GateKind::Not, "inv", vec![q]).unwrap();
        n.connect_dff(q, inv).unwrap();
        n.add_output(inv);
        n.validate().unwrap();
        round_trip(&n);
    }

    #[test]
    fn netlist_decode_rejects_bad_tag_and_bad_output() {
        let n = embedded::c17();
        let bytes = encode_to_vec(&n);
        let mut bad = bytes.clone();
        // first gate's kind tag sits right after the name and gate count
        let tag_pos = {
            let mut r = Reader::new(&bytes);
            let _ = r.str().unwrap();
            let _ = r.usize().unwrap();
            bytes.len() - r.remaining()
        };
        bad[tag_pos] = 0xFF;
        assert!(matches!(
            decode_from_slice::<Netlist>(&bad),
            Err(DecodeError::Invalid(_))
        ));
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(decode_from_slice::<Netlist>(&truncated).is_err());
    }

    #[test]
    fn atpg_result_round_trips() {
        use fbist_atpg::{Atpg, AtpgConfig};
        let n = embedded::c17();
        let faults = FaultList::collapsed(&n);
        let res = Atpg::new(&n).unwrap().run(&faults, &AtpgConfig::default());
        let bytes = encode_to_vec(&res);
        let back: AtpgResult = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.patterns, res.patterns);
        assert_eq!(back.detected, res.detected);
        assert_eq!(back.untestable, res.untestable);
        assert_eq!(back.aborted, res.aborted);
        assert_eq!(back.random_detected, res.random_detected);
        assert_eq!(back.podem_tests, res.podem_tests);
        assert_eq!(back.total_faults, res.total_faults);
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn first_detection_matrix_round_trips() {
        const NONE: u32 = FirstDetectionMatrix::NO_DETECTION;
        let m = FirstDetectionMatrix::from_rows(
            4,
            vec![vec![0, 3, NONE, 7], vec![NONE; 4], vec![2, NONE, 0, NONE]],
        );
        round_trip(&m);
        round_trip(&FirstDetectionMatrix::from_rows(3, Vec::new()));
    }
}
