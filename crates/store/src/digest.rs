//! The stable content digest behind every store key.
//!
//! 128-bit FNV-1a over a tagged field stream. FNV is **not**
//! cryptographic — nothing here defends against an adversary crafting
//! collisions — but it is tiny, dependency-free, endian-stable and has
//! a fixed published parameterisation, which is what a *reproducible*
//! cache key needs: the same artifact must digest to the same key on
//! every platform and in every future build, or a store written today
//! silently goes cold tomorrow.
//!
//! Every typed write is prefixed with a one-byte field tag, and
//! variable-length fields with their length, so field streams can never
//! alias each other (`"ab", "c"` digests differently from `"a", "bc"`,
//! and a `u64` can never collide with eight `u8`s).

use std::fmt;

/// FNV-1a 128-bit offset basis (the published standard parameter).
const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// An incremental 128-bit FNV-1a hasher with typed, tagged writes.
///
/// ```
/// use fbist_store::Digest;
///
/// let mut d = Digest::new("example");
/// d.u64(42);
/// d.str("hello");
/// let a = d.finish();
/// // same field stream, same digest — always
/// let mut d = Digest::new("example");
/// d.u64(42);
/// d.str("hello");
/// assert_eq!(a, d.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Digest {
    state: u128,
}

impl Digest {
    /// Starts a digest under a domain name — two digests of identical
    /// fields under different domains never collide by construction.
    pub fn new(domain: &str) -> Digest {
        let mut d = Digest { state: OFFSET };
        d.raw(domain.as_bytes());
        d.raw(&[0xD0]);
        d
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    fn tagged(&mut self, tag: u8, bytes: &[u8]) {
        self.raw(&[tag]);
        self.raw(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.tagged(0x01, &[v]);
    }

    /// A `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.tagged(0x02, &v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.tagged(0x03, &v.to_le_bytes());
    }

    /// A `usize`, widened to `u64` so 32- and 64-bit builds agree.
    pub fn usize(&mut self, v: usize) {
        self.tagged(0x04, &(v as u64).to_le_bytes());
    }

    /// A bool.
    pub fn bool(&mut self, v: bool) {
        self.tagged(0x05, &[u8::from(v)]);
    }

    /// An `f64` by bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.tagged(0x06, &v.to_bits().to_le_bytes());
    }

    /// A length-prefixed string.
    pub fn str(&mut self, v: &str) {
        self.tagged(0x07, &(v.len() as u64).to_le_bytes());
        self.raw(v.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.tagged(0x08, &(v.len() as u64).to_le_bytes());
        self.raw(v);
    }

    /// A length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.tagged(0x09, &(v.len() as u64).to_le_bytes());
        for &x in v {
            self.raw(&x.to_le_bytes());
        }
    }

    /// Finishes, returning the 16 digest bytes.
    pub fn finish(self) -> DigestBytes {
        DigestBytes(self.state.to_le_bytes())
    }
}

/// A finished 16-byte digest — the content-address half of a store key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DigestBytes(pub [u8; 16]);

impl DigestBytes {
    /// Lower-case hex, 32 characters — the on-disk file stem.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing hex to a String cannot fail");
        }
        s
    }
}

impl fmt::Display for DigestBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_is_stable() {
        // pin the digest of a tiny field stream so an accidental change to
        // the hash parameters or tagging scheme fails loudly: a silent
        // change would orphan every artifact ever written
        let mut d = Digest::new("pin");
        d.u64(1);
        d.str("x");
        let hex = d.finish().to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, "98100510379b82862a5e82f7a75c884f");
    }

    #[test]
    fn domains_separate() {
        let mut a = Digest::new("a");
        a.u64(7);
        let mut b = Digest::new("b");
        b.u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn adjacent_fields_cannot_alias() {
        let mut a = Digest::new("t");
        a.str("ab");
        a.str("c");
        let mut b = Digest::new("t");
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut a = Digest::new("t");
        a.u8(1);
        a.u8(2);
        let mut b = Digest::new("t");
        b.u32(0x0201);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn slice_length_is_hashed() {
        let mut a = Digest::new("t");
        a.u64_slice(&[0, 0]);
        let mut b = Digest::new("t");
        b.u64_slice(&[0, 0, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_lower_and_fixed_width() {
        let d = Digest::new("t").finish();
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(d.to_string(), hex);
    }
}
