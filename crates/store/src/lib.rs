//! # fbist-store — the content-addressed artifact store
//!
//! Persists the reseeding flow's expensive intermediates so repeat
//! queries become disk reads: an ATPG run on big3500 costs ~27 s, its
//! artifact decodes in milliseconds.
//!
//! ## Keys
//!
//! An artifact's address is a [`StageKey`]: a stage *kind* plus a
//! 128-bit FNV-1a [`Digest`] of **exactly the inputs the stage's output
//! depends on** — the circuit content and the relevant
//! `FlowConfig` fragment. Throughput knobs (`jobs`, the set-covering
//! backend, the matrix-build and sweep engines) are deliberately *not*
//! hashed: the workspace pins them bit-identical, so caching across
//! them is sound and a warm store answers any of their combinations.
//! Changing a keyed knob (seed, τ, TPG, ATPG settings, solver
//! settings, trim) changes the key, which *is* the invalidation rule —
//! stale artifacts are never read, only orphaned.
//!
//! ## Layout & format
//!
//! ```text
//! <root>/<kind>/<digest-hex>.fbst
//! ```
//!
//! Each file is an envelope — magic `FBST`, format version
//! ([`FORMAT_VERSION`]), kind string, key digest, payload, payload
//! checksum — around the artifact's exact little-endian encoding
//! ([`Artifact`]). Encodings are byte-deterministic (floats travel as
//! IEEE-754 bit patterns), which is what makes cold-vs-warm runs
//! byte-identical. Files from a different format version, truncated
//! files and bit-flipped files are all detected, warned about on
//! stderr, and transparently recomputed ([`ArtifactStore::get`]).
//!
//! ## Example
//!
//! ```
//! use fbist_store::{ArtifactStore, Digest, StageKey};
//! use fbist_netlist::embedded;
//!
//! let dir = std::env::temp_dir().join(format!("fbist-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir)?;
//! let netlist = embedded::c17();
//!
//! let mut d = Digest::new("doc-example");
//! d.str(netlist.name());
//! let key = StageKey::new("netlist", d.finish());
//!
//! store.save(key, &netlist)?;
//! assert_eq!(store.load(key)?, Some(netlist));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), fbist_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifacts;
mod codec;
mod digest;
mod key;
mod store;

pub use artifacts::{decode_from_slice, encode_to_vec, Artifact};
pub use codec::{DecodeError, Reader, Writer};
pub use digest::{Digest, DigestBytes};
pub use key::StageKey;
pub use store::{ArtifactStore, StoreError, FORMAT_VERSION};
