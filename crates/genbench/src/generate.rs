//! The synthetic circuit generator.

use fbist_netlist::{GateId, GateKind, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::CircuitProfile;

/// Generates the full-scan combinational core for a profile,
/// deterministically in `(profile, seed)`.
///
/// Construction:
///
/// 1. primary inputs `i0..` and scan pseudo-inputs `ff0..`;
/// 2. a pseudo-random gate DAG with locality-biased fanin selection
///    (mimicking the short-wire bias of real netlists) and an
///    ISCAS-flavoured gate-kind mix;
/// 3. `profile.resistant_cones` wide comparator cones
///    (`AND(lit, lit, …)` over `cone_width` random literals) — each fires
///    on exactly one assignment of its literals, making its faults
///    random-pattern resistant;
/// 4. outputs: the cone outputs first, then XOR-compactor trees over all
///    still-unobserved nets, so (almost) no logic is structurally
///    unobservable and the PO count matches the profile.
pub fn generate(profile: &CircuitProfile, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&profile.name));
    let mut n = Netlist::new(profile.name.clone());

    // --- sources ---------------------------------------------------------
    let mut nets: Vec<GateId> = Vec::new();
    for i in 0..profile.inputs {
        nets.push(n.add_input(format!("i{i}")));
    }
    for i in 0..profile.flip_flops {
        nets.push(n.add_input(format!("ff{i}")));
    }

    // --- random gate DAG --------------------------------------------------
    // cone budget: each cone of width w costs roughly w inverters + a tree
    let cone_cost = profile.resistant_cones * (profile.cone_width + 2);
    let body_gates = profile.gates.saturating_sub(cone_cost).max(8);
    for gate_no in 0..body_gates {
        let kind = pick_kind(&mut rng);
        let fanin_count = match kind {
            GateKind::Not | GateKind::Buff => 1,
            _ => {
                // 2 (60 %), 3 (30 %), 4 (10 %)
                match rng.gen_range(0..10) {
                    0..=5 => 2,
                    6..=8 => 3,
                    _ => 4,
                }
            }
        };
        let mut fanin = Vec::with_capacity(fanin_count);
        let mut attempts = 0;
        while fanin.len() < fanin_count && attempts < fanin_count * 8 {
            let cand = pick_net(&mut rng, &nets);
            if !fanin.contains(&cand) {
                fanin.push(cand);
            }
            attempts += 1;
        }
        let id = n
            .add_gate(kind, format!("g{gate_no}"), fanin)
            .expect("generator produces unique names and valid fanins");
        nets.push(id);
    }

    // --- random-pattern-resistant cones ------------------------------------
    let mut cone_outs = Vec::new();
    let sources = profile.scan_inputs();
    for c in 0..profile.resistant_cones {
        // literals over DISTINCT primary inputs: jointly satisfiable by
        // construction (one specific assignment of `width` free inputs),
        // hence testable but hit by random patterns only with
        // probability 2^-width
        let width = profile.cone_width.min(sources).max(2);
        let mut picks: Vec<usize> = (0..sources).collect();
        for i in 0..width {
            let j = rng.gen_range(i..sources);
            picks.swap(i, j);
        }
        let mut literals = Vec::with_capacity(width);
        for (l, &src_pos) in picks[..width].iter().enumerate() {
            let src = nets[src_pos];
            if rng.gen_bool(0.5) {
                let inv = n
                    .add_gate(GateKind::Not, format!("cone{c}_n{l}"), vec![src])
                    .expect("unique cone names");
                literals.push(inv);
            } else {
                literals.push(src);
            }
        }
        let out = n
            .add_gate(GateKind::And, format!("cone{c}"), literals)
            .expect("unique cone names");
        nets.push(out);
        cone_outs.push(out);
    }

    // --- outputs ------------------------------------------------------------
    let mut po_budget = profile.scan_outputs();
    // 1) resistant cones are always directly observed
    for &c in &cone_outs {
        if po_budget == 0 {
            break;
        }
        n.add_output(c);
        po_budget -= 1;
    }
    // 2) dangling nets → XOR compactor trees filling the remaining POs
    let fanouts = n.fanouts();
    let mut dangling: Vec<GateId> = n
        .iter()
        .map(|(id, _)| id)
        .filter(|&id| fanouts[id.index()].is_empty() && !n.outputs().contains(&id))
        .collect();
    if po_budget > 0 && !dangling.is_empty() {
        // split dangling nets into po_budget chunks, XOR-tree each
        let chunk = dangling.len().div_ceil(po_budget);
        let mut po_no = 0usize;
        while !dangling.is_empty() {
            let take: Vec<GateId> = dangling.drain(..chunk.min(dangling.len())).collect();
            let out = if take.len() == 1 {
                take[0]
            } else {
                n.add_gate(GateKind::Xor, format!("po_x{po_no}"), take)
                    .expect("unique compactor names")
            };
            n.add_output(out);
            po_no += 1;
            po_budget = po_budget.saturating_sub(1);
            if po_budget == 0 {
                break;
            }
        }
    }
    // 3) any POs still missing: observe random internal nets.
    //    `add_output` dedupes, so only count picks that actually landed;
    //    fall back to a scan once random picks keep hitting existing POs.
    let mut misses = 0usize;
    while po_budget > 0 {
        let net = if misses < 64 {
            pick_net(&mut rng, &nets)
        } else {
            match nets.iter().copied().find(|id| !n.outputs().contains(id)) {
                Some(fresh) => fresh,
                None => break, // every net already observed
            }
        };
        if n.outputs().contains(&net) {
            misses += 1;
            continue;
        }
        n.add_output(net);
        po_budget -= 1;
    }
    // 4) leftover dangling nets (when chunks ran out): fold into one extra
    //    XOR output so nothing stays unobservable
    if !dangling.is_empty() {
        let out = if dangling.len() == 1 {
            dangling[0]
        } else {
            n.add_gate(GateKind::Xor, "po_tail".to_owned(), dangling)
                .expect("unique name")
        };
        n.add_output(out);
    }

    debug_assert!(n.validate().is_ok());
    n
}

/// Locality-biased net pick: mostly recent nets, occasionally anything.
fn pick_net(rng: &mut StdRng, nets: &[GateId]) -> GateId {
    debug_assert!(!nets.is_empty());
    if nets.len() > 48 && rng.gen_bool(0.7) {
        // recent window (short wires)
        let start = nets.len() - 48;
        nets[rng.gen_range(start..nets.len())]
    } else {
        nets[rng.gen_range(0..nets.len())]
    }
}

/// ISCAS-flavoured gate-kind mix.
fn pick_kind(rng: &mut StdRng) -> GateKind {
    match rng.gen_range(0..100) {
        0..=24 => GateKind::Nand,
        25..=44 => GateKind::And,
        45..=59 => GateKind::Nor,
        60..=74 => GateKind::Or,
        75..=84 => GateKind::Not,
        85..=92 => GateKind::Xor,
        93..=96 => GateKind::Xnor,
        _ => GateKind::Buff,
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, for a stable per-profile seed tweak
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{paper_suite, profile};
    use fbist_netlist::NetlistStats;

    #[test]
    fn deterministic_generation() {
        let p = profile("c499").unwrap().scaled(0.5);
        let a = generate(&p, 7);
        let b = generate(&p, 7);
        assert_eq!(
            fbist_netlist::bench::to_bench(&a),
            fbist_netlist::bench::to_bench(&b)
        );
        let c = generate(&p, 8);
        assert_ne!(
            fbist_netlist::bench::to_bench(&a),
            fbist_netlist::bench::to_bench(&c)
        );
    }

    #[test]
    fn interface_matches_profile() {
        for p in [
            profile("c880").unwrap().scaled(0.3),
            profile("s1238").unwrap().scaled(0.5),
        ] {
            let n = generate(&p, 3);
            assert_eq!(n.inputs().len(), p.scan_inputs(), "{}", p.name);
            assert!(n.is_combinational());
            assert!(n.validate().is_ok());
            // PO count: scan_outputs, possibly +1 for the tail compactor
            let po = n.outputs().len();
            assert!(
                po >= p.scan_outputs() && po <= p.scan_outputs() + 1,
                "{}: {po} vs {}",
                p.name,
                p.scan_outputs()
            );
        }
    }

    #[test]
    fn gate_count_tracks_profile() {
        let p = profile("s953").unwrap();
        let n = generate(&p, 1);
        let g = n.logic_gate_count();
        // the generator spends the budget on body + cones ± compactors
        assert!(
            g >= p.gates * 8 / 10 && g <= p.gates * 13 / 10,
            "{g} vs profile {}",
            p.gates
        );
    }

    #[test]
    fn no_structurally_dead_logic() {
        let p = profile("tiny64").unwrap();
        let n = generate(&p, 9);
        let fanouts = n.fanouts();
        for (id, _g) in n.iter() {
            let observed = !fanouts[id.index()].is_empty() || n.outputs().contains(&id);
            assert!(observed, "net {} is dangling", n.gate(id).name());
        }
    }

    #[test]
    fn cones_exist_and_are_wide() {
        let p = profile("mid256").unwrap();
        let n = generate(&p, 5);
        let cones: Vec<_> = n
            .iter()
            .filter(|(_, g)| g.name().starts_with("cone") && !g.name().contains("_n"))
            .collect();
        assert_eq!(cones.len(), p.resistant_cones);
        for (_, g) in cones {
            assert!(g.fanin().len() >= 4, "cone too narrow: {}", g.fanin().len());
        }
    }

    #[test]
    fn all_paper_profiles_generate_small_scale() {
        for p in paper_suite() {
            let scaled = p.scaled(0.05);
            let n = generate(&scaled, 11);
            assert!(n.validate().is_ok(), "{}", p.name);
            assert!(NetlistStats::of(&n).depth > 1, "{}", p.name);
        }
    }
}
