//! Interface profiles of the paper's benchmark circuits.

use std::fmt;

/// Interface profile of a benchmark circuit: the counts the synthetic
/// generator reproduces.
///
/// The numbers follow the published ISCAS'85/'89 profiles (gate counts are
/// the conventional "logic gates" figures; small deviations are irrelevant
/// to the reproduction — see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitProfile {
    /// Circuit name (e.g. `c880`, `s1238`).
    pub name: String,
    /// Primary inputs (excluding scan pseudo-inputs).
    pub inputs: usize,
    /// Primary outputs (excluding scan pseudo-outputs).
    pub outputs: usize,
    /// Flip-flops (0 for the combinational ISCAS'85 circuits).
    pub flip_flops: usize,
    /// Logic gates.
    pub gates: usize,
    /// Number of random-pattern-resistant cones to embed.
    pub resistant_cones: usize,
    /// Width (in literals) of each resistant cone comparator.
    pub cone_width: usize,
}

impl CircuitProfile {
    /// Creates a custom profile.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        flip_flops: usize,
        gates: usize,
    ) -> CircuitProfile {
        let gates_f = gates as f64;
        CircuitProfile {
            name: name.into(),
            inputs,
            outputs,
            flip_flops,
            gates,
            resistant_cones: (gates_f.sqrt() / 4.0).ceil() as usize,
            cone_width: 16,
        }
    }

    /// Total primary inputs of the full-scan form (`PI + FF`), which is the
    /// TPG register width.
    pub fn scan_inputs(&self) -> usize {
        self.inputs + self.flip_flops
    }

    /// Total primary outputs of the full-scan form (`PO + FF`).
    pub fn scan_outputs(&self) -> usize {
        self.outputs + self.flip_flops
    }

    /// Returns a scaled profile: the *gate count* (the CPU-cost driver for
    /// simulation, ATPG and fault lists) shrinks by `factor`, while the
    /// **interface is preserved** — primary inputs, outputs and flip-flops
    /// stay at the original circuit's counts. Preserving the interface
    /// keeps the TPG register width authentic and, crucially, keeps the
    /// embedded comparator cones wide enough to stay random-pattern
    /// resistant (a cone over `w` free inputs fires with probability
    /// `2^-w`; shrinking the input space would destroy the property the
    /// paper's benchmark selection is based on).
    ///
    /// The name gains a `@factor` suffix unless the factor is 1.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> CircuitProfile {
        assert!(factor > 0.0, "scale factor must be positive");
        if (factor - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let s = |v: usize, min: usize| -> usize { ((v as f64 * factor).round() as usize).max(min) };
        CircuitProfile {
            name: format!("{}@{factor}", self.name),
            inputs: self.inputs,
            outputs: self.outputs,
            flip_flops: self.flip_flops,
            gates: s(self.gates, 60),
            resistant_cones: s(self.resistant_cones, 1),
            cone_width: self.cone_width.min(self.scan_inputs().max(4)),
        }
    }
}

impl fmt::Display for CircuitProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: PI={} PO={} FF={} gates={} (+{} resistant cones)",
            self.name, self.inputs, self.outputs, self.flip_flops, self.gates, self.resistant_cones
        )
    }
}

macro_rules! profiles {
    ($(($name:literal, $pi:literal, $po:literal, $ff:literal, $gates:literal)),+ $(,)?) => {
        vec![$(CircuitProfile::new($name, $pi, $po, $ff, $gates)),+]
    };
}

/// All built-in profiles: the paper's Table-1 suite plus a few small extras
/// used in examples and tests.
pub fn all_profiles() -> Vec<CircuitProfile> {
    profiles![
        // ISCAS'85 circuits used in the paper
        ("c499", 41, 32, 0, 202),
        ("c880", 60, 26, 0, 383),
        ("c1355", 41, 32, 0, 546),
        ("c1908", 33, 25, 0, 880),
        ("c7552", 207, 108, 0, 3512),
        // full-scan ISCAS'89 circuits used in the paper
        ("s420", 18, 1, 16, 218),
        ("s641", 35, 24, 19, 379),
        ("s820", 18, 19, 5, 289),
        ("s838", 34, 1, 32, 446),
        ("s953", 16, 23, 29, 395),
        ("s1238", 14, 14, 18, 508),
        ("s1423", 17, 5, 74, 657),
        ("s5378", 35, 49, 179, 2779),
        ("s9234", 36, 39, 211, 5597),
        ("s13207", 62, 152, 638, 7951),
        ("s15850", 77, 150, 534, 9772),
        // extras (not in the paper; handy small cases)
        ("tiny64", 10, 6, 0, 64),
        ("mid256", 16, 10, 8, 256),
        // scaling stress profiles (not in the paper): a c7552-scale
        // synthetic circuit and a doubled "xl" case, sized to push the
        // Detection Matrix well past the sparse engine's auto-threshold
        ("big3500", 200, 100, 0, 3500),
        ("xl7000", 230, 120, 80, 7000),
    ]
}

/// The 16 circuits of the paper's evaluation, in Table-1 order.
pub fn paper_suite() -> Vec<CircuitProfile> {
    let paper = [
        "c499", "c880", "c1355", "c1908", "c7552", "s420", "s641", "s820", "s838", "s953", "s1238",
        "s1423", "s5378", "s9234", "s13207", "s15850",
    ];
    paper
        .iter()
        .map(|n| profile(n).expect("paper circuit registered"))
        .collect()
}

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<CircuitProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_is_complete() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 16);
        assert_eq!(suite[0].name, "c499");
        assert_eq!(suite[15].name, "s15850");
    }

    #[test]
    fn lookup_by_name() {
        let p = profile("s1238").unwrap();
        assert_eq!(p.inputs, 14);
        assert_eq!(p.flip_flops, 18);
        assert_eq!(p.scan_inputs(), 32);
        assert!(profile("c9999").is_none());
    }

    #[test]
    fn scaling_shrinks_with_minima() {
        let p = profile("s15850").unwrap();
        let s = p.scaled(0.1);
        assert!(s.gates < p.gates);
        assert!(s.gates >= 60);
        assert_eq!(s.inputs, p.inputs, "interface preserved");
        assert_eq!(s.flip_flops, p.flip_flops, "interface preserved");
        assert!(s.name.contains('@'));
        // identity scale keeps the name
        assert_eq!(p.scaled(1.0).name, "s15850");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = profile("c499").unwrap().scaled(0.0);
    }

    #[test]
    fn combinational_profiles_have_no_ffs() {
        for name in ["c499", "c880", "c1355", "c1908", "c7552"] {
            assert_eq!(profile(name).unwrap().flip_flops, 0, "{name}");
        }
    }

    #[test]
    fn stress_profiles_registered_and_out_of_paper_suite() {
        let big = profile("big3500").unwrap();
        let xl = profile("xl7000").unwrap();
        // c7552-scale and roughly double it
        assert!(big.gates >= 3000 && xl.gates >= 2 * big.gates - 1000);
        assert!(xl.scan_inputs() > big.scan_inputs());
        // stress extras must not leak into the paper's Table-1 suite
        for p in paper_suite() {
            assert_ne!(p.name, "big3500");
            assert_ne!(p.name, "xl7000");
        }
    }

    #[test]
    fn resistant_cones_scale_with_size() {
        let small = profile("c499").unwrap();
        let large = profile("s15850").unwrap();
        assert!(large.resistant_cones > small.resistant_cones);
        assert!(small.resistant_cones >= 1);
    }
}
