//! Synthetic ISCAS-like benchmark circuits.
//!
//! The paper evaluates on ISCAS'85 circuits and full-scan ISCAS'89
//! circuits "not random testable by 10k patterns". The benchmark tapes
//! themselves cannot be embedded here, so this crate generates *synthetic
//! stand-ins*: deterministic pseudo-random gate networks matching each
//! original's interface profile (PI/PO/FF counts, gate count) and — the
//! property that actually matters for the reseeding experiments —
//! containing deliberately random-pattern-resistant cones (wide
//! comparators), so a deterministic ATPG beats random patterns on them
//! just like on the originals.
//!
//! Sequential profiles are generated directly in their **full-scan form**:
//! the combinational core with one extra primary input per flip-flop (the
//! pseudo-PI) and one extra primary output per flip-flop (the pseudo-PO),
//! which is exactly the view the paper's TPG drives.
//!
//! All generation is deterministic in `(profile, seed)`.
//!
//! # Example
//!
//! ```
//! use fbist_genbench::{profile, generate};
//!
//! let p = profile("s1238").expect("paper circuit").scaled(0.25);
//! let netlist = generate(&p, 1);
//! assert!(netlist.is_combinational());         // full-scan form
//! assert_eq!(netlist.inputs().len(), p.inputs + p.flip_flops);
//! assert!(netlist.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod profile;

pub use generate::generate;
pub use profile::{all_profiles, paper_suite, profile, CircuitProfile};
