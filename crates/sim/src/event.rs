//! Single-pattern event-driven simulation.

use fbist_bits::BitVec;
use fbist_netlist::{GateId, GateKind, Netlist};

use crate::SimError;

/// Event-driven single-pattern simulator.
///
/// Keeps the circuit's value state between calls and, on each new input
/// pattern, re-evaluates only the fanout cones of the inputs that changed.
/// For test sets with high pattern-to-pattern correlation (e.g. accumulator
/// sequences, where consecutive patterns differ in few bits) this evaluates
/// far fewer gates than a full sweep; the `fault_sim` bench quantifies the
/// trade-off against [`PackedSimulator`](crate::PackedSimulator).
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_sim::EventSimulator;
/// use fbist_bits::BitVec;
///
/// let mut sim = EventSimulator::new(&embedded::majority())?;
/// let r = sim.apply(&"110".parse().unwrap());
/// assert_eq!(r.get(0), true);
/// let r = sim.apply(&"100".parse().unwrap()); // one input flips
/// assert_eq!(r.get(0), false);
/// assert!(sim.last_eval_count() <= 5);
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventSimulator {
    netlist: Netlist,
    order: Vec<GateId>,
    /// position of each gate in `order` (for the event queue ordering)
    rank: Vec<usize>,
    fanouts: Vec<Vec<GateId>>,
    values: Vec<bool>,
    initialized: bool,
    last_eval: usize,
}

impl EventSimulator {
    /// Builds an event-driven simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        let mut rank = vec![0usize; netlist.gate_count()];
        for (i, &g) in order.iter().enumerate() {
            rank[g.index()] = i;
        }
        let fanouts = netlist.fanouts();
        let values = vec![false; netlist.gate_count()];
        Ok(EventSimulator {
            netlist: netlist.clone(),
            order,
            rank,
            fanouts,
            values,
            initialized: false,
            last_eval: 0,
        })
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of gate evaluations performed by the most recent
    /// [`apply`](EventSimulator::apply) call.
    pub fn last_eval_count(&self) -> usize {
        self.last_eval
    }

    fn eval_gate(&self, id: GateId) -> bool {
        let g = self.netlist.gate(id);
        let vals = |f: &GateId| self.values[f.index()];
        match g.kind() {
            GateKind::And => g.fanin().iter().all(&vals),
            GateKind::Nand => !g.fanin().iter().all(&vals),
            GateKind::Or => g.fanin().iter().any(&vals),
            GateKind::Nor => !g.fanin().iter().any(&vals),
            GateKind::Xor => g.fanin().iter().filter(|f| vals(f)).count() % 2 == 1,
            GateKind::Xnor => g.fanin().iter().filter(|f| vals(f)).count() % 2 == 0,
            GateKind::Not => !vals(&g.fanin()[0]),
            GateKind::Buff => vals(&g.fanin()[0]),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Input | GateKind::Dff => self.values[id.index()],
        }
    }

    /// Applies a pattern and returns the primary-output response.
    ///
    /// The first call performs a full evaluation; subsequent calls propagate
    /// only the changes.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the input count.
    pub fn apply(&mut self, pattern: &BitVec) -> BitVec {
        assert_eq!(
            pattern.width(),
            self.netlist.inputs().len(),
            "pattern width must equal the primary input count"
        );
        self.last_eval = 0;
        if !self.initialized {
            for (k, &pi) in self.netlist.inputs().iter().enumerate() {
                self.values[pi.index()] = pattern.get(k);
            }
            for &id in &self.order.clone() {
                let kind = self.netlist.gate(id).kind();
                if kind == GateKind::Input {
                    continue;
                }
                self.values[id.index()] = self.eval_gate(id);
                self.last_eval += 1;
            }
            self.initialized = true;
        } else {
            // Seed the event heap with changed inputs; process gates in
            // topological rank order so each gate is evaluated at most once.
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, u32)>> =
                std::collections::BinaryHeap::new();
            let mut queued = vec![false; self.netlist.gate_count()];
            for (k, &pi) in self.netlist.inputs().iter().enumerate() {
                let nv = pattern.get(k);
                if self.values[pi.index()] != nv {
                    self.values[pi.index()] = nv;
                    for &fo in &self.fanouts[pi.index()] {
                        if !queued[fo.index()] {
                            queued[fo.index()] = true;
                            heap.push(std::cmp::Reverse((
                                self.rank[fo.index()],
                                fo.index() as u32,
                            )));
                        }
                    }
                }
            }
            while let Some(std::cmp::Reverse((_, idx))) = heap.pop() {
                let id = GateId::from_index(idx as usize);
                queued[idx as usize] = false;
                let nv = self.eval_gate(id);
                self.last_eval += 1;
                if nv != self.values[idx as usize] {
                    self.values[idx as usize] = nv;
                    for &fo in &self.fanouts[idx as usize] {
                        if !queued[fo.index()] {
                            queued[fo.index()] = true;
                            heap.push(std::cmp::Reverse((
                                self.rank[fo.index()],
                                fo.index() as u32,
                            )));
                        }
                    }
                }
            }
        }
        let mut out = BitVec::zeros(self.netlist.outputs().len());
        for (i, &o) in self.netlist.outputs().iter().enumerate() {
            if self.values[o.index()] {
                out.set(i, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackedSimulator;
    use fbist_netlist::embedded;

    #[test]
    fn matches_packed_simulator() {
        let n = embedded::adder4();
        let mut esim = EventSimulator::new(&n).unwrap();
        let psim = PackedSimulator::new(&n).unwrap();
        // pseudo-random walk with single-bit flips
        let mut p = BitVec::zeros(9);
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            p.toggle((state % 9) as usize);
            let er = esim.apply(&p);
            let pr = &psim.simulate_patterns(std::slice::from_ref(&p))[0];
            assert_eq!(&er, pr);
        }
    }

    #[test]
    fn incremental_is_cheaper_than_full() {
        let n = embedded::adder4();
        let mut sim = EventSimulator::new(&n).unwrap();
        let p = BitVec::zeros(9);
        sim.apply(&p);
        let full = sim.last_eval_count();
        // flip a3 only: affects at most the high-order slice
        let mut p2 = p.clone();
        p2.set(3, true);
        sim.apply(&p2);
        assert!(sim.last_eval_count() < full);
        // unchanged pattern: zero evaluations
        sim.apply(&p2);
        assert_eq!(sim.last_eval_count(), 0);
    }

    #[test]
    fn rejects_sequential() {
        assert!(EventSimulator::new(&embedded::johnson3()).is_err());
    }
}
