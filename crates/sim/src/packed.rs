//! 64-way bit-parallel combinational simulation.

use std::sync::atomic::{AtomicU64, Ordering};

use fbist_bits::{pack, BitVec};
use fbist_netlist::{GateId, Netlist};

use crate::{sweep, SimError};

/// Lane-occupancy statistics of a [`PackedSimulator`].
///
/// Every evaluated block carries 64 lanes whether or not they hold real
/// patterns; the ratio of used lanes to available lanes is the direct
/// measure of how much bit-parallel bandwidth a workload wastes. The
/// per-row Detection-Matrix build occupies only `τ + 1 (mod 64)` lanes of
/// each row's last block (6.25 % at `τ = 3`); the cross-row batch engine
/// exists to push this toward 100 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOccupancy {
    /// Blocks evaluated since construction or the last reset.
    pub blocks: u64,
    /// Pattern lanes actually occupied across those blocks.
    pub lanes: u64,
}

impl LaneOccupancy {
    /// Occupied fraction of the available lanes, in `[0, 1]` (1.0 when no
    /// block was evaluated yet).
    pub fn ratio(&self) -> f64 {
        if self.blocks == 0 {
            1.0
        } else {
            self.lanes as f64 / (self.blocks * pack::BLOCK as u64) as f64
        }
    }
}

/// Bit-parallel combinational simulator.
///
/// One `u64` per net holds the net's value under up to 64 input patterns
/// simultaneously (bit `k` = lane `k`). A full evaluation of the circuit
/// under 64 patterns costs one pass over the levelised gate list.
///
/// The simulator owns a clone of the netlist and its topological order, so
/// it can be handed around independently of the original.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_sim::PackedSimulator;
/// use fbist_bits::BitVec;
///
/// let adder = embedded::adder4();
/// let sim = PackedSimulator::new(&adder)?;
/// // inputs are a0..a3, b0..b3, cin; compute 3 + 5
/// let mut p = BitVec::zeros(9);
/// p.set(0, true); p.set(1, true);       // a = 0b0011
/// p.set(4, true); p.set(6, true);       // b = 0b0101
/// let r = sim.simulate_patterns(&[p]);
/// // outputs are s0..s3, cout; 3 + 5 = 8 = 0b1000
/// assert_eq!(r[0].to_u64(), Some(0b01000));
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct PackedSimulator {
    netlist: Netlist,
    order: Vec<GateId>,
    /// Occupancy counters (see [`LaneOccupancy`]). Atomic so that callers
    /// sharing one simulator across a worker pool can record without
    /// locking; totals are deterministic because the set of evaluated
    /// blocks is.
    blocks_evaluated: AtomicU64,
    lanes_occupied: AtomicU64,
}

impl Clone for PackedSimulator {
    fn clone(&self) -> Self {
        PackedSimulator {
            netlist: self.netlist.clone(),
            order: self.order.clone(),
            blocks_evaluated: AtomicU64::new(self.blocks_evaluated.load(Ordering::Relaxed)),
            lanes_occupied: AtomicU64::new(self.lanes_occupied.load(Ordering::Relaxed)),
        }
    }
}

impl PackedSimulator {
    /// Builds a simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] if the netlist contains
    /// flip-flops (apply [`fbist_netlist::full_scan`] first) and
    /// [`SimError::Netlist`] if it fails levelisation.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        Ok(PackedSimulator {
            netlist: netlist.clone(),
            order,
            blocks_evaluated: AtomicU64::new(0),
            lanes_occupied: AtomicU64::new(0),
        })
    }

    /// Records one evaluated block with `lanes_used` occupied lanes.
    ///
    /// Called by the block-level drivers (the fault simulator and
    /// [`simulate_patterns`](Self::simulate_patterns)), which know how many
    /// lanes of the block carried real patterns.
    pub fn record_occupancy(&self, lanes_used: usize) {
        self.blocks_evaluated.fetch_add(1, Ordering::Relaxed);
        self.lanes_occupied
            .fetch_add(lanes_used as u64, Ordering::Relaxed);
    }

    /// Occupancy counters accumulated so far.
    pub fn occupancy(&self) -> LaneOccupancy {
        LaneOccupancy {
            blocks: self.blocks_evaluated.load(Ordering::Relaxed),
            lanes: self.lanes_occupied.load(Ordering::Relaxed),
        }
    }

    /// Resets the occupancy counters to zero.
    pub fn reset_occupancy(&self) {
        self.blocks_evaluated.store(0, Ordering::Relaxed);
        self.lanes_occupied.store(0, Ordering::Relaxed);
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The topological evaluation order (sources first).
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.netlist.inputs().len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.netlist.outputs().len()
    }

    /// Allocates a value buffer of the right size (one word per net).
    pub fn value_buffer(&self) -> Vec<u64> {
        vec![0u64; self.netlist.gate_count()]
    }

    /// Evaluates one 64-lane block in place.
    ///
    /// `pi_words[k]` is the packed word of primary input `k` (see
    /// [`fbist_bits::pack`]); on return `values[net]` holds every net's
    /// packed value.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words` is shorter than the input count or `values`
    /// shorter than the gate count.
    pub fn eval_block_into(&self, pi_words: &[u64], values: &mut [u64]) {
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            values[pi.index()] = pi_words[k];
        }
        sweep(&self.netlist, &self.order, values);
    }

    /// Extracts the packed primary-output words from a value buffer.
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        self.netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    /// Simulates an arbitrary number of patterns, returning one response
    /// [`BitVec`] (over the primary outputs) per pattern.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn simulate_patterns(&self, patterns: &[BitVec]) -> Vec<BitVec> {
        let mut responses = Vec::with_capacity(patterns.len());
        let mut values = self.value_buffer();
        for chunk in patterns.chunks(pack::BLOCK) {
            let pi_words = pack::pack_patterns(self.input_count(), chunk);
            self.eval_block_into(&pi_words, &mut values);
            self.record_occupancy(chunk.len());
            let po_words = self.output_words(&values);
            responses.extend(pack::unpack_patterns(&po_words, chunk.len()));
        }
        responses
    }

    /// Simulates a single pattern and also returns the full per-net value
    /// map (as booleans), useful for debugging and for the event-driven
    /// simulator cross-checks.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the input count.
    pub fn simulate_full(&self, pattern: &BitVec) -> (BitVec, Vec<bool>) {
        let mut values = self.value_buffer();
        let pi_words = pack::pack_patterns(self.input_count(), std::slice::from_ref(pattern));
        self.eval_block_into(&pi_words, &mut values);
        let po_words = self.output_words(&values);
        let response = pack::unpack_patterns(&po_words, 1).remove(0);
        let nets = values.iter().map(|&w| w & 1 == 1).collect();
        (response, nets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    #[test]
    fn c17_known_vectors() {
        let sim = PackedSimulator::new(&embedded::c17()).unwrap();
        // inputs 1,2,3,6,7 ; outputs 22,23
        // all zeros: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=1,
        //            22=NAND(1,1)=0, 23=NAND(1,1)=0
        let r = sim.simulate_patterns(&[BitVec::zeros(5)]);
        assert_eq!(r[0].to_u64(), Some(0b00));
        // all ones: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
        //           22=NAND(0,1)=1, 23=NAND(1,1)=0
        let r = sim.simulate_patterns(&[BitVec::ones(5)]);
        assert_eq!(r[0].to_u64(), Some(0b01));
    }

    #[test]
    fn adder_exhaustive() {
        let sim = PackedSimulator::new(&embedded::adder4()).unwrap();
        // exhaustive over a, b, cin: 512 patterns
        let mut patterns = Vec::new();
        let mut expect = Vec::new();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in 0u64..2 {
                    let mut p = BitVec::zeros(9);
                    for i in 0..4 {
                        p.set(i, (a >> i) & 1 == 1);
                        p.set(4 + i, (b >> i) & 1 == 1);
                    }
                    p.set(8, cin == 1);
                    patterns.push(p);
                    expect.push(a + b + cin);
                }
            }
        }
        let responses = sim.simulate_patterns(&patterns);
        for (r, e) in responses.iter().zip(&expect) {
            assert_eq!(r.to_u64(), Some(*e & 0x1F), "sum mismatch");
        }
    }

    #[test]
    fn rejects_sequential() {
        let err = PackedSimulator::new(&embedded::johnson3()).unwrap_err();
        assert!(matches!(err, SimError::SequentialNetlist { dffs: 3 }));
    }

    #[test]
    fn block_boundaries() {
        // 130 patterns crosses two block boundaries
        let sim = PackedSimulator::new(&embedded::majority()).unwrap();
        let patterns: Vec<BitVec> = (0..130u64).map(|v| BitVec::from_u64(3, v % 8)).collect();
        let rs = sim.simulate_patterns(&patterns);
        assert_eq!(rs.len(), 130);
        for (p, r) in patterns.iter().zip(&rs) {
            let bits = p.to_u64().unwrap();
            let maj = (bits.count_ones() >= 2) as u64;
            assert_eq!(r.to_u64(), Some(maj | ((1 - maj) << 1)));
        }
    }

    #[test]
    fn simulate_full_exposes_internals() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = NOT(m)\n";
        let n = bench::parse(src).unwrap();
        let sim = PackedSimulator::new(&n).unwrap();
        let p: BitVec = "11".parse().unwrap();
        let (r, nets) = sim.simulate_full(&p);
        assert_eq!(r.to_u64(), Some(0));
        let m = n.find("m").unwrap();
        assert!(nets[m.index()]);
    }

    #[test]
    fn constants_evaluate() {
        let src = "OUTPUT(y)\nc1 = CONST1()\nc0 = CONST0()\ny = AND(c1, c0)\n";
        let n = bench::parse(src).unwrap();
        let sim = PackedSimulator::new(&n).unwrap();
        let r = sim.simulate_patterns(&[BitVec::zeros(0)]);
        assert_eq!(r[0].to_u64(), Some(0));
    }
}
