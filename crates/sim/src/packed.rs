//! 64-way bit-parallel combinational simulation.

use std::sync::atomic::{AtomicU64, Ordering};

use fbist_bits::{pack, BitVec, SimWord};
use fbist_netlist::{GateId, Netlist};

use crate::{sweep, sweep_w, SimError};

/// Lane-occupancy statistics of a [`PackedSimulator`].
///
/// Every evaluated block carries its full lane capacity (`64·W` lanes at
/// SIMD width `W`) whether or not the lanes hold real patterns; the ratio
/// of used lanes to available lanes is the direct measure of how much
/// bit-parallel bandwidth a workload wastes. The per-row Detection-Matrix
/// build occupies only `τ + 1 (mod 64)` lanes of each row's last block
/// (6.25 % at `τ = 3`); the cross-row batch engine exists to push this
/// toward 100 %. Capacity is counted per block rather than assumed, so
/// the ratio stays truthful when blocks of different widths mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOccupancy {
    /// Blocks evaluated since construction or the last reset.
    pub blocks: u64,
    /// Pattern lanes actually occupied across those blocks.
    pub lanes: u64,
    /// Total lane capacity of those blocks (`Σ 64·W` over blocks).
    pub capacity: u64,
}

impl LaneOccupancy {
    /// Occupied fraction of the available lanes, in `[0, 1]` (1.0 when no
    /// block was evaluated yet).
    pub fn ratio(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.lanes as f64 / self.capacity as f64
        }
    }
}

/// Bit-parallel combinational simulator.
///
/// One `u64` per net holds the net's value under up to 64 input patterns
/// simultaneously (bit `k` = lane `k`). A full evaluation of the circuit
/// under 64 patterns costs one pass over the levelised gate list.
///
/// The simulator owns a clone of the netlist and its topological order, so
/// it can be handed around independently of the original.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_sim::PackedSimulator;
/// use fbist_bits::BitVec;
///
/// let adder = embedded::adder4();
/// let sim = PackedSimulator::new(&adder)?;
/// // inputs are a0..a3, b0..b3, cin; compute 3 + 5
/// let mut p = BitVec::zeros(9);
/// p.set(0, true); p.set(1, true);       // a = 0b0011
/// p.set(4, true); p.set(6, true);       // b = 0b0101
/// let r = sim.simulate_patterns(&[p]);
/// // outputs are s0..s3, cout; 3 + 5 = 8 = 0b1000
/// assert_eq!(r[0].to_u64(), Some(0b01000));
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct PackedSimulator {
    netlist: Netlist,
    order: Vec<GateId>,
    /// Occupancy counters (see [`LaneOccupancy`]). Atomic so that callers
    /// sharing one simulator across a worker pool can record without
    /// locking; totals are deterministic because the set of evaluated
    /// blocks is.
    blocks_evaluated: AtomicU64,
    lanes_occupied: AtomicU64,
    lane_capacity: AtomicU64,
}

impl Clone for PackedSimulator {
    fn clone(&self) -> Self {
        PackedSimulator {
            netlist: self.netlist.clone(),
            order: self.order.clone(),
            blocks_evaluated: AtomicU64::new(self.blocks_evaluated.load(Ordering::Relaxed)),
            lanes_occupied: AtomicU64::new(self.lanes_occupied.load(Ordering::Relaxed)),
            lane_capacity: AtomicU64::new(self.lane_capacity.load(Ordering::Relaxed)),
        }
    }
}

impl PackedSimulator {
    /// Builds a simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] if the netlist contains
    /// flip-flops (apply [`fbist_netlist::full_scan`] first) and
    /// [`SimError::Netlist`] if it fails levelisation.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        Ok(PackedSimulator {
            netlist: netlist.clone(),
            order,
            blocks_evaluated: AtomicU64::new(0),
            lanes_occupied: AtomicU64::new(0),
            lane_capacity: AtomicU64::new(0),
        })
    }

    /// Records one evaluated 64-lane block with `lanes_used` occupied
    /// lanes.
    ///
    /// Called by the block-level drivers (the fault simulator and
    /// [`simulate_patterns`](Self::simulate_patterns)), which know how many
    /// lanes of the block carried real patterns. Wider drivers use
    /// [`record_occupancy_wide`](Self::record_occupancy_wide).
    pub fn record_occupancy(&self, lanes_used: usize) {
        self.record_occupancy_wide(lanes_used, pack::BLOCK);
    }

    /// Records one evaluated block of `lane_capacity` total lanes (`64·W`
    /// at SIMD width `W`) with `lanes_used` of them occupied.
    pub fn record_occupancy_wide(&self, lanes_used: usize, lane_capacity: usize) {
        self.blocks_evaluated.fetch_add(1, Ordering::Relaxed);
        self.lanes_occupied
            .fetch_add(lanes_used as u64, Ordering::Relaxed);
        self.lane_capacity
            .fetch_add(lane_capacity as u64, Ordering::Relaxed);
    }

    /// Occupancy counters accumulated so far.
    pub fn occupancy(&self) -> LaneOccupancy {
        LaneOccupancy {
            blocks: self.blocks_evaluated.load(Ordering::Relaxed),
            lanes: self.lanes_occupied.load(Ordering::Relaxed),
            capacity: self.lane_capacity.load(Ordering::Relaxed),
        }
    }

    /// Resets the occupancy counters to zero.
    pub fn reset_occupancy(&self) {
        self.blocks_evaluated.store(0, Ordering::Relaxed);
        self.lanes_occupied.store(0, Ordering::Relaxed);
        self.lane_capacity.store(0, Ordering::Relaxed);
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The topological evaluation order (sources first).
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.netlist.inputs().len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.netlist.outputs().len()
    }

    /// Allocates a value buffer of the right size (one word per net).
    pub fn value_buffer(&self) -> Vec<u64> {
        vec![0u64; self.netlist.gate_count()]
    }

    /// Allocates a width-`W` value buffer (one [`SimWord<W>`] per net).
    pub fn value_buffer_w<const W: usize>(&self) -> Vec<SimWord<W>> {
        vec![SimWord::ZERO; self.netlist.gate_count()]
    }

    /// Evaluates one 64-lane block in place.
    ///
    /// `pi_words[k]` is the packed word of primary input `k` (see
    /// [`fbist_bits::pack`]); on return `values[net]` holds every net's
    /// packed value.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words` is shorter than the input count or `values`
    /// shorter than the gate count.
    pub fn eval_block_into(&self, pi_words: &[u64], values: &mut [u64]) {
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            values[pi.index()] = pi_words[k];
        }
        sweep(&self.netlist, &self.order, values);
    }

    /// Evaluates one `64·W`-lane block in place — the width-generic
    /// [`eval_block_into`](Self::eval_block_into). Lane `k` of the block
    /// behaves exactly like lane `k % 64` of 64-lane block `k / 64`.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words` is shorter than the input count or `values`
    /// shorter than the gate count.
    pub fn eval_block_into_w<const W: usize>(
        &self,
        pi_words: &[SimWord<W>],
        values: &mut [SimWord<W>],
    ) {
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            values[pi.index()] = pi_words[k];
        }
        sweep_w(&self.netlist, &self.order, values);
    }

    /// Extracts the packed primary-output words from a value buffer.
    pub fn output_words(&self, values: &[u64]) -> Vec<u64> {
        self.netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    /// Extracts the packed primary-output words from a width-`W` value
    /// buffer.
    pub fn output_words_w<const W: usize>(&self, values: &[SimWord<W>]) -> Vec<SimWord<W>> {
        self.netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    /// Simulates an arbitrary number of patterns, returning one response
    /// [`BitVec`] (over the primary outputs) per pattern.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the input count.
    pub fn simulate_patterns(&self, patterns: &[BitVec]) -> Vec<BitVec> {
        let mut responses = Vec::with_capacity(patterns.len());
        let mut values = self.value_buffer();
        for chunk in patterns.chunks(pack::BLOCK) {
            let pi_words = pack::pack_patterns(self.input_count(), chunk);
            self.eval_block_into(&pi_words, &mut values);
            self.record_occupancy(chunk.len());
            let po_words = self.output_words(&values);
            responses.extend(pack::unpack_patterns(&po_words, chunk.len()));
        }
        responses
    }

    /// Simulates a single pattern and also returns the full per-net value
    /// map (as booleans), useful for debugging and for the event-driven
    /// simulator cross-checks.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the input count.
    pub fn simulate_full(&self, pattern: &BitVec) -> (BitVec, Vec<bool>) {
        let mut values = self.value_buffer();
        let pi_words = pack::pack_patterns(self.input_count(), std::slice::from_ref(pattern));
        self.eval_block_into(&pi_words, &mut values);
        let po_words = self.output_words(&values);
        let response = pack::unpack_patterns(&po_words, 1).remove(0);
        let nets = values.iter().map(|&w| w & 1 == 1).collect();
        (response, nets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    #[test]
    fn c17_known_vectors() {
        let sim = PackedSimulator::new(&embedded::c17()).unwrap();
        // inputs 1,2,3,6,7 ; outputs 22,23
        // all zeros: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=1,
        //            22=NAND(1,1)=0, 23=NAND(1,1)=0
        let r = sim.simulate_patterns(&[BitVec::zeros(5)]);
        assert_eq!(r[0].to_u64(), Some(0b00));
        // all ones: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
        //           22=NAND(0,1)=1, 23=NAND(1,1)=0
        let r = sim.simulate_patterns(&[BitVec::ones(5)]);
        assert_eq!(r[0].to_u64(), Some(0b01));
    }

    #[test]
    fn adder_exhaustive() {
        let sim = PackedSimulator::new(&embedded::adder4()).unwrap();
        // exhaustive over a, b, cin: 512 patterns
        let mut patterns = Vec::new();
        let mut expect = Vec::new();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in 0u64..2 {
                    let mut p = BitVec::zeros(9);
                    for i in 0..4 {
                        p.set(i, (a >> i) & 1 == 1);
                        p.set(4 + i, (b >> i) & 1 == 1);
                    }
                    p.set(8, cin == 1);
                    patterns.push(p);
                    expect.push(a + b + cin);
                }
            }
        }
        let responses = sim.simulate_patterns(&patterns);
        for (r, e) in responses.iter().zip(&expect) {
            assert_eq!(r.to_u64(), Some(*e & 0x1F), "sum mismatch");
        }
    }

    #[test]
    fn rejects_sequential() {
        let err = PackedSimulator::new(&embedded::johnson3()).unwrap_err();
        assert!(matches!(err, SimError::SequentialNetlist { dffs: 3 }));
    }

    #[test]
    fn block_boundaries() {
        // 130 patterns crosses two block boundaries
        let sim = PackedSimulator::new(&embedded::majority()).unwrap();
        let patterns: Vec<BitVec> = (0..130u64).map(|v| BitVec::from_u64(3, v % 8)).collect();
        let rs = sim.simulate_patterns(&patterns);
        assert_eq!(rs.len(), 130);
        for (p, r) in patterns.iter().zip(&rs) {
            let bits = p.to_u64().unwrap();
            let maj = (bits.count_ones() >= 2) as u64;
            assert_eq!(r.to_u64(), Some(maj | ((1 - maj) << 1)));
        }
    }

    #[test]
    fn simulate_full_exposes_internals() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = NOT(m)\n";
        let n = bench::parse(src).unwrap();
        let sim = PackedSimulator::new(&n).unwrap();
        let p: BitVec = "11".parse().unwrap();
        let (r, nets) = sim.simulate_full(&p);
        assert_eq!(r.to_u64(), Some(0));
        let m = n.find("m").unwrap();
        assert!(nets[m.index()]);
    }

    #[test]
    fn wide_eval_matches_narrow_blocks() {
        // lane k of a W-wide block == lane k%64 of narrow block k/64, for
        // every net: the flat-lane contract the fault engines build on.
        let sim = PackedSimulator::new(&embedded::adder4()).unwrap();
        let patterns: Vec<BitVec> = (0..200u64).map(|v| BitVec::from_u64(9, v * 29)).collect();
        let wide_pi = pack::pack_patterns_w::<4>(9, &patterns);
        let mut wide = sim.value_buffer_w::<4>();
        sim.eval_block_into_w(&wide_pi, &mut wide);
        let mut narrow = sim.value_buffer();
        for (b, chunk) in patterns.chunks(pack::BLOCK).enumerate() {
            let pi = pack::pack_patterns(9, chunk);
            sim.eval_block_into(&pi, &mut narrow);
            for (net, w) in wide.iter().enumerate() {
                assert_eq!(w.0[b], narrow[net], "net {net} sub-block {b}");
            }
        }
    }

    #[test]
    fn occupancy_tracks_capacity_per_block() {
        let sim = PackedSimulator::new(&embedded::majority()).unwrap();
        sim.record_occupancy(10); // 64-lane block
        sim.record_occupancy_wide(200, 256); // one W=4 block
        let occ = sim.occupancy();
        assert_eq!(occ.blocks, 2);
        assert_eq!(occ.lanes, 210);
        assert_eq!(occ.capacity, 320);
        assert!((occ.ratio() - 210.0 / 320.0).abs() < 1e-12);
        sim.reset_occupancy();
        assert_eq!(sim.occupancy().ratio(), 1.0);
    }

    #[test]
    fn constants_evaluate() {
        let src = "OUTPUT(y)\nc1 = CONST1()\nc0 = CONST0()\ny = AND(c1, c0)\n";
        let n = bench::parse(src).unwrap();
        let sim = PackedSimulator::new(&n).unwrap();
        let r = sim.simulate_patterns(&[BitVec::zeros(0)]);
        assert_eq!(r[0].to_u64(), Some(0));
    }
}
