//! Cycle-accurate sequential simulation.

use fbist_bits::{pack, BitVec};
use fbist_netlist::{GateId, Netlist};

use crate::{sweep, SimError};

/// Sequential (flip-flop-aware) simulator, 64 lanes wide.
///
/// Each of the 64 bit lanes is an *independent* execution of the circuit:
/// the simulator keeps one packed state word per flip-flop and updates all
/// lanes synchronously on every [`step`](SeqSimulator::step). Lane 0 is the
/// conventional single-machine view; the helper methods that take and return
/// [`BitVec`]s operate on lane 0.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_sim::SeqSimulator;
/// use fbist_bits::BitVec;
///
/// // 3-bit Johnson counter: enabled, it cycles 000 → 001 → 011 → 111 → ...
/// let mut sim = SeqSimulator::new(&embedded::johnson3())?;
/// sim.reset();
/// let en = BitVec::ones(1);
/// for _ in 0..3 { sim.step_pattern(&en); }
/// assert_eq!(sim.state_pattern().count_ones(), 3); // q0=q1=q2=1
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeqSimulator {
    netlist: Netlist,
    order: Vec<GateId>,
    values: Vec<u64>,
}

impl SeqSimulator {
    /// Builds a sequential simulator. Accepts combinational netlists too
    /// (they simply have no state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the netlist fails levelisation.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        let order = netlist.levelize()?;
        let values = vec![0u64; netlist.gate_count()];
        Ok(SeqSimulator {
            netlist: netlist.clone(),
            order,
            values,
        })
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Clears all state lanes to zero.
    pub fn reset(&mut self) {
        for v in &mut self.values {
            *v = 0;
        }
    }

    /// Sets the state register from one [`BitVec`] per flip-flop *for all
    /// lanes* (broadcast): bit `i` of `state` goes to flip-flop `i`.
    ///
    /// # Panics
    ///
    /// Panics if `state.width()` differs from the flip-flop count.
    pub fn load_state(&mut self, state: &BitVec) {
        assert_eq!(
            state.width(),
            self.netlist.dffs().len(),
            "state width must equal the flip-flop count"
        );
        for (i, &d) in self.netlist.dffs().iter().enumerate() {
            self.values[d.index()] = if state.get(i) { u64::MAX } else { 0 };
        }
    }

    /// The current state of lane 0, one bit per flip-flop.
    pub fn state_pattern(&self) -> BitVec {
        let mut s = BitVec::zeros(self.netlist.dffs().len());
        for (i, &d) in self.netlist.dffs().iter().enumerate() {
            if self.values[d.index()] & 1 == 1 {
                s.set(i, true);
            }
        }
        s
    }

    /// Advances one clock cycle with packed primary-input words; returns the
    /// packed primary-output words observed *before* the state update
    /// (standard Mealy observation order: outputs of the current cycle).
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the input count.
    pub fn step(&mut self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            pi_words.len(),
            self.netlist.inputs().len(),
            "one packed word per primary input required"
        );
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            self.values[pi.index()] = pi_words[k];
        }
        sweep(&self.netlist, &self.order, &mut self.values);
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|o| self.values[o.index()])
            .collect();
        // Commit next state: Q <= D, synchronously.
        let next: Vec<u64> = self
            .netlist
            .dffs()
            .iter()
            .map(|d| self.values[self.netlist.gate(*d).fanin()[0].index()])
            .collect();
        for (&d, v) in self.netlist.dffs().iter().zip(next) {
            self.values[d.index()] = v;
        }
        outputs
    }

    /// Lane-0 convenience wrapper around [`step`](SeqSimulator::step):
    /// applies one input pattern, returns the output pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the input count.
    pub fn step_pattern(&mut self, pattern: &BitVec) -> BitVec {
        let pi_words =
            pack::pack_patterns(self.netlist.inputs().len(), std::slice::from_ref(pattern));
        let po_words = self.step(&pi_words);
        pack::unpack_patterns(&po_words, 1).remove(0)
    }

    /// Runs a whole input sequence on lane 0, returning the output sequence.
    pub fn run_sequence(&mut self, patterns: &[BitVec]) -> Vec<BitVec> {
        patterns.iter().map(|p| self.step_pattern(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::bench;
    use fbist_netlist::embedded;

    #[test]
    fn toggle_ff() {
        let src = "OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n";
        let n = bench::parse(src).unwrap();
        let mut sim = SeqSimulator::new(&n).unwrap();
        sim.reset();
        let empty = BitVec::zeros(0);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let out = sim.step_pattern(&empty);
            seen.push(out.to_u64().unwrap());
        }
        // q starts 0; output observed before update: 0,1,0,1
        assert_eq!(seen, vec![0, 1, 0, 1]);
    }

    #[test]
    fn johnson_counter_sequence() {
        let mut sim = SeqSimulator::new(&embedded::johnson3()).unwrap();
        sim.reset();
        let en = BitVec::ones(1);
        let states: Vec<u64> = (0..6)
            .map(|_| {
                sim.step_pattern(&en);
                sim.state_pattern().to_u64().unwrap()
            })
            .collect();
        // d0 = !q2, d1 = q0, d2 = q1 : 000 -> 001 -> 011 -> 111 -> 110 -> 100 -> 000
        assert_eq!(states, vec![0b001, 0b011, 0b111, 0b110, 0b100, 0b000]);
    }

    #[test]
    fn disable_freezes_to_zero() {
        let mut sim = SeqSimulator::new(&embedded::johnson3()).unwrap();
        sim.load_state(&"111".parse().unwrap());
        let dis = BitVec::zeros(1);
        sim.step_pattern(&dis);
        assert!(sim.state_pattern().is_zero()); // ANDed with en=0
    }

    #[test]
    fn load_state_roundtrip() {
        let mut sim = SeqSimulator::new(&embedded::johnson3()).unwrap();
        let s: BitVec = "101".parse().unwrap();
        sim.load_state(&s);
        assert_eq!(sim.state_pattern(), s);
    }

    #[test]
    fn lanes_are_independent() {
        let src = "INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, x)\n";
        let n = bench::parse(src).unwrap();
        let mut sim = SeqSimulator::new(&n).unwrap();
        sim.reset();
        // lane 0 gets x=1 every cycle; lane 1 gets x=0
        let words = vec![0b01u64];
        sim.step(&words);
        sim.step(&words);
        // After two cycles: lane0 q = 1^1 = 0 after second commit? q: 0->1->0
        let q = sim.netlist().dffs()[0];
        let v = sim.values[q.index()];
        assert_eq!(v & 0b11, 0b00);
        sim.step(&words);
        let v = sim.values[q.index()];
        assert_eq!(v & 0b11, 0b01); // lane0 toggled again, lane1 still 0
    }

    #[test]
    fn combinational_netlist_has_no_state() {
        let mut sim = SeqSimulator::new(&embedded::majority()).unwrap();
        let r = sim.step_pattern(&"111".parse().unwrap());
        assert_eq!(r.to_u64(), Some(0b01));
        assert_eq!(sim.state_pattern().width(), 0);
    }
}
