//! Simulation errors.

use std::error::Error;
use std::fmt;

use fbist_netlist::NetlistError;

/// Errors produced when constructing or driving a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A combinational-only simulator was given a sequential netlist.
    SequentialNetlist {
        /// Number of flip-flops found.
        dffs: usize,
    },
    /// The netlist failed validation/levelisation.
    Netlist(NetlistError),
    /// An input vector had the wrong width.
    InputWidth {
        /// Width the circuit expects (number of primary inputs).
        expected: usize,
        /// Width supplied by the caller.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SequentialNetlist { dffs } => write!(
                f,
                "combinational simulator given a netlist with {dffs} flip-flops (apply full_scan first)"
            ),
            SimError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            SimError::InputWidth { expected, got } => {
                write!(f, "input width mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}
