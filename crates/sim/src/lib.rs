//! Gate-level logic simulation.
//!
//! Four simulators, one per use case in the reseeding flow:
//!
//! * [`PackedSimulator`] — 64-way bit-parallel combinational simulation
//!   (one `u64` per net carries 64 pattern lanes). This is the workhorse
//!   behind fault simulation and detection-matrix construction.
//! * [`SeqSimulator`] — cycle-accurate sequential simulation of netlists
//!   with flip-flops, also 64 lanes wide (64 independent executions).
//! * [`TritSimulator`] — three-valued (`0`/`1`/`X`) single-pattern
//!   simulation of [`Cube`](fbist_bits::Cube)s, used to reason about
//!   partially specified patterns.
//! * [`EventSimulator`] — classic single-pattern event-driven simulation,
//!   kept as a cross-check and for the ablation benchmarks;
//! * [`Misr`] — multiple-input signature register for output-response
//!   compaction, the observation side of a real BIST datapath.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::embedded;
//! use fbist_sim::PackedSimulator;
//! use fbist_bits::BitVec;
//!
//! let c17 = embedded::c17();
//! let sim = PackedSimulator::new(&c17)?;
//! let responses = sim.simulate_patterns(&[BitVec::ones(5)]);
//! assert_eq!(responses.len(), 1);
//! assert_eq!(responses[0].width(), 2);
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod misr;
mod packed;
mod seq;
mod threeval;

pub use error::SimError;
pub use event::EventSimulator;
pub use misr::Misr;
pub use packed::{LaneOccupancy, PackedSimulator};
pub use seq::SeqSimulator;
pub use threeval::TritSimulator;

use fbist_bits::SimWord;
use fbist_netlist::{GateId, GateKind, Netlist};

/// Evaluates one gate over packed values stored in a flat per-net array.
///
/// This is the inner loop of every simulator in this crate; it avoids
/// materialising a fanin slice per gate.
#[inline]
pub(crate) fn eval_gate_packed(kind: GateKind, fanin: &[GateId], values: &[u64]) -> u64 {
    match kind {
        GateKind::And => fanin.iter().fold(u64::MAX, |a, f| a & values[f.index()]),
        GateKind::Nand => !fanin.iter().fold(u64::MAX, |a, f| a & values[f.index()]),
        GateKind::Or => fanin.iter().fold(0u64, |a, f| a | values[f.index()]),
        GateKind::Nor => !fanin.iter().fold(0u64, |a, f| a | values[f.index()]),
        GateKind::Xor => fanin.iter().fold(0u64, |a, f| a ^ values[f.index()]),
        GateKind::Xnor => !fanin.iter().fold(0u64, |a, f| a ^ values[f.index()]),
        GateKind::Not => !values[fanin[0].index()],
        GateKind::Buff => values[fanin[0].index()],
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Input | GateKind::Dff => unreachable!("sources are assigned, not evaluated"),
    }
}

/// Evaluates every non-source gate of `netlist` in `order`, reading and
/// writing the flat `values` array. Input and DFF values must already be
/// assigned.
#[inline]
pub(crate) fn sweep(netlist: &Netlist, order: &[GateId], values: &mut [u64]) {
    for &id in order {
        let g = netlist.gate(id);
        let k = g.kind();
        if k == GateKind::Input || k == GateKind::Dff {
            continue;
        }
        values[id.index()] = eval_gate_packed(k, g.fanin(), values);
    }
}

/// Width-generic [`eval_gate_packed`]: one [`SimWord<W>`] per net carries
/// `64·W` pattern lanes. The fold bodies are plain `[u64; W]` array ops,
/// which the autovectorizer lowers to 128/256/512-bit SIMD.
#[inline]
pub(crate) fn eval_gate_packed_w<const W: usize>(
    kind: GateKind,
    fanin: &[GateId],
    values: &[SimWord<W>],
) -> SimWord<W> {
    type S<const W: usize> = SimWord<W>;
    match kind {
        GateKind::And => fanin.iter().fold(S::MAX, |a, f| a & values[f.index()]),
        GateKind::Nand => !fanin.iter().fold(S::MAX, |a, f| a & values[f.index()]),
        GateKind::Or => fanin.iter().fold(S::ZERO, |a, f| a | values[f.index()]),
        GateKind::Nor => !fanin.iter().fold(S::ZERO, |a, f| a | values[f.index()]),
        GateKind::Xor => fanin.iter().fold(S::ZERO, |a, f| a ^ values[f.index()]),
        GateKind::Xnor => !fanin.iter().fold(S::ZERO, |a, f| a ^ values[f.index()]),
        GateKind::Not => !values[fanin[0].index()],
        GateKind::Buff => values[fanin[0].index()],
        GateKind::Const0 => S::ZERO,
        GateKind::Const1 => S::MAX,
        GateKind::Input | GateKind::Dff => unreachable!("sources are assigned, not evaluated"),
    }
}

/// Width-generic [`sweep`] over [`SimWord<W>`] value buffers.
#[inline]
pub(crate) fn sweep_w<const W: usize>(
    netlist: &Netlist,
    order: &[GateId],
    values: &mut [SimWord<W>],
) {
    for &id in order {
        let g = netlist.gate(id);
        let k = g.kind();
        if k == GateKind::Input || k == GateKind::Dff {
            continue;
        }
        values[id.index()] = eval_gate_packed_w(k, g.fanin(), values);
    }
}
