//! Multiple-input signature register (MISR) response compaction.
//!
//! A BIST architecture does not store expected responses pattern by
//! pattern: the UUT outputs feed a MISR — an LFSR with one XOR input per
//! output — whose final state (*signature*) is compared against the fault-
//! free signature. A fault is caught iff the faulty response stream
//! produces a different signature; the (small) chance that it does not is
//! *aliasing*, classically `2^-w` for a `w`-bit maximal MISR.
//!
//! The reseeding flow's detection model ("some output differs on some
//! pattern") is the aliasing-free idealisation; this module provides the
//! realistic signature path plus an empirical aliasing estimator so the
//! idealisation can be checked (see the `misr_aliasing_is_rare` test and
//! the root-level integration tests).

use fbist_bits::BitVec;

/// A multiple-input signature register.
///
/// State update per cycle: `S ← step_lfsr(S) ⊕ inject(R)` where `R` is the
/// response word, folded to the register width if the UUT has more
/// outputs than the MISR has bits.
///
/// # Example
///
/// ```
/// use fbist_sim::Misr;
/// use fbist_bits::BitVec;
///
/// let mut misr = Misr::new(16);
/// for v in [3u64, 1, 4, 1, 5] {
///     misr.absorb(&BitVec::from_u64(16, v));
/// }
/// let sig = misr.signature().clone();
/// // deterministic: same stream, same signature
/// let mut again = Misr::new(16);
/// for v in [3u64, 1, 4, 1, 5] {
///     again.absorb(&BitVec::from_u64(16, v));
/// }
/// assert_eq!(&sig, again.signature());
/// // sensitive: a single-bit change flips the signature
/// let mut other = Misr::new(16);
/// for v in [3u64, 1, 4, 1, 4] {
///     other.absorb(&BitVec::from_u64(16, v));
/// }
/// assert_ne!(&sig, other.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: BitVec,
    taps: BitVec,
    cycles: usize,
}

impl Misr {
    /// Creates a zero-initialised MISR of the given width with the default
    /// (maximal where known) feedback polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Misr {
        assert!(width >= 2, "MISR width must be at least 2");
        // the feedback polynomial decides the aliasing behaviour: use the
        // verified maximal-length table shared with the LFSR TPGs (a weak
        // polynomial lets short error bursts cancel — observed empirically
        // before this was switched to the maximal table)
        let taps = fbist_tpg::Lfsr::maximal(width).taps().clone();
        Misr {
            state: BitVec::zeros(width),
            taps,
            cycles: 0,
        }
    }

    /// Creates a MISR with an explicit feedback tap mask. The mask must
    /// have at least one set bit: with no feedback taps the register
    /// degenerates into a pure shift register, so every absorbed response
    /// bit falls off the MSB end after `width` cycles and the "signature"
    /// depends on only the last `width` response words — silently
    /// destroying the error coverage the compactor exists for.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, `width < 2`, or `taps` is all-zero.
    pub fn with_taps(width: usize, taps: BitVec) -> Misr {
        assert!(width >= 2, "MISR width must be at least 2");
        assert_eq!(taps.width(), width, "tap mask width mismatch");
        assert!(
            !taps.is_zero(),
            "degenerate all-zero tap mask: a MISR with no feedback taps \
             is a pure shift register that forgets every response older \
             than `width` cycles"
        );
        Misr {
            state: BitVec::zeros(width),
            taps,
            cycles: 0,
        }
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.state.width()
    }

    /// Number of absorbed response words.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Resets the register to zero.
    pub fn reset(&mut self) {
        self.state = BitVec::zeros(self.state.width());
        self.cycles = 0;
    }

    /// Absorbs one response word. Responses wider than the register are
    /// folded (XOR of `width`-bit chunks); narrower ones are zero-extended.
    pub fn absorb(&mut self, response: &BitVec) {
        let folded = fold_to_width(response, self.width());
        // Fibonacci step
        let fb = (&self.state & &self.taps).parity();
        let mut next = self.state.shl1();
        next.set(0, fb);
        self.state = &next ^ &folded;
        self.cycles += 1;
    }

    /// Absorbs a whole response stream.
    pub fn absorb_all<'a>(&mut self, responses: impl IntoIterator<Item = &'a BitVec>) {
        for r in responses {
            self.absorb(r);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> &BitVec {
        &self.state
    }

    /// Convenience: the signature of a response stream from a fresh
    /// zero-initialised register.
    pub fn signature_of(width: usize, responses: &[BitVec]) -> BitVec {
        let mut m = Misr::new(width);
        m.absorb_all(responses);
        m.state
    }
}

/// Folds a vector to `width` bits by XOR-ing `width`-sized chunks
/// (zero-extends if narrower).
fn fold_to_width(v: &BitVec, width: usize) -> BitVec {
    if v.width() == width {
        return v.clone();
    }
    if v.width() < width {
        return v.resized(width);
    }
    let mut acc = BitVec::zeros(width);
    let mut chunk = BitVec::zeros(width);
    let mut filled = 0usize;
    for i in 0..v.width() {
        chunk.set(i % width, v.get(i));
        filled += 1;
        if filled == width || i + 1 == v.width() {
            acc = &acc ^ &chunk;
            chunk = BitVec::zeros(width);
            filled = 0;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = Misr::signature_of(8, &[BitVec::from_u64(8, 1), BitVec::from_u64(8, 2)]);
        let b = Misr::signature_of(8, &[BitVec::from_u64(8, 2), BitVec::from_u64(8, 1)]);
        assert_ne!(a, b, "MISR must be order-sensitive");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = Misr::new(8);
        m.absorb(&BitVec::from_u64(8, 0xAB));
        assert!(!m.signature().is_zero());
        m.reset();
        assert!(m.signature().is_zero());
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn folding_wide_and_narrow_responses() {
        let mut m = Misr::new(8);
        m.absorb(&BitVec::from_u64(20, 0xF_FF00)); // wider: folded
        assert_eq!(m.width(), 8);
        let mut m2 = Misr::new(8);
        m2.absorb(&BitVec::from_u64(3, 0b101)); // narrower: extended
        assert!(!m2.signature().is_zero());
    }

    #[test]
    fn single_bit_difference_changes_signature() {
        // 1000 random streams with one flipped bit each
        let mut s = 0xFEEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut alias = 0;
        for _ in 0..200 {
            let stream: Vec<BitVec> = (0..20).map(|_| BitVec::from_u64(16, next())).collect();
            let mut mutated = stream.clone();
            let word = (next() % 20) as usize;
            let bit = (next() % 16) as usize;
            mutated[word].toggle(bit);
            if Misr::signature_of(16, &stream) == Misr::signature_of(16, &mutated) {
                alias += 1;
            }
        }
        // single-bit errors never alias in a linear compactor
        assert_eq!(alias, 0);
    }

    #[test]
    fn aliasing_is_rare_for_random_errors() {
        let mut s = 0xACE1u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut alias = 0;
        let trials = 500;
        for _ in 0..trials {
            let stream: Vec<BitVec> = (0..16).map(|_| BitVec::from_u64(12, next())).collect();
            let mutated: Vec<BitVec> = stream
                .iter()
                .map(|w| {
                    if next() % 3 == 0 {
                        &w.clone() ^ &BitVec::from_u64(12, next())
                    } else {
                        w.clone()
                    }
                })
                .collect();
            if mutated != stream
                && Misr::signature_of(12, &stream) == Misr::signature_of(12, &mutated)
            {
                alias += 1;
            }
        }
        // expected ~ trials × 2^-12 ≈ 0.12; allow generous slack
        assert!(
            alias <= 3,
            "aliasing rate implausibly high: {alias}/{trials}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_width_rejected() {
        let _ = Misr::new(1);
    }

    #[test]
    #[should_panic(expected = "all-zero tap mask")]
    fn zero_tap_mask_rejected() {
        let _ = Misr::with_taps(8, BitVec::zeros(8));
    }

    #[test]
    fn explicit_taps_still_accepted() {
        let mut taps = BitVec::zeros(8);
        taps.set(0, true);
        taps.set(7, true);
        let mut m = Misr::with_taps(8, taps);
        m.absorb(&BitVec::from_u64(8, 0x5A));
        assert!(!m.signature().is_zero());
    }
}
