//! Three-valued (0/1/X) simulation of partially specified patterns.

use fbist_bits::{Cube, Trit};
use fbist_netlist::{eval_trit, GateId, GateKind, Netlist};

use crate::SimError;

/// Three-valued combinational simulator.
///
/// Evaluates a [`Cube`] (a partially specified input assignment) through
/// the circuit using pessimistic Kleene logic: a net is `X` exactly when
/// the unspecified inputs could still drive it either way *locally* (the
/// usual, slightly pessimistic, three-valued semantics).
///
/// Used to check what a test cube guarantees regardless of fill, e.g.
/// whether an ATPG cube still propagates a fault after compaction.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_sim::TritSimulator;
/// use fbist_bits::{Cube, Trit};
///
/// let sim = TritSimulator::new(&embedded::majority())?;
/// // a=1, b=1, c=X  ->  majority is 1 regardless of c
/// let outs = sim.simulate_cube(&"X11".parse().unwrap());
/// assert_eq!(outs[0], Trit::One);
/// assert_eq!(outs[1], Trit::Zero); // inverted output
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TritSimulator {
    netlist: Netlist,
    order: Vec<GateId>,
}

impl TritSimulator {
    /// Builds a three-valued simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        Ok(TritSimulator {
            netlist: netlist.clone(),
            order,
        })
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Evaluates the cube, returning the primary-output trits.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the input count.
    pub fn simulate_cube(&self, cube: &Cube) -> Vec<Trit> {
        let nets = self.simulate_cube_full(cube);
        self.netlist
            .outputs()
            .iter()
            .map(|o| nets[o.index()])
            .collect()
    }

    /// Evaluates the cube, returning every net's trit.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the input count.
    pub fn simulate_cube_full(&self, cube: &Cube) -> Vec<Trit> {
        assert_eq!(
            cube.width(),
            self.netlist.inputs().len(),
            "cube width must equal the primary input count"
        );
        let mut nets = vec![Trit::X; self.netlist.gate_count()];
        for (k, &pi) in self.netlist.inputs().iter().enumerate() {
            nets[pi.index()] = cube.get(k);
        }
        let mut fanin_buf: Vec<Trit> = Vec::with_capacity(8);
        for &id in &self.order {
            let g = self.netlist.gate(id);
            let kind = g.kind();
            if kind == GateKind::Input || kind == GateKind::Dff {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(g.fanin().iter().map(|f| nets[f.index()]));
            nets[id.index()] = eval_trit(kind, &fanin_buf);
        }
        nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_bits::BitVec;
    use fbist_netlist::embedded;

    #[test]
    fn fully_specified_matches_packed() {
        use crate::PackedSimulator;
        let n = embedded::c17();
        let tsim = TritSimulator::new(&n).unwrap();
        let psim = PackedSimulator::new(&n).unwrap();
        for v in 0u64..32 {
            let p = BitVec::from_u64(5, v);
            let cube = Cube::from_pattern(&p);
            let trits = tsim.simulate_cube(&cube);
            let resp = &psim.simulate_patterns(std::slice::from_ref(&p))[0];
            for (i, t) in trits.iter().enumerate() {
                assert_eq!(t.to_bool(), Some(resp.get(i)), "pattern {v} output {i}");
            }
        }
    }

    #[test]
    fn x_propagates_when_undetermined() {
        let sim = TritSimulator::new(&embedded::majority()).unwrap();
        // a=1, b=X, c=X: majority could be 0 or 1
        let outs = sim.simulate_cube(&"XX1".parse().unwrap());
        assert_eq!(outs[0], Trit::X);
    }

    #[test]
    fn controlling_value_dominates_x() {
        let sim = TritSimulator::new(&embedded::majority()).unwrap();
        // a=0, b=0: majority is 0 regardless of c
        let outs = sim.simulate_cube(&"X00".parse().unwrap());
        assert_eq!(outs[0], Trit::Zero);
        assert_eq!(outs[1], Trit::One);
    }

    #[test]
    fn rejects_sequential() {
        assert!(TritSimulator::new(&embedded::johnson3()).is_err());
    }

    #[test]
    fn all_x_in_gives_x_out() {
        let sim = TritSimulator::new(&embedded::c17()).unwrap();
        let outs = sim.simulate_cube(&Cube::all_x(5));
        assert!(outs.iter().all(|&t| t == Trit::X));
    }
}
