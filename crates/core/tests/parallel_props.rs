//! Property tests for determinism-under-parallelism: random
//! `(profile, seed, τ, jobs)` tuples must produce a [`ReseedingReport`]
//! that is invariant in `jobs`.
//!
//! The differential suite in the workspace root sweeps every profile at a
//! fixed configuration; this file attacks the same contract from the other
//! side — few profiles, randomised everything else — so a job-dependent
//! code path gated on an unusual seed or τ cannot hide.

use fbist_genbench::{generate, profile};
use proptest::prelude::*;
use reseed_core::{FlowConfig, ReseedingFlow, TpgKind};

fn tuple() -> impl Strategy<Value = (&'static str, u64, usize, usize, usize)> {
    (
        prop_oneof![Just("tiny64"), Just("mid256")],
        1u64..1_000_000,
        0usize..32,
        prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        0usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn report_is_invariant_in_jobs((name, seed, tau, jobs, tpg_ix) in tuple()) {
        let tpg = [
            TpgKind::Adder,
            TpgKind::Subtracter,
            TpgKind::Multiplier,
            TpgKind::Lfsr,
            TpgKind::MultiPolyLfsr,
            TpgKind::Weighted,
        ][tpg_ix];
        let netlist = generate(&profile(name).unwrap(), seed);
        let flow = ReseedingFlow::new(&netlist).expect("genbench circuits are scan-ready");
        let base = FlowConfig::new(tpg).with_tau(tau).with_seed(seed);
        let serial = flow.run(&base.clone().with_jobs(1));
        let parallel = flow.run(&base.clone().with_jobs(jobs));
        prop_assert_eq!(
            &serial, &parallel,
            "profile {} seed {} tau {} jobs {} tpg {}",
            name, seed, tau, jobs, tpg
        );
        prop_assert!(serial.covers_all_target_faults());
    }
}
