//! Round-trips for the artifacts owned by `reseed-core` — the ATPG base,
//! the saturating first-detection artifact, and the cover report —
//! through real flow outputs and through property-generated reports.

use fbist_bits::BitVec;
use fbist_netlist::embedded;
use fbist_store::{decode_from_slice, encode_to_vec};
use fbist_tpg::Triplet;
use proptest::prelude::*;
use reseed_core::{
    AtpgBase, CachedFirstDetection, FlowConfig, InitialReseedingBuilder, ReseedingFlow,
    ReseedingReport, SelectedTriplet, TpgKind,
};

#[test]
fn real_atpg_base_round_trips() {
    let n = embedded::c17();
    let builder = InitialReseedingBuilder::new(&n).unwrap();
    let base = builder.atpg_base(&FlowConfig::new(TpgKind::Adder));
    let bytes = encode_to_vec(&base);
    let back: AtpgBase = decode_from_slice(&bytes).unwrap();
    // AtpgResult has no PartialEq — compare the fields the flow consumes
    assert_eq!(back.universe_size, base.universe_size);
    assert_eq!(back.target_faults, base.target_faults);
    assert_eq!(back.atpg.patterns, base.atpg.patterns);
    assert_eq!(back.atpg.total_faults, base.atpg.total_faults);
    assert_eq!(
        back.atpg.coverage().to_bits(),
        base.atpg.coverage().to_bits()
    );
    assert_eq!(encode_to_vec(&back), bytes, "re-encoding must be stable");
}

#[test]
fn real_first_detection_artifact_round_trips() {
    let n = embedded::c17();
    let builder = InitialReseedingBuilder::new(&n).unwrap();
    let config = FlowConfig::new(TpgKind::Adder);
    let base = builder.atpg_base(&config);
    let tpg = config.tpg.build(n.inputs().len());
    let (_, matrix) = builder.first_detection_matrix_for(
        &*tpg,
        &base.atpg.patterns,
        &base.target_faults,
        15,
        config.seed,
        1,
        config.matrix_build,
        config.simd_width,
    );
    let artifact = CachedFirstDetection {
        tau_max: 15,
        matrix,
    };
    let bytes = encode_to_vec(&artifact);
    let back: CachedFirstDetection = decode_from_slice(&bytes).unwrap();
    assert_eq!(back, artifact);
    assert_eq!(encode_to_vec(&back), bytes);
}

#[test]
fn real_cover_report_round_trips() {
    let n = embedded::c17();
    let flow = ReseedingFlow::new(&n).unwrap();
    for tau in [0usize, 7] {
        let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(tau));
        let bytes = encode_to_vec(&report);
        let back: ReseedingReport = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, report, "τ={tau}");
        assert_eq!(encode_to_vec(&back), bytes, "τ={tau}");
    }
}

/// splitmix64 — a deterministic field stream from one proptest seed (the
/// vendored proptest shim caps tuple strategies, so wide structs derive
/// their fields from a single `u64` instead).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn arbitrary_report(seed: u64, n_selected: usize, tau: usize) -> ReseedingReport {
    let mut s = seed;
    let selected = (0..n_selected)
        .map(|_| {
            let w = 1 + (splitmix(&mut s) % 100) as usize;
            let delta = [splitmix(&mut s), splitmix(&mut s)];
            let theta = [splitmix(&mut s), splitmix(&mut s)];
            SelectedTriplet {
                triplet: Triplet::new(
                    BitVec::from_words(w, &delta),
                    BitVec::from_words(w, &theta),
                    (splitmix(&mut s) % 5_000) as usize,
                ),
                necessary: splitmix(&mut s) & 1 == 1,
                new_faults: (splitmix(&mut s) % 5_000) as usize,
                test_length: 1 + (splitmix(&mut s) % 5_000) as usize,
            }
        })
        .collect();
    ReseedingReport {
        circuit: format!("ckt{}", splitmix(&mut s) % 1_000),
        tpg: ["add", "lfsr", "mplfsr"][(splitmix(&mut s) % 3) as usize].to_owned(),
        tau,
        selected,
        initial_triplets: (splitmix(&mut s) % 10_000) as usize,
        target_faults: (splitmix(&mut s) % 10_000) as usize,
        fault_universe: (splitmix(&mut s) % 20_000) as usize,
        residual: (
            (splitmix(&mut s) % 5_000) as usize,
            (splitmix(&mut s) % 5_000) as usize,
        ),
        reduction_iterations: (splitmix(&mut s) % 50) as usize,
        dominated_rows: (splitmix(&mut s) % 5_000) as usize,
        solution_optimal: splitmix(&mut s) & 1 == 1,
        solver_nodes: splitmix(&mut s),
        covered_faults: (splitmix(&mut s) % 10_000) as usize,
        atpg_coverage: (splitmix(&mut s) % 1_000_001) as f64 / 1.0e6,
    }
}

proptest! {
    #[test]
    fn arbitrary_cover_reports_round_trip(
        seed in any::<u64>(),
        n_selected in 0usize..12,
        tau in 0usize..1_000_000,
    ) {
        let report = arbitrary_report(seed, n_selected, tau);
        let bytes = encode_to_vec(&report);
        let back: ReseedingReport = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(encode_to_vec(&back), bytes);
    }
}
