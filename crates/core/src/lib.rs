//! Optimal reseeding via set covering — the DATE 2001 flow.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates. It implements the computation flow of the paper's
//! Figure 1:
//!
//! ```text
//!  ATPG (ATPGTS, F) ──► Initial Reseeding Builder ──► Detection Matrix
//!                                                          │
//!                              Matrix Reducer (essentiality + dominance)
//!                                                          │
//!                              Exact solver (LINGO stand-in) on residual
//!                                                          │
//!                      Reseeding solution N = necessary ∪ solver triplets
//! ```
//!
//! plus the trade-off machinery behind the paper's Figure 2 (sweeping the
//! evolution length `τ`) and a GATSBY-style genetic-algorithm baseline for
//! the Table 1 comparison.
//!
//! # Quickstart
//!
//! ```
//! use fbist_genbench::{generate, profile};
//! use reseed_core::{FlowConfig, ReseedingFlow, TpgKind};
//!
//! // a small synthetic circuit and an adder-accumulator TPG
//! let netlist = generate(&profile("tiny64").unwrap(), 1);
//! let config = FlowConfig::new(TpgKind::Adder).with_tau(15);
//! let report = ReseedingFlow::new(&netlist)?.run(&config);
//!
//! // the reseeding covers every ATPG-detected fault, with provably
//! // minimum triplet count
//! assert!(report.covers_all_target_faults());
//! assert!(report.solution_optimal);
//! assert!(report.triplet_count() <= report.initial_triplets);
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod builder;
mod config;
pub mod export;
mod flow;
pub mod gatsby;
mod report;
mod stage;
mod sweep;
mod verify;

pub use area::{rom_bits_per_triplet, solution_rom_bits, AreaModel};
pub use builder::{AtpgBase, InitialReseeding, InitialReseedingBuilder};
pub use config::{check_tau, parse_tau_list, FlowConfig, MatrixBuild, SweepEngine, TpgKind};
pub use fbist_bits::SimdWidth;
pub use fbist_setcover::{Backend, FirstDetectionMatrix};
pub use flow::ReseedingFlow;
pub use gatsby::{Gatsby, GatsbyConfig, GatsbyResult};
pub use report::{ReseedingReport, SelectedTriplet};
pub use stage::{
    atpg_stage_key, circuit_digest, cover_stage_key, first_detection_stage_key,
    sweep_request_digest, CachedFirstDetection, StageCache, StageStats, THROUGHPUT_KNOBS,
};
pub use sweep::{tradeoff_sweep, tradeoff_sweep_from_base, tradeoff_sweep_with, SweepPoint};
pub use verify::{verify_against, verify_report, Verification};
