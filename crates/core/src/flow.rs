//! The end-to-end reseeding flow (paper Figure 1).

use fbist_netlist::Netlist;
use fbist_setcover::{reduce_with, solve_with, ReductionEvent};
use fbist_sim::SimError;
use fbist_store::ArtifactStore;
use fbist_tpg::Triplet;

use crate::builder::{InitialReseeding, InitialReseedingBuilder};
use crate::config::FlowConfig;
use crate::report::{ReseedingReport, SelectedTriplet};
use crate::stage::StageCache;

/// The complete set-covering reseeding flow:
/// ATPG → initial reseeding → Detection Matrix → reduction → exact solve →
/// trimming → [`ReseedingReport`].
///
/// The flow is a DAG of keyed stages (`netlist → atpg → first-detection →
/// cover`) resolved through a [`StageCache`]. [`ReseedingFlow::new`]
/// attaches no store — every stage computes, exactly the historical
/// behaviour; [`ReseedingFlow::with_store`] answers stages from a
/// content-addressed [`ArtifactStore`] when their keyed inputs match,
/// byte-identically to computing them (`tests/store_equivalence.rs`).
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug)]
pub struct ReseedingFlow {
    builder: InitialReseedingBuilder,
    stages: StageCache,
}

impl ReseedingFlow {
    /// Creates a flow for a combinational netlist, with no artifact
    /// store: every stage computes.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying engines (sequential or
    /// invalid netlists).
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Ok(ReseedingFlow {
            builder: InitialReseedingBuilder::new(netlist)?,
            stages: StageCache::disabled(),
        })
    }

    /// Creates a flow whose stages read and populate `store`. A warm
    /// store answers the whole `run` from the `cover` artifact without
    /// simulating anything.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying engines (sequential or
    /// invalid netlists).
    pub fn with_store(netlist: &Netlist, store: ArtifactStore) -> Result<Self, SimError> {
        Ok(ReseedingFlow {
            builder: InitialReseedingBuilder::new(netlist)?,
            stages: StageCache::with_store(store),
        })
    }

    /// Access to the initial-reseeding builder (for callers that want the
    /// intermediate artefacts).
    pub fn builder(&self) -> &InitialReseedingBuilder {
        &self.builder
    }

    /// The stage cache fronting this flow's store (disabled for flows
    /// built with [`ReseedingFlow::new`]).
    pub fn stages(&self) -> &StageCache {
        &self.stages
    }

    /// Runs the full flow: answered from the `cover` artifact when the
    /// store holds one under this configuration's key, computed stage by
    /// stage (each stage checking the store first) otherwise.
    pub fn run(&self, config: &FlowConfig) -> ReseedingReport {
        if let Some(report) = self.stages.cover_get(self.builder.netlist(), config) {
            return report;
        }
        let initial = self.build_initial(config);
        let report = self.finish(config, &initial);
        self.stages
            .cover_put(self.builder.netlist(), config, &report);
        report
    }

    /// The initial reseeding via the stage DAG. Without a store this is
    /// [`InitialReseedingBuilder::build`] verbatim; with one, the `atpg`
    /// and `first-detection` stages resolve through the store and the
    /// matrix at `config.tau` falls out of the saturating
    /// first-detection artifact by thresholding — bit-identical either
    /// way (the engine-equivalence contract pinned by the sweep suites).
    fn build_initial(&self, config: &FlowConfig) -> InitialReseeding {
        if !self.stages.is_enabled() {
            return self.builder.build(config);
        }
        let base = self.stages.atpg_base(&self.builder, config);
        let tpg = config.tpg.build(self.builder.netlist().inputs().len());
        let (triplets, fdm) =
            self.stages
                .first_detection(&self.builder, &*tpg, &base, config, config.tau);
        InitialReseeding {
            triplets,
            matrix: fdm.at_tau(config.tau),
            target_faults: base.target_faults,
            universe_size: base.universe_size,
            atpg: base.atpg,
        }
    }

    /// Runs reduction, solving and trimming on a prebuilt initial
    /// reseeding (lets the τ-sweep reuse one ATPG run and one matrix
    /// build per τ).
    pub fn finish(&self, config: &FlowConfig, initial: &InitialReseeding) -> ReseedingReport {
        // ---- Matrix Reducer + solver (LINGO stand-in) -------------------
        let reduction = reduce_with(&initial.matrix, &config.solve.reducer, config.solve.backend);
        let solution = solve_with(&initial.matrix, &config.solve, &reduction);
        let dominated_rows = reduction
            .log
            .iter()
            .filter(|e| matches!(e, ReductionEvent::RowDominated { .. }))
            .count();

        // ---- order: necessary triplets first, then solver triplets ------
        let mut order: Vec<(usize, bool)> = Vec::new();
        for &r in solution.necessary() {
            order.push((r, true));
        }
        for &r in solution.solver_chosen() {
            order.push((r, false));
        }

        // ---- trimming & incremental accounting (paper §4) ---------------
        let tpg = config.tpg.build(self.builder.netlist().inputs().len());
        let fsim = self.builder.fault_simulator();
        let mut remaining_ids: Vec<fbist_fault::FaultId> =
            initial.target_faults.iter().map(|(id, _)| id).collect();
        let mut selected = Vec::with_capacity(order.len());
        let mut covered = 0usize;
        for (row, necessary) in order {
            let triplet = &initial.triplets[row];
            let ts = tpg.expand(triplet);
            let remaining = initial.target_faults.subset(&remaining_ids);
            let res = fsim.run(&ts, &remaining);
            let new_faults = res.detected_count();
            let (kept_triplet, test_length): (Triplet, usize) = if config.trim {
                let useful = res.useful_prefix_len();
                // a solver-selected triplet always adds coverage, but be
                // defensive: keep at least pattern 0
                let len = useful.max(1);
                (triplet.with_tau(len - 1), len)
            } else {
                (triplet.clone(), ts.len())
            };
            covered += new_faults;
            // drop the newly covered faults from the remaining list
            let mut next_remaining = Vec::with_capacity(remaining_ids.len() - new_faults);
            for (sub, &orig) in remaining_ids.iter().enumerate() {
                if !res.detected.get(sub) {
                    next_remaining.push(orig);
                }
            }
            remaining_ids = next_remaining;
            selected.push(SelectedTriplet {
                triplet: kept_triplet,
                necessary,
                new_faults,
                test_length,
            });
        }

        ReseedingReport {
            circuit: self.builder.netlist().name().to_owned(),
            tpg: config.tpg.name().to_owned(),
            tau: config.tau,
            selected,
            initial_triplets: initial.triplet_count(),
            target_faults: initial.target_faults.len(),
            fault_universe: initial.universe_size,
            residual: solution.residual_size(),
            reduction_iterations: solution.reduction_iterations(),
            dominated_rows,
            solution_optimal: solution.is_optimal(),
            solver_nodes: solution.solver_nodes(),
            covered_faults: covered,
            atpg_coverage: initial.atpg.coverage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpgKind;
    use fbist_genbench::{generate, profile};
    use fbist_netlist::embedded;

    #[test]
    fn c17_flow_covers_everything_minimally() {
        let n = embedded::c17();
        let flow = ReseedingFlow::new(&n).unwrap();
        let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(7));
        assert!(report.covers_all_target_faults());
        assert!(report.solution_optimal);
        assert!(report.triplet_count() >= 1);
        assert!(report.triplet_count() <= report.initial_triplets);
        assert!(report.test_length() >= report.triplet_count());
    }

    #[test]
    fn bigger_tau_gives_fewer_or_equal_triplets_usually() {
        // the Figure-2 monotonicity: more evolution → denser rows → the
        // optimal cover cannot grow beyond the τ=0 optimum on c17
        let n = embedded::c17();
        let flow = ReseedingFlow::new(&n).unwrap();
        let k0 = flow
            .run(&FlowConfig::new(TpgKind::Adder).with_tau(0))
            .triplet_count();
        let k31 = flow
            .run(&FlowConfig::new(TpgKind::Adder).with_tau(31))
            .triplet_count();
        assert!(k31 <= k0, "{k31} > {k0}");
    }

    #[test]
    fn trimming_reduces_or_keeps_test_length() {
        let p = profile("tiny64").unwrap();
        let n = generate(&p, 2);
        let flow = ReseedingFlow::new(&n).unwrap();
        let trimmed = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(15));
        let full = flow.run(
            &FlowConfig::new(TpgKind::Adder)
                .with_tau(15)
                .with_trim(false),
        );
        assert!(trimmed.test_length() <= full.test_length());
        assert_eq!(trimmed.triplet_count(), full.triplet_count());
        assert!(trimmed.covers_all_target_faults());
        assert!(full.covers_all_target_faults());
    }

    #[test]
    fn all_tpg_kinds_complete_the_flow() {
        let n = embedded::c17();
        let flow = ReseedingFlow::new(&n).unwrap();
        for kind in [
            TpgKind::Adder,
            TpgKind::Subtracter,
            TpgKind::Multiplier,
            TpgKind::Lfsr,
            TpgKind::MultiPolyLfsr,
            TpgKind::Weighted,
        ] {
            let report = flow.run(&FlowConfig::new(kind).with_tau(7));
            assert!(report.covers_all_target_faults(), "{kind}");
        }
    }

    #[test]
    fn synthetic_circuit_flow_and_table2_fields() {
        let p = profile("tiny64").unwrap();
        let n = generate(&p, 5);
        let flow = ReseedingFlow::new(&n).unwrap();
        let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(31));
        assert!(report.covers_all_target_faults());
        assert_eq!(
            report.triplet_count(),
            report.necessary_count() + report.solver_count()
        );
        assert!(report.fault_universe >= report.target_faults);
        assert!(report.reduction_iterations >= 1);
        assert!(report.to_string().contains(&p.name));
    }

    #[test]
    fn necessary_triplets_come_first() {
        let p = profile("tiny64").unwrap();
        let n = generate(&p, 3);
        let flow = ReseedingFlow::new(&n).unwrap();
        let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(15));
        let first_solver = report.selected.iter().position(|t| !t.necessary);
        if let Some(pos) = first_solver {
            assert!(
                report.selected[pos..].iter().all(|t| !t.necessary),
                "necessary triplets must precede solver triplets"
            );
        }
    }

    #[test]
    fn every_selected_triplet_contributes() {
        // minimality implies every triplet covers at least one fault no
        // earlier triplet covered (the paper's Definition of minimal)
        let n = embedded::c17();
        let flow = ReseedingFlow::new(&n).unwrap();
        let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(7));
        for (i, t) in report.selected.iter().enumerate() {
            assert!(t.new_faults > 0, "triplet {i} adds nothing");
        }
    }
}
