//! Exporting reseeding solutions.
//!
//! A reseeding solution ultimately becomes the contents of a small on-chip
//! ROM (the paper's area-overhead object). This module serialises a
//! [`ReseedingReport`] into the two formats a downstream flow needs:
//!
//! * [`to_csv`] — human/tool readable table of the triplets;
//! * [`to_rom_image`] — the packed seed ROM as hex words, one triplet per
//!   line, `δ · θ · τ` fields concatenated LSB-first exactly as a seed
//!   decompressor would read them.

use fbist_bits::BitVec;

use crate::report::ReseedingReport;

/// Serialises the solution as CSV:
/// `index,kind,delta_hex,theta_hex,tau,new_faults,test_length`.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use reseed_core::{export, FlowConfig, ReseedingFlow, TpgKind};
///
/// let flow = ReseedingFlow::new(&embedded::c17())?;
/// let report = flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(7));
/// let csv = export::to_csv(&report);
/// assert!(csv.starts_with("index,kind,delta,theta,tau,new_faults,test_length"));
/// assert_eq!(csv.lines().count(), 1 + report.triplet_count());
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
pub fn to_csv(report: &ReseedingReport) -> String {
    let mut out = String::from("index,kind,delta,theta,tau,new_faults,test_length\n");
    for (i, t) in report.selected.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{:x},{:x},{},{},{}\n",
            if t.necessary { "necessary" } else { "solver" },
            t.triplet.delta(),
            t.triplet.theta(),
            t.triplet.tau(),
            t.new_faults,
            t.test_length
        ));
    }
    out
}

/// Serialises the seed ROM: one hex word per line, each the concatenation
/// `τ ++ θ ++ δ` (δ in the least-significant bits), every line
/// `2·w + tau_bits` bits wide, where `tau_bits` accommodates the largest
/// `τ` in the solution (minimum 1 bit). A header comment records the
/// geometry so the image is self-describing.
///
/// Returns the empty ROM header for an empty solution.
pub fn to_rom_image(report: &ReseedingReport) -> String {
    let width = report
        .selected
        .first()
        .map(|t| t.triplet.width())
        .unwrap_or(0);
    let max_tau = report
        .selected
        .iter()
        .map(|t| t.triplet.tau())
        .max()
        .unwrap_or(0);
    let tau_bits = (usize::BITS - max_tau.leading_zeros()).max(1) as usize;
    let word_bits = 2 * width + tau_bits;
    let mut out = format!(
        "# seed ROM: {} words x {} bits (delta[{width}] | theta[{width}] | tau[{tau_bits}])\n",
        report.selected.len(),
        word_bits
    );
    for t in &report.selected {
        let tau_field = BitVec::from_u64(tau_bits, t.triplet.tau() as u64);
        let word = t
            .triplet
            .delta()
            .concat(t.triplet.theta())
            .concat(&tau_field);
        out.push_str(&format!("{word:x}\n"));
    }
    out
}

/// Parses a ROM image produced by [`to_rom_image`] back into
/// `(delta, theta, tau)` triples — the decompressor side, used for
/// round-trip validation.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_rom_image(image: &str) -> Result<Vec<(BitVec, BitVec, usize)>, String> {
    let mut lines = image.lines();
    let header = lines.next().ok_or("empty image")?;
    // header: "# seed ROM: N words x B bits (delta[W] | theta[W] | tau[T])"
    let w: usize = header
        .split("delta[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .and_then(|s| s.parse().ok())
        .ok_or("malformed header: missing delta width")?;
    let tau_bits: usize = header
        .split("tau[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .and_then(|s| s.parse().ok())
        .ok_or("malformed header: missing tau width")?;
    let word_bits = 2 * w + tau_bits;
    let mut out = Vec::new();
    for (no, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut word = BitVec::zeros(word_bits);
        let mut bit = 0usize;
        for c in line.chars().rev() {
            let nibble = c
                .to_digit(16)
                .ok_or(format!("line {}: bad hex {c:?}", no + 2))?;
            for k in 0..4 {
                if bit + k < word_bits && (nibble >> k) & 1 == 1 {
                    word.set(bit + k, true);
                }
            }
            bit += 4;
        }
        let mut delta = BitVec::zeros(w);
        let mut theta = BitVec::zeros(w);
        let mut tau = 0usize;
        for i in 0..w {
            delta.set(i, word.get(i));
            theta.set(i, word.get(w + i));
        }
        for i in 0..tau_bits {
            if word.get(2 * w + i) {
                tau |= 1 << i;
            }
        }
        out.push((delta, theta, tau));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, TpgKind};
    use crate::flow::ReseedingFlow;
    use fbist_netlist::embedded;

    fn sample_report() -> ReseedingReport {
        let flow = ReseedingFlow::new(&embedded::c17()).unwrap();
        flow.run(&FlowConfig::new(TpgKind::Adder).with_tau(7))
    }

    #[test]
    fn csv_row_per_triplet() {
        let r = sample_report();
        let csv = to_csv(&r);
        assert_eq!(csv.lines().count(), 1 + r.triplet_count());
        assert!(csv.contains("necessary") || csv.contains("solver"));
    }

    #[test]
    fn rom_image_roundtrip() {
        let r = sample_report();
        let image = to_rom_image(&r);
        let parsed = parse_rom_image(&image).unwrap();
        assert_eq!(parsed.len(), r.triplet_count());
        for (got, sel) in parsed.iter().zip(&r.selected) {
            assert_eq!(&got.0, sel.triplet.delta(), "delta");
            assert_eq!(&got.1, sel.triplet.theta(), "theta");
            assert_eq!(got.2, sel.triplet.tau(), "tau");
        }
    }

    #[test]
    fn rom_header_is_self_describing() {
        let r = sample_report();
        let image = to_rom_image(&r);
        let header = image.lines().next().unwrap();
        assert!(header.contains("delta[5]"), "{header}");
        assert!(header.contains(&format!("{} words", r.triplet_count())));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_rom_image("").is_err());
        assert!(parse_rom_image(
            "# seed ROM: 1 words x 11 bits (delta[5] | theta[5] | tau[1])\nzz\n"
        )
        .is_err());
    }
}
