//! The reseedings-vs-test-length trade-off (paper Figure 2).

use fbist_netlist::Netlist;
use fbist_sim::SimError;

use crate::builder::InitialReseedingBuilder;
use crate::config::FlowConfig;
use crate::flow::ReseedingFlow;
use crate::report::ReseedingReport;

/// One point of the trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Evolution length used for the initial triplets.
    pub tau: usize,
    /// Triplets in the optimal solution (`#Reseedings`).
    pub triplets: usize,
    /// Global (trimmed) test length.
    pub test_length: usize,
    /// ROM bits for the solution.
    pub rom_bits: usize,
    /// The full report for this point.
    pub report: ReseedingReport,
}

/// Sweeps the evolution length `τ` and returns one optimal reseeding per
/// value — the data behind the paper's Figure 2 (on s1238 with the adder
/// accumulator, raising the test length from 5 427 to 15 551 drops the
/// solution from 11 to 2 triplets).
///
/// The ATPG run is shared across all τ values; per τ only the Detection
/// Matrix and the covering computation are redone, which is exactly the
/// efficiency argument §4 makes against simulation-driven methods.
///
/// The τ points are independent, so they evaluate in parallel on the
/// workspace pool (`config.jobs`; `0` = global default). Each point's RNG
/// stream is derived from `config.seed` alone — never from the worker that
/// happens to compute it — so the curve is bit-identical for every job
/// count, and points come back in the order of `taus`.
///
/// # Errors
///
/// Propagates [`SimError`] from flow construction.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use reseed_core::{tradeoff_sweep, FlowConfig, TpgKind};
///
/// let curve = tradeoff_sweep(
///     &embedded::c17(),
///     &FlowConfig::new(TpgKind::Adder),
///     &[0, 7, 31],
/// )?;
/// assert_eq!(curve.len(), 3);
/// // triplet counts never increase as τ grows
/// assert!(curve.windows(2).all(|w| w[1].triplets <= w[0].triplets));
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
pub fn tradeoff_sweep(
    netlist: &Netlist,
    config: &FlowConfig,
    taus: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    let flow = ReseedingFlow::new(netlist)?;
    // one shared ATPG run
    let base = flow.builder().build(config);
    let tpg = config.tpg.build(netlist.inputs().len());
    let out = mini_rayon::par_map_indexed(config.jobs, taus.len(), |i| {
        let tau = taus[i];
        let initial = rebuild_at_tau(flow.builder(), &base, &tpg, tau, config);
        let cfg = config.clone().with_tau(tau);
        let report = flow.finish(&cfg, &initial);
        SweepPoint {
            tau,
            triplets: report.triplet_count(),
            test_length: report.test_length(),
            rom_bits: report.rom_bits(),
            report,
        }
    });
    Ok(out)
}

fn rebuild_at_tau(
    builder: &InitialReseedingBuilder,
    base: &crate::builder::InitialReseeding,
    tpg: &dyn fbist_tpg::PatternGenerator,
    tau: usize,
    config: &FlowConfig,
) -> crate::builder::InitialReseeding {
    let (triplets, matrix) = builder.matrix_for(
        tpg,
        &base.atpg.patterns,
        &base.target_faults,
        tau,
        config.seed,
        config.jobs,
        config.matrix_build,
    );
    crate::builder::InitialReseeding {
        triplets,
        matrix,
        target_faults: base.target_faults.clone(),
        universe_size: base.universe_size,
        atpg: base.atpg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpgKind;
    use fbist_genbench::{generate, profile};

    #[test]
    fn sweep_is_monotone_in_triplets() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder), &[0, 3, 15, 63]).unwrap();
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(
                w[1].triplets <= w[0].triplets,
                "triplets must not increase with τ: {} → {}",
                w[0].triplets,
                w[1].triplets
            );
        }
        for p in &curve {
            assert!(p.report.covers_all_target_faults(), "τ={}", p.tau);
        }
    }

    #[test]
    fn tau_zero_equals_atpg_length() {
        // with τ=0 and trimming, every selected triplet contributes exactly
        // one pattern → test length = #triplets
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder), &[0]).unwrap();
        assert_eq!(curve[0].test_length, curve[0].triplets);
    }

    #[test]
    fn sweep_points_carry_reports() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Lfsr), &[7]).unwrap();
        assert_eq!(curve[0].report.tau, 7);
        assert_eq!(curve[0].rom_bits, curve[0].report.rom_bits());
    }

    #[test]
    fn curve_invariant_in_backend() {
        use fbist_setcover::Backend;
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [0, 7, 31];
        let dense = tradeoff_sweep(
            &n,
            &FlowConfig::new(TpgKind::Adder).with_backend(Backend::Dense),
            &taus,
        )
        .unwrap();
        let sparse = tradeoff_sweep(
            &n,
            &FlowConfig::new(TpgKind::Adder).with_backend(Backend::Sparse),
            &taus,
        )
        .unwrap();
        assert_eq!(dense, sparse, "backend must never change the curve");
    }

    #[test]
    fn curve_invariant_in_jobs() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [0, 3, 7, 15];
        let serial =
            tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(1), &taus).unwrap();
        for jobs in [2, 8] {
            let par = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(jobs), &taus)
                .unwrap();
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }
}
