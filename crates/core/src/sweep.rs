//! The reseedings-vs-test-length trade-off (paper Figure 2).
//!
//! # One simulation, every τ: the first-detection derivation
//!
//! A sweep point at evolution length `τ` needs the Detection Matrix whose
//! cell `(i, j)` says "triplet `i`'s `τ + 1`-pattern expansion detects
//! fault `j`". Historically every point re-ran a full fault simulation
//! ([`SweepEngine::PerTau`]); the [`SweepEngine::FirstDetection`] engine
//! replaces all of them with **one** pass at `τ_max = max(taus)`:
//!
//! 1. Pattern generators expand *prefix-stably*: pattern `k` of a
//!    triplet's stream depends only on `(δ, θ, k)` — `τ` just says where
//!    the stream stops (the [`PatternGenerator`] contract). So the
//!    `τ`-expansion is exactly the first `τ + 1` patterns of the
//!    `τ_max`-expansion.
//! 2. Detection is a monotone OR over a row's patterns, so "detected at
//!    `τ`" ⇔ "the *earliest* detecting pattern index is `≤ τ`".
//! 3. One simulation at `τ_max` recording that earliest index per
//!    `(triplet, fault)` pair (free from the detection word's lowest set
//!    lane — [`FaultSimulator::first_detections`]) therefore determines
//!    every `τ ≤ τ_max` matrix by thresholding:
//!    [`FirstDetectionMatrix::at_tau`]. No re-simulation, and *nothing to
//!    approximate* — the thresholded matrix is the simulated one, bit for
//!    bit.
//!
//! Everything per-point after the matrix (triplet `τ` fields, reduction,
//! solving, trimming) runs from per-point configuration and seeds exactly
//! as in the per-τ engine, so the whole [`SweepPoint`] — report included —
//! is bit-identical between engines, for every profile × TPG × jobs ×
//! backend × matrix-build combination (`tests/sweep_equivalence.rs`).
//!
//! [`SweepEngine::PerTau`]: crate::SweepEngine::PerTau
//! [`SweepEngine::FirstDetection`]: crate::SweepEngine::FirstDetection
//! [`PatternGenerator`]: fbist_tpg::PatternGenerator
//! [`FaultSimulator::first_detections`]: fbist_fault::FaultSimulator::first_detections
//! [`FirstDetectionMatrix::at_tau`]: fbist_setcover::FirstDetectionMatrix::at_tau

use fbist_netlist::Netlist;
use fbist_sim::SimError;

use crate::builder::{AtpgBase, InitialReseedingBuilder};
use crate::config::{FlowConfig, SweepEngine};
use crate::flow::ReseedingFlow;
use crate::report::ReseedingReport;

/// One point of the trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Evolution length used for the initial triplets.
    pub tau: usize,
    /// Triplets in the optimal solution (`#Reseedings`).
    pub triplets: usize,
    /// Global (trimmed) test length.
    pub test_length: usize,
    /// ROM bits for the solution.
    pub rom_bits: usize,
    /// The full report for this point.
    pub report: ReseedingReport,
}

/// Sweeps the evolution length `τ` and returns one optimal reseeding per
/// value — the data behind the paper's Figure 2 (on s1238 with the adder
/// accumulator, raising the test length from 5 427 to 15 551 drops the
/// solution from 11 to 2 triplets).
///
/// The ATPG run is shared across all τ values; with the default
/// [`SweepEngine::Auto`] the Detection-Matrix fault simulation is shared
/// too — one first-detection pass at `max(taus)` from which every point's
/// matrix is derived by thresholding (see the [module docs](self)).
/// Duplicate τ values are computed once and share their point.
///
/// The per-point work is independent, so points evaluate in parallel on
/// the workspace pool (`config.jobs`; `0` = global default). Each point's
/// RNG streams are derived from `config.seed` alone — never from the
/// worker that happens to compute it, nor from the engine — so the curve
/// is bit-identical for every job count and engine, and points come back
/// in the order of `taus`.
///
/// # Errors
///
/// Propagates [`SimError`] from flow construction.
///
/// # Panics
///
/// Panics if a τ exceeds [`FlowConfig::MAX_TAU`] (front ends validate
/// before calling).
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use reseed_core::{tradeoff_sweep, FlowConfig, TpgKind};
///
/// let curve = tradeoff_sweep(
///     &embedded::c17(),
///     &FlowConfig::new(TpgKind::Adder),
///     &[0, 7, 31],
/// )?;
/// assert_eq!(curve.len(), 3);
/// // what the flow guarantees at every point: the solution covers every
/// // target fault (triplet counts usually shrink as τ grows, but the
/// // greedy/local-search solver does not promise monotonicity)
/// assert!(curve.iter().all(|p| p.report.covers_all_target_faults()));
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
pub fn tradeoff_sweep(
    netlist: &Netlist,
    config: &FlowConfig,
    taus: &[usize],
) -> Result<Vec<SweepPoint>, SimError> {
    let flow = ReseedingFlow::new(netlist)?;
    Ok(tradeoff_sweep_with(&flow, config, taus))
}

/// [`tradeoff_sweep`] on a prebuilt flow — lets callers reuse the flow's
/// simulators across sweeps and read its builder counters afterwards
/// (`matrix_sim_passes`, lane occupancy). Runs the shared ATPG and
/// delegates to [`tradeoff_sweep_from_base`].
pub fn tradeoff_sweep_with(
    flow: &ReseedingFlow,
    config: &FlowConfig,
    taus: &[usize],
) -> Vec<SweepPoint> {
    sweep_cached(flow, None, config, taus)
}

/// The sweep on a prebuilt [`AtpgBase`]: everything after the shared,
/// τ-independent ATPG run. Callers holding the base already (the
/// `figure2`/bench pipelines, repeated sweeps over TPG kinds, …) skip
/// re-running ATPG entirely; [`tradeoff_sweep`] is this plus one
/// `atpg` stage resolution.
pub fn tradeoff_sweep_from_base(
    flow: &ReseedingFlow,
    base: &AtpgBase,
    config: &FlowConfig,
    taus: &[usize],
) -> Vec<SweepPoint> {
    sweep_cached(flow, Some(base), config, taus)
}

/// The one sweep path, cover-cache-first:
///
/// 1. each unique τ is looked up in the store as a `cover` artifact —
///    warm points decode without touching ATPG or the simulator;
/// 2. only the *missing* τ values are computed, through the usual
///    engines (the shared first-detection pass now resolving through the
///    `first-detection` stage, so even a cover-cold sweep can skip its
///    simulation if an earlier run saturated the matrix artifact);
/// 3. computed covers are written back, then every point — cached or
///    computed — redistributes onto the input τ list.
///
/// The ATPG stage resolves lazily: a fully cover-warm sweep never runs
/// ATPG at all (the acceptance criterion behind `fbist serve`'s warm
/// latency). With no store attached every lookup misses and this is the
/// historical two-engine sweep, bit for bit.
fn sweep_cached(
    flow: &ReseedingFlow,
    prebuilt: Option<&AtpgBase>,
    config: &FlowConfig,
    taus: &[usize],
) -> Vec<SweepPoint> {
    if taus.is_empty() {
        return Vec::new();
    }
    let mut uniq: Vec<usize> = taus.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let stages = flow.stages();
    let netlist = flow.builder().netlist();
    let mut slots: Vec<Option<SweepPoint>> = uniq
        .iter()
        .map(|&tau| {
            stages
                .cover_get(netlist, &config.clone().with_tau(tau))
                .map(|report| point_from(tau, report))
        })
        .collect();
    let missing: Vec<usize> = uniq
        .iter()
        .zip(&slots)
        .filter(|(_, slot)| slot.is_none())
        .map(|(&tau, _)| tau)
        .collect();
    if !missing.is_empty() {
        let computed_base;
        let base = match prebuilt {
            Some(base) => base,
            None => {
                computed_base = stages.atpg_base(flow.builder(), config);
                &computed_base
            }
        };
        let first_detection = match config.sweep_engine {
            SweepEngine::PerTau => false,
            SweepEngine::FirstDetection => true,
            // a single-point sweep has nothing to amortise the shared pass
            // over; with ≥ 2 distinct τ the shared pass always wins (it
            // costs one build at max(taus), which per-τ pays for its
            // largest point alone). With a store attached the shared pass
            // wins even for one point: it seeds the saturating
            // first-detection artifact that answers every later τ.
            SweepEngine::Auto => missing.len() >= 2 || stages.is_enabled(),
        };
        let computed = if first_detection {
            first_detection_sweep(flow, base, config, &missing)
        } else {
            per_tau_sweep(flow, base, config, &missing)
        };
        for point in computed {
            stages.cover_put(netlist, &config.clone().with_tau(point.tau), &point.report);
            let i = uniq
                .binary_search(&point.tau)
                .expect("computed τ comes from uniq");
            slots[i] = Some(point);
        }
    }
    // one point per *input* τ, in input order; duplicates share their
    // unique point's result (the computation is deterministic, so this is
    // indistinguishable from recomputing — minus the wasted work). Each
    // unique point is moved into its τ's last occurrence, so a
    // duplicate-free list — the common case — copies nothing.
    let idx_of = |tau: &usize| uniq.binary_search(tau).expect("uniq contains every τ");
    let mut remaining = vec![0usize; uniq.len()];
    for tau in taus {
        remaining[idx_of(tau)] += 1;
    }
    taus.iter()
        .map(|tau| {
            let i = idx_of(tau);
            remaining[i] -= 1;
            if remaining[i] == 0 {
                slots[i].take().expect("each slot is taken exactly once")
            } else {
                slots[i].clone().expect("slot still occupied")
            }
        })
        .collect()
}

/// The historical engine: one Detection-Matrix simulation per τ point,
/// all sharing one ATPG run (already the efficiency argument §4 makes
/// against simulation-driven methods). `uniq` is the sorted,
/// deduplicated τ list.
fn per_tau_sweep(
    flow: &ReseedingFlow,
    base: &AtpgBase,
    config: &FlowConfig,
    uniq: &[usize],
) -> Vec<SweepPoint> {
    let tpg = config.tpg.build(flow.builder().netlist().inputs().len());
    mini_rayon::par_map_indexed(config.jobs, uniq.len(), |i| {
        let tau = uniq[i];
        let initial = rebuild_at_tau(flow.builder(), base, &tpg, tau, config);
        let cfg = config.clone().with_tau(tau);
        let report = flow.finish(&cfg, &initial);
        point_from(tau, report)
    })
}

/// The shared-simulation engine: one first-detection pass at `max(taus)`,
/// every point's matrix derived by thresholding (module docs). `uniq` is
/// the sorted, deduplicated τ list.
fn first_detection_sweep(
    flow: &ReseedingFlow,
    base: &AtpgBase,
    config: &FlowConfig,
    uniq: &[usize],
) -> Vec<SweepPoint> {
    let Some(&tau_max) = uniq.last() else {
        return Vec::new();
    };
    let builder = flow.builder();
    // unlike the per-τ engine, one shared fault-simulation pass —
    // resolved through the first-detection stage, so a store whose
    // artifact already saturates τ_max skips the pass entirely
    let tpg = config.tpg.build(builder.netlist().inputs().len());
    let (triplets_max, fdm) = flow
        .stages()
        .first_detection(builder, &*tpg, base, config, tau_max);
    mini_rayon::par_map_indexed(config.jobs, uniq.len(), |i| {
        let tau = uniq[i];
        // the τ-point's initial reseeding, derived instead of re-simulated:
        // same δ/θ (the RNG prologue never reads τ), same matrix (prefix
        // property + thresholding)
        let initial = crate::builder::InitialReseeding {
            triplets: triplets_max.iter().map(|t| t.with_tau(tau)).collect(),
            matrix: fdm.at_tau(tau),
            target_faults: base.target_faults.clone(),
            universe_size: base.universe_size,
            atpg: base.atpg.clone(),
        };
        let cfg = config.clone().with_tau(tau);
        let report = flow.finish(&cfg, &initial);
        point_from(tau, report)
    })
}

fn point_from(tau: usize, report: ReseedingReport) -> SweepPoint {
    SweepPoint {
        tau,
        triplets: report.triplet_count(),
        test_length: report.test_length(),
        rom_bits: report.rom_bits(),
        report,
    }
}

fn rebuild_at_tau(
    builder: &InitialReseedingBuilder,
    base: &AtpgBase,
    tpg: &dyn fbist_tpg::PatternGenerator,
    tau: usize,
    config: &FlowConfig,
) -> crate::builder::InitialReseeding {
    let (triplets, matrix) = builder.matrix_for(
        tpg,
        &base.atpg.patterns,
        &base.target_faults,
        tau,
        config.seed,
        config.jobs,
        config.matrix_build,
        config.simd_width,
    );
    crate::builder::InitialReseeding {
        triplets,
        matrix,
        target_faults: base.target_faults.clone(),
        universe_size: base.universe_size,
        atpg: base.atpg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpgKind;
    use fbist_genbench::{generate, profile};

    #[test]
    fn sweep_covers_all_faults_at_every_point() {
        // what the flow guarantees per point. (On this circuit the curve
        // happens to be monotone too, but that is an empirical property of
        // the instance — the greedy/local-search solver does not guarantee
        // it, so it is no longer asserted here; see
        // `engine_choice_never_changes_the_curve` for the determinism pin.)
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder), &[0, 3, 15, 63]).unwrap();
        assert_eq!(curve.len(), 4);
        for p in &curve {
            assert!(p.report.covers_all_target_faults(), "τ={}", p.tau);
        }
    }

    #[test]
    fn greedy_curve_can_be_non_monotone_but_always_covers() {
        // Documented counterexample for the old "triplets never increase
        // with τ" claim: optimal covers are monotone (a τ-cover is also a
        // τ'-cover for τ' > τ, rows only gain coverage), but the fallback
        // heuristics promise no such thing. Under the Chvátal greedy
        // engine this instance steps UP from 10 to 11 triplets between
        // τ = 17 and τ = 18. Deterministic, so pinned exactly; if a
        // solver change moves the counterexample, find another instead of
        // re-asserting monotonicity — the guaranteed invariant is full
        // coverage, nothing more.
        use fbist_netlist::full_scan;
        use fbist_setcover::{Engine, SolveConfig};
        let n = generate(&profile("tiny64").unwrap().scaled(0.35), 4);
        let n = if n.is_combinational() {
            n
        } else {
            full_scan(&n).into_combinational()
        };
        let mut cfg = FlowConfig::new(TpgKind::Adder);
        cfg.solve = SolveConfig {
            engine: Engine::Greedy,
            ..SolveConfig::default()
        };
        let curve = tradeoff_sweep(&n, &cfg, &[17, 18]).unwrap();
        assert_eq!(
            (curve[0].triplets, curve[1].triplets),
            (10, 11),
            "known non-monotone greedy step moved — update the counterexample"
        );
        for p in &curve {
            assert!(p.report.covers_all_target_faults(), "τ={}", p.tau);
        }
    }

    #[test]
    fn tau_zero_equals_atpg_length() {
        // with τ=0 and trimming, every selected triplet contributes exactly
        // one pattern → test length = #triplets
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder), &[0]).unwrap();
        assert_eq!(curve[0].test_length, curve[0].triplets);
    }

    #[test]
    fn sweep_points_carry_reports() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let curve = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Lfsr), &[7]).unwrap();
        assert_eq!(curve[0].report.tau, 7);
        assert_eq!(curve[0].rom_bits, curve[0].report.rom_bits());
    }

    #[test]
    fn curve_invariant_in_backend() {
        use fbist_setcover::Backend;
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [0, 7, 31];
        let dense = tradeoff_sweep(
            &n,
            &FlowConfig::new(TpgKind::Adder).with_backend(Backend::Dense),
            &taus,
        )
        .unwrap();
        let sparse = tradeoff_sweep(
            &n,
            &FlowConfig::new(TpgKind::Adder).with_backend(Backend::Sparse),
            &taus,
        )
        .unwrap();
        assert_eq!(dense, sparse, "backend must never change the curve");
    }

    #[test]
    fn curve_invariant_in_jobs() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [0, 3, 7, 15];
        let serial =
            tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(1), &taus).unwrap();
        for jobs in [2, 8] {
            let par = tradeoff_sweep(&n, &FlowConfig::new(TpgKind::Adder).with_jobs(jobs), &taus)
                .unwrap();
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn engine_choice_never_changes_the_curve() {
        // duplicated and unsorted τ values exercise the dedup/reorder path
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [15, 0, 3, 3, 15];
        let curve = |engine: SweepEngine| {
            tradeoff_sweep(
                &n,
                &FlowConfig::new(TpgKind::Adder).with_sweep_engine(engine),
                &taus,
            )
            .unwrap()
        };
        let per_tau = curve(SweepEngine::PerTau);
        assert_eq!(per_tau.len(), taus.len());
        assert_eq!(per_tau[0], per_tau[4], "duplicate τ points are identical");
        assert_eq!(
            per_tau,
            curve(SweepEngine::FirstDetection),
            "first-detection curve differs"
        );
        assert_eq!(per_tau, curve(SweepEngine::Auto), "auto curve differs");
    }

    #[test]
    fn first_detection_runs_one_simulation_pass() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let taus = [0, 3, 7, 15];
        let flow = ReseedingFlow::new(&n).unwrap();
        let fd = tradeoff_sweep_with(
            &flow,
            &FlowConfig::new(TpgKind::Adder).with_sweep_engine(SweepEngine::FirstDetection),
            &taus,
        );
        assert_eq!(
            flow.builder().matrix_sim_passes(),
            1,
            "first-detection must simulate exactly once"
        );
        flow.builder().reset_matrix_sim_passes();
        let pt = tradeoff_sweep_with(
            &flow,
            &FlowConfig::new(TpgKind::Adder).with_sweep_engine(SweepEngine::PerTau),
            &taus,
        );
        assert_eq!(
            flow.builder().matrix_sim_passes(),
            taus.len() as u64,
            "per-τ pays one pass per point"
        );
        assert_eq!(fd, pt);
    }

    #[test]
    fn auto_uses_shared_pass_only_for_multi_point_sweeps() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        let flow = ReseedingFlow::new(&n).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder);
        // single distinct τ (even duplicated): per-τ path, and the
        // duplicate shares its point — one pass total
        let _ = tradeoff_sweep_with(&flow, &cfg, &[7, 7]);
        assert_eq!(flow.builder().matrix_sim_passes(), 1);
        flow.builder().reset_matrix_sim_passes();
        // two distinct τ: the shared pass
        let _ = tradeoff_sweep_with(&flow, &cfg, &[7, 15]);
        assert_eq!(flow.builder().matrix_sim_passes(), 1);
    }

    #[test]
    fn empty_tau_list_yields_empty_curve() {
        let n = generate(&profile("tiny64").unwrap(), 4);
        for engine in [
            SweepEngine::PerTau,
            SweepEngine::FirstDetection,
            SweepEngine::Auto,
        ] {
            let curve = tradeoff_sweep(
                &n,
                &FlowConfig::new(TpgKind::Adder).with_sweep_engine(engine),
                &[],
            )
            .unwrap();
            assert!(curve.is_empty(), "{engine}");
        }
    }
}
