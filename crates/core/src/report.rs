//! The reseeding report — everything Tables 1 and 2 need.

use std::fmt;

use fbist_tpg::Triplet;

/// One selected triplet with its trimmed evolution length and incremental
/// coverage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedTriplet {
    /// The triplet, with `τ` trimmed to its useful prefix when trimming is
    /// enabled.
    pub triplet: Triplet,
    /// `true` if forced by essentiality ("necessary"), `false` if chosen by
    /// the solver.
    pub necessary: bool,
    /// Faults of `F` this triplet newly covers in application order
    /// (the paper's `ΔFC`с numerator).
    pub new_faults: usize,
    /// Patterns this triplet contributes to the global test length.
    pub test_length: usize,
}

/// Full result of one [`ReseedingFlow`](crate::ReseedingFlow) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReseedingReport {
    /// Circuit name.
    pub circuit: String,
    /// TPG name (`add` / `sub` / `mul` / …).
    pub tpg: String,
    /// Evolution length `τ` configured for the initial triplets.
    pub tau: usize,
    /// The selected triplets, necessary first, in application order.
    pub selected: Vec<SelectedTriplet>,
    /// Size of the initial reseeding `M` (= |ATPGTS|).
    pub initial_triplets: usize,
    /// Size of the target fault list `F`.
    pub target_faults: usize,
    /// Collapsed fault-universe size (`F` ⊆ universe).
    pub fault_universe: usize,
    /// Residual matrix size handed to the solver (rows, cols); `(0, 0)`
    /// when the reduction closed the matrix.
    pub residual: (usize, usize),
    /// Reduction fixpoint iterations.
    pub reduction_iterations: usize,
    /// Rows deleted by dominance during reduction.
    pub dominated_rows: usize,
    /// `true` if the solver proved its part minimal.
    pub solution_optimal: bool,
    /// Search nodes spent by the exact solver.
    pub solver_nodes: u64,
    /// Faults of `F` covered by the final solution (must equal
    /// `target_faults`).
    pub covered_faults: usize,
    /// ATPG fault coverage over the collapsed universe.
    pub atpg_coverage: f64,
}

impl ReseedingReport {
    /// The paper's `#Triplets`: cardinality of the reseeding solution `N`.
    pub fn triplet_count(&self) -> usize {
        self.selected.len()
    }

    /// Number of necessary (essential) triplets — Table 2's "necessary".
    pub fn necessary_count(&self) -> usize {
        self.selected.iter().filter(|t| t.necessary).count()
    }

    /// Number of solver-chosen triplets — Table 2's "LINGO" column.
    pub fn solver_count(&self) -> usize {
        self.selected.iter().filter(|t| !t.necessary).count()
    }

    /// The paper's global `Test Length`: Σ per-triplet trimmed lengths.
    pub fn test_length(&self) -> usize {
        self.selected.iter().map(|t| t.test_length).sum()
    }

    /// `true` when every fault of `F` is covered by the solution (the
    /// correctness invariant of the whole flow).
    pub fn covers_all_target_faults(&self) -> bool {
        self.covered_faults == self.target_faults
    }

    /// ROM bits to store the solution (per-triplet `τ` field sized for the
    /// configured `τ`).
    pub fn rom_bits(&self) -> usize {
        let tau_bits = usize::BITS as usize - self.tau.leading_zeros() as usize;
        self.selected
            .iter()
            .map(|t| t.triplet.rom_bits(tau_bits.max(1)))
            .sum()
    }
}

impl fmt::Display for ReseedingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] τ={}: {} triplets ({} necessary + {} solver), test length {}, {} / {} faults",
            self.circuit,
            self.tpg,
            self.tau,
            self.triplet_count(),
            self.necessary_count(),
            self.solver_count(),
            self.test_length(),
            self.covered_faults,
            self.target_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_bits::BitVec;

    fn sample() -> ReseedingReport {
        let t = Triplet::new(BitVec::zeros(4), BitVec::ones(4), 3);
        ReseedingReport {
            circuit: "test".into(),
            tpg: "add".into(),
            tau: 3,
            selected: vec![
                SelectedTriplet {
                    triplet: t.clone(),
                    necessary: true,
                    new_faults: 10,
                    test_length: 4,
                },
                SelectedTriplet {
                    triplet: t,
                    necessary: false,
                    new_faults: 5,
                    test_length: 2,
                },
            ],
            initial_triplets: 20,
            target_faults: 15,
            fault_universe: 30,
            residual: (3, 2),
            reduction_iterations: 2,
            dominated_rows: 12,
            solution_optimal: true,
            solver_nodes: 9,
            covered_faults: 15,
            atpg_coverage: 0.5,
        }
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.triplet_count(), 2);
        assert_eq!(r.necessary_count(), 1);
        assert_eq!(r.solver_count(), 1);
        assert_eq!(r.test_length(), 6);
        assert!(r.covers_all_target_faults());
        // τ=3 → 2 bits; 2 triplets × (4 + 4 + 2) = 20
        assert_eq!(r.rom_bits(), 20);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = sample().to_string();
        assert!(s.contains("2 triplets"));
        assert!(s.contains("test length 6"));
        assert!(s.contains("15 / 15"));
    }
}
