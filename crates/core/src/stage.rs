//! The keyed stage DAG: `netlist → atpg_base → first_detection → cover`.
//!
//! Every expensive step of the flow is a *stage*: a pure function of the
//! circuit and a canonicalised [`FlowConfig`] fragment containing exactly
//! the knobs its output depends on. [`StageCache`] fronts each stage with
//! the content-addressed [`ArtifactStore`]: check the store under the
//! stage's key, compute on a miss, write back. With no store attached
//! every stage degrades to the plain computation — bit for bit the same
//! results, the cache only ever short-circuits work whose output is
//! already known.
//!
//! # What is in a key — and what deliberately is not
//!
//! | stage | keyed on |
//! |-------|----------|
//! | `atpg` | circuit, ATPG settings (seed, batches, backtrack limit, fill, compaction, static pre-pass) |
//! | `first-detection` | `atpg` inputs + TPG kind + flow seed (**not** τ — see below) |
//! | `cover` | `first-detection` inputs + τ + solver settings + trim |
//!
//! Pure throughput knobs — `jobs` (both the flow-level count and
//! [`AtpgConfig::jobs`], which gates the fault-parallel PODEM rounds),
//! the set-covering [`Backend`], the [`MatrixBuild`] engine, the
//! [`SweepEngine`] — are **excluded** from every key: the workspace pins
//! them bit-identical (the `sweep_equivalence`, `parallel_equivalence`,
//! `atpg_equivalence`, `sparse_dense_equivalence` and
//! `batched_matrix_equivalence` suites), so an artifact computed
//! under any of them answers all of them. That exclusion is what makes a
//! store warmed by a 4-job batched sparse run answer a 1-job per-row
//! dense query byte-identically — asserted by `tests/store_equivalence.rs`
//! and the key-invariance tests below.
//!
//! The first-detection artifact is not keyed on τ because it *saturates*
//! instead: one pass at `τ_max` determines every `τ ≤ τ_max` matrix by
//! thresholding ([`FirstDetectionMatrix::at_tau`]). The artifact records
//! the `τ_max` it was simulated at; a request at or below it is a hit, a
//! request above it recomputes at the larger τ and overwrites, so the
//! artifact only ever grows.
//!
//! Invalidation is purely structural: changing a keyed input changes the
//! key, so stale artifacts are never *read* — they are orphaned on disk
//! (delete the store directory to reclaim the space).
//!
//! [`Backend`]: fbist_setcover::Backend
//! [`MatrixBuild`]: crate::MatrixBuild
//! [`SweepEngine`]: crate::SweepEngine

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use fbist_atpg::{AtpgConfig, FillMode};
use fbist_netlist::Netlist;
use fbist_setcover::{Engine, FirstDetectionMatrix, SolveConfig};
use fbist_store::{
    encode_to_vec, Artifact, ArtifactStore, DecodeError, Digest, DigestBytes, Reader, StageKey,
    Writer,
};
use fbist_tpg::{PatternGenerator, Triplet};

use crate::builder::{derive_triplets, AtpgBase, InitialReseedingBuilder};
use crate::config::FlowConfig;
use crate::report::{ReseedingReport, SelectedTriplet};

// ---------------------------------------------------------------------------
// canonical config fragments → stage keys
// ---------------------------------------------------------------------------

/// Content digest of a netlist — the root of every stage key.
pub fn circuit_digest(netlist: &Netlist) -> DigestBytes {
    let mut d = Digest::new("fbist/netlist");
    d.bytes(&encode_to_vec(netlist));
    d.finish()
}

/// Hashes the ATPG-relevant fragment: every [`AtpgConfig`] field *except*
/// `jobs`. The run is a pure function of (circuit, these fields);
/// `AtpgConfig::jobs` only sizes the PODEM worker pool and is pinned
/// bit-identical by `tests/atpg_equivalence.rs`, so it joins the excluded
/// throughput-knob set — an artifact computed at any worker count answers
/// every worker count.
fn hash_atpg_fragment(d: &mut Digest, atpg: &AtpgConfig) {
    d.u64(atpg.seed);
    d.usize(atpg.random_batch);
    d.usize(atpg.max_random_batches);
    d.usize(atpg.random_stall_batches);
    d.usize(atpg.backtrack_limit);
    d.u8(match atpg.fill {
        FillMode::Random => 0,
        FillMode::Zeros => 1,
        FillMode::Ones => 2,
    });
    d.bool(atpg.compact);
    // static_prepass and static_learning ARE keyed, unlike the throughput
    // knobs: the prepass changes the fault classification (aborted →
    // untestable) and learning additionally seeds PODEM (patterns may
    // differ), so two runs that differ in either are not interchangeable
    // artifacts.
    d.bool(atpg.static_prepass);
    d.bool(atpg.static_learning);
}

/// The knobs deliberately **excluded** from every stage key, by config
/// path, with the equivalence suite that pins each one bit-identical.
/// `xtask lint` greps this manifest and cross-checks it against the
/// suites under `tests/`, so the exclusion list cannot silently drift:
/// adding an unkeyed knob without a pinning suite (or deleting a suite
/// that a listed knob relies on) fails CI.
pub const THROUGHPUT_KNOBS: &[(&str, &str)] = &[
    ("jobs", "parallel_equivalence"),
    ("atpg.jobs", "atpg_equivalence"),
    ("solve.backend", "sparse_dense_equivalence"),
    ("solve.engine.jobs", "parallel_equivalence"),
    ("matrix_build", "batched_matrix_equivalence"),
    ("sweep_engine", "sweep_equivalence"),
    ("simd_width", "simd_width_equivalence"),
    ("atpg.simd_width", "simd_width_equivalence"),
];

/// Hashes the solver-relevant fragment of [`SolveConfig`]: reductions,
/// engine (with the local-search parameters that shape the cover —
/// everything except its `jobs`), and the exact-node budget. The
/// [`Backend`](fbist_setcover::Backend) is excluded: both backends are
/// pinned bit-identical.
fn hash_solve_fragment(d: &mut Digest, solve: &SolveConfig) {
    d.bool(solve.reducer.essentiality);
    d.bool(solve.reducer.row_dominance);
    d.bool(solve.reducer.col_dominance);
    match solve.engine {
        Engine::Exact => d.u8(0),
        Engine::Greedy => d.u8(1),
        Engine::LocalSearch(ls) => {
            d.u8(2);
            d.usize(ls.iterations);
            d.usize(ls.ruin_size);
            d.f64_bits(ls.temperature);
            d.f64_bits(ls.cooling);
            d.u64(ls.seed);
            d.usize(ls.restarts);
            // ls.jobs deliberately not hashed: restart evaluation order
            // is pinned independent of the worker count
        }
    }
    d.u64(solve.exact.node_limit);
}

fn atpg_key_from(circuit: DigestBytes, config: &FlowConfig) -> StageKey {
    let mut d = Digest::new("fbist/stage/atpg");
    d.bytes(&circuit.0);
    hash_atpg_fragment(&mut d, &config.atpg);
    StageKey::new("atpg", d.finish())
}

fn first_detection_key_from(circuit: DigestBytes, config: &FlowConfig) -> StageKey {
    let mut d = Digest::new("fbist/stage/first-detection");
    d.bytes(&circuit.0);
    hash_atpg_fragment(&mut d, &config.atpg);
    d.str(config.tpg.name());
    d.u64(config.seed);
    // NOT τ: the artifact saturates over τ (module docs)
    StageKey::new("first-detection", d.finish())
}

fn cover_key_from(circuit: DigestBytes, config: &FlowConfig) -> StageKey {
    let mut d = Digest::new("fbist/stage/cover");
    d.bytes(&circuit.0);
    hash_atpg_fragment(&mut d, &config.atpg);
    d.str(config.tpg.name());
    d.u64(config.seed);
    d.usize(config.tau);
    hash_solve_fragment(&mut d, &config.solve);
    d.bool(config.trim);
    StageKey::new("cover", d.finish())
}

/// The `atpg` stage key for a circuit and configuration. Keyed on the
/// circuit content and the ATPG settings alone.
pub fn atpg_stage_key(netlist: &Netlist, config: &FlowConfig) -> StageKey {
    atpg_key_from(circuit_digest(netlist), config)
}

/// The `first-detection` stage key: the `atpg` inputs plus TPG kind and
/// flow seed. τ is *not* keyed — the stored artifact covers every τ up
/// to its recorded `τ_max` by thresholding.
pub fn first_detection_stage_key(netlist: &Netlist, config: &FlowConfig) -> StageKey {
    first_detection_key_from(circuit_digest(netlist), config)
}

/// The `cover` stage key: everything the final report depends on —
/// circuit, ATPG fragment, TPG, seed, τ, solver fragment, trim.
pub fn cover_stage_key(netlist: &Netlist, config: &FlowConfig) -> StageKey {
    cover_key_from(circuit_digest(netlist), config)
}

/// Canonical digest of a whole sweep request: the cover fragment minus τ
/// plus the *sorted, deduplicated* τ list — invariant under τ order and
/// duplicates, exactly like the sweep's own semantics ([`tradeoff_sweep`]
/// dedupes and shares points). `fbist serve` uses this to coalesce
/// identical in-flight requests.
///
/// [`tradeoff_sweep`]: crate::tradeoff_sweep
pub fn sweep_request_digest(netlist: &Netlist, config: &FlowConfig, taus: &[usize]) -> DigestBytes {
    let mut uniq: Vec<usize> = taus.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let mut d = Digest::new("fbist/request/sweep");
    d.bytes(&circuit_digest(netlist).0);
    hash_atpg_fragment(&mut d, &config.atpg);
    d.str(config.tpg.name());
    d.u64(config.seed);
    hash_solve_fragment(&mut d, &config.solve);
    d.bool(config.trim);
    d.u64_slice(&uniq.iter().map(|&t| t as u64).collect::<Vec<u64>>());
    d.finish()
}

// ---------------------------------------------------------------------------
// artifacts owned by this crate
// ---------------------------------------------------------------------------

impl Artifact for AtpgBase {
    const KIND: &'static str = "atpg";

    fn encode(&self, w: &mut Writer) {
        self.atpg.encode(w);
        self.target_faults.encode(w);
        w.usize(self.universe_size);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let atpg = fbist_atpg::AtpgResult::decode(r)?;
        let target_faults = fbist_fault::FaultList::decode(r)?;
        let universe_size = r.usize()?;
        if target_faults.len() > universe_size {
            return Err(DecodeError::Invalid(format!(
                "{} target faults exceed the universe of {universe_size}",
                target_faults.len()
            )));
        }
        Ok(AtpgBase {
            atpg,
            target_faults,
            universe_size,
        })
    }
}

/// The stored `first-detection` artifact: the matrix plus the `τ_max` it
/// was simulated at, which bounds the τ range it can answer exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFirstDetection {
    /// Evolution length the recorded pass simulated to.
    pub tau_max: usize,
    /// First-detection indices for every `(triplet, fault)` pair
    /// observed within `τ_max`.
    pub matrix: FirstDetectionMatrix,
}

impl Artifact for CachedFirstDetection {
    const KIND: &'static str = "first-detection";

    fn encode(&self, w: &mut Writer) {
        w.usize(self.tau_max);
        self.matrix.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tau_max = r.usize()?;
        let matrix = FirstDetectionMatrix::decode(r)?;
        Ok(CachedFirstDetection { tau_max, matrix })
    }
}

impl Artifact for SelectedTriplet {
    const KIND: &'static str = "selected-triplet";

    fn encode(&self, w: &mut Writer) {
        self.triplet.encode(w);
        w.bool(self.necessary);
        w.usize(self.new_faults);
        w.usize(self.test_length);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SelectedTriplet {
            triplet: Triplet::decode(r)?,
            necessary: r.bool()?,
            new_faults: r.usize()?,
            test_length: r.usize()?,
        })
    }
}

impl Artifact for ReseedingReport {
    const KIND: &'static str = "cover";

    fn encode(&self, w: &mut Writer) {
        w.str(&self.circuit);
        w.str(&self.tpg);
        w.usize(self.tau);
        w.usize(self.selected.len());
        for s in &self.selected {
            s.encode(w);
        }
        w.usize(self.initial_triplets);
        w.usize(self.target_faults);
        w.usize(self.fault_universe);
        w.usize(self.residual.0);
        w.usize(self.residual.1);
        w.usize(self.reduction_iterations);
        w.usize(self.dominated_rows);
        w.bool(self.solution_optimal);
        w.u64(self.solver_nodes);
        w.usize(self.covered_faults);
        w.f64_bits(self.atpg_coverage);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let circuit = r.str()?;
        let tpg = r.str()?;
        let tau = r.usize()?;
        let n = r.usize()?;
        let mut selected = Vec::with_capacity(n.min(r.remaining() / 8));
        for _ in 0..n {
            selected.push(SelectedTriplet::decode(r)?);
        }
        Ok(ReseedingReport {
            circuit,
            tpg,
            tau,
            selected,
            initial_triplets: r.usize()?,
            target_faults: r.usize()?,
            fault_universe: r.usize()?,
            residual: (r.usize()?, r.usize()?),
            reduction_iterations: r.usize()?,
            dominated_rows: r.usize()?,
            solution_optimal: r.bool()?,
            solver_nodes: r.u64()?,
            covered_faults: r.usize()?,
            atpg_coverage: r.f64_bits()?,
        })
    }
}

// ---------------------------------------------------------------------------
// the stage cache
// ---------------------------------------------------------------------------

/// Hit/miss counters per cached stage, plus the observable efficiency
/// numbers `fbist serve` reports per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStats {
    /// `atpg` stage store hits.
    pub atpg_hits: u64,
    /// `atpg` stage computations (store misses or store disabled).
    pub atpg_misses: u64,
    /// `first-detection` stage store hits (recorded `τ_max` sufficed).
    pub first_detection_hits: u64,
    /// `first-detection` stage computations.
    pub first_detection_misses: u64,
    /// `cover` stage store hits.
    pub cover_hits: u64,
    /// `cover` stage computations.
    pub cover_misses: u64,
}

impl StageStats {
    /// `true` if no stage ever computed — everything was answered from
    /// the store.
    pub fn fully_warm(&self) -> bool {
        self.atpg_misses == 0 && self.first_detection_misses == 0 && self.cover_misses == 0
    }

    /// Counter-wise difference against an earlier snapshot (for
    /// per-request deltas).
    #[must_use]
    pub fn since(&self, earlier: &StageStats) -> StageStats {
        StageStats {
            atpg_hits: self.atpg_hits - earlier.atpg_hits,
            atpg_misses: self.atpg_misses - earlier.atpg_misses,
            first_detection_hits: self.first_detection_hits - earlier.first_detection_hits,
            first_detection_misses: self.first_detection_misses - earlier.first_detection_misses,
            cover_hits: self.cover_hits - earlier.cover_hits,
            cover_misses: self.cover_misses - earlier.cover_misses,
        }
    }
}

/// The flow's gateway to the artifact store: one object through which
/// `flow.rs`, `builder.rs` and `sweep.rs` resolve every stage, instead
/// of threading ad-hoc intermediates.
///
/// A disabled cache (no store attached, [`StageCache::disabled`])
/// computes everything inline and counts misses only — the flow behaves
/// exactly as if the cache did not exist.
#[derive(Debug, Default)]
pub struct StageCache {
    store: Option<ArtifactStore>,
    /// The bound netlist's content digest, computed once on first use —
    /// every key derives from it.
    circuit: OnceLock<DigestBytes>,
    atpg_hits: AtomicU64,
    atpg_misses: AtomicU64,
    fd_hits: AtomicU64,
    fd_misses: AtomicU64,
    cover_hits: AtomicU64,
    cover_misses: AtomicU64,
}

impl StageCache {
    /// A cache with no store: every stage computes, nothing persists.
    pub fn disabled() -> StageCache {
        StageCache::default()
    }

    /// A cache backed by a store.
    pub fn with_store(store: ArtifactStore) -> StageCache {
        StageCache {
            store: Some(store),
            ..StageCache::default()
        }
    }

    /// `true` when a store is attached.
    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StageStats {
        StageStats {
            atpg_hits: self.atpg_hits.load(Ordering::Relaxed),
            atpg_misses: self.atpg_misses.load(Ordering::Relaxed),
            first_detection_hits: self.fd_hits.load(Ordering::Relaxed),
            first_detection_misses: self.fd_misses.load(Ordering::Relaxed),
            cover_hits: self.cover_hits.load(Ordering::Relaxed),
            cover_misses: self.cover_misses.load(Ordering::Relaxed),
        }
    }

    fn circuit(&self, netlist: &Netlist) -> DigestBytes {
        *self.circuit.get_or_init(|| circuit_digest(netlist))
    }

    /// Resolves the `atpg` stage: store hit or
    /// [`InitialReseedingBuilder::atpg_base`] + write-back.
    pub fn atpg_base(&self, builder: &InitialReseedingBuilder, config: &FlowConfig) -> AtpgBase {
        let Some(store) = &self.store else {
            self.atpg_misses.fetch_add(1, Ordering::Relaxed);
            return builder.atpg_base(config);
        };
        let key = atpg_key_from(self.circuit(builder.netlist()), config);
        if let Some(base) = store.get::<AtpgBase>(key) {
            self.atpg_hits.fetch_add(1, Ordering::Relaxed);
            return base;
        }
        self.atpg_misses.fetch_add(1, Ordering::Relaxed);
        let base = builder.atpg_base(config);
        store.put(key, &base);
        base
    }

    /// Resolves the `first-detection` stage at `tau_max`: a stored
    /// artifact whose recorded `τ_max` is `≥ tau_max` is a hit (its
    /// thresholded matrices are exact for every requested τ); anything
    /// less recomputes at `tau_max` and overwrites, so the artifact only
    /// grows. The returned triplets are derived at `tau_max` from the
    /// serial RNG prologue — never simulated, so a hit costs zero
    /// simulation passes.
    pub fn first_detection(
        &self,
        builder: &InitialReseedingBuilder,
        tpg: &dyn PatternGenerator,
        base: &AtpgBase,
        config: &FlowConfig,
        tau_max: usize,
    ) -> (Vec<Triplet>, FirstDetectionMatrix) {
        let Some(store) = &self.store else {
            self.fd_misses.fetch_add(1, Ordering::Relaxed);
            let (t, m) = builder.first_detection_matrix_for(
                tpg,
                &base.atpg.patterns,
                &base.target_faults,
                tau_max,
                config.seed,
                config.jobs,
                config.matrix_build,
                config.simd_width,
            );
            return (t, m);
        };
        let key = first_detection_key_from(self.circuit(builder.netlist()), config);
        if let Some(cached) = store.get::<CachedFirstDetection>(key) {
            if cached.tau_max >= tau_max
                && cached.matrix.rows() == base.atpg.patterns.len()
                && cached.matrix.cols() == base.target_faults.len()
            {
                self.fd_hits.fetch_add(1, Ordering::Relaxed);
                let triplets = derive_triplets(tpg, &base.atpg.patterns, tau_max, config.seed);
                return (triplets, cached.matrix);
            }
        }
        self.fd_misses.fetch_add(1, Ordering::Relaxed);
        let (triplets, matrix) = builder.first_detection_matrix_for(
            tpg,
            &base.atpg.patterns,
            &base.target_faults,
            tau_max,
            config.seed,
            config.jobs,
            config.matrix_build,
            config.simd_width,
        );
        store.put(
            key,
            &CachedFirstDetection {
                tau_max,
                matrix: matrix.clone(),
            },
        );
        (triplets, matrix)
    }

    /// Looks up the `cover` stage for `config` (the configured τ is part
    /// of the key). `None` means compute — and then
    /// [`cover_put`](Self::cover_put).
    pub fn cover_get(&self, netlist: &Netlist, config: &FlowConfig) -> Option<ReseedingReport> {
        let Some(store) = &self.store else {
            return None;
        };
        let key = cover_key_from(self.circuit(netlist), config);
        match store.get::<ReseedingReport>(key) {
            Some(report) => {
                self.cover_hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => None,
        }
    }

    /// Records a computed cover. Counts the miss (pair it with a failed
    /// [`cover_get`](Self::cover_get)).
    pub fn cover_put(&self, netlist: &Netlist, config: &FlowConfig, report: &ReseedingReport) {
        self.cover_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            let key = cover_key_from(self.circuit(netlist), config);
            store.put(key, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MatrixBuild, SweepEngine, TpgKind};
    use fbist_netlist::embedded;
    use fbist_setcover::Backend;

    fn cfg() -> FlowConfig {
        FlowConfig::new(TpgKind::Adder).with_tau(7)
    }

    /// Every key for every stage, in one place, for invariance sweeps.
    fn all_keys(netlist: &Netlist, config: &FlowConfig) -> Vec<StageKey> {
        vec![
            atpg_stage_key(netlist, config),
            first_detection_stage_key(netlist, config),
            cover_stage_key(netlist, config),
        ]
    }

    #[test]
    fn throughput_knobs_never_change_any_stage_key() {
        // jobs / backend / matrix-build / sweep-engine are pinned
        // bit-identical by the equivalence suites, so no stage key may
        // depend on them — otherwise a warm store would go cold when a
        // user merely changes the worker count
        let n = embedded::c17();
        let base_keys = all_keys(&n, &cfg());
        let variants = [
            cfg().with_jobs(7),
            cfg().with_backend(Backend::Sparse),
            cfg().with_backend(Backend::Dense),
            cfg().with_matrix_build(MatrixBuild::PerRow),
            cfg().with_matrix_build(MatrixBuild::Batched),
            cfg().with_sweep_engine(SweepEngine::PerTau),
            cfg().with_sweep_engine(SweepEngine::FirstDetection),
            cfg().with_simd_width(fbist_bits::SimdWidth::W1),
            cfg().with_simd_width(fbist_bits::SimdWidth::W4),
            cfg().with_simd_width(fbist_bits::SimdWidth::W8),
        ];
        for v in &variants {
            assert_eq!(all_keys(&n, v), base_keys, "config: {v:?}");
        }
        // the ATPG engine's own worker count is a throughput knob too
        // (fault-parallel PODEM rounds, pinned by atpg_equivalence)
        let mut atpg_jobs = cfg();
        atpg_jobs.atpg.jobs = 5;
        assert_eq!(all_keys(&n, &atpg_jobs), base_keys, "atpg.jobs leaked");
        // local-search jobs are a throughput knob too
        let mut ls = cfg();
        ls.solve.engine = Engine::LocalSearch(fbist_setcover::LocalSearchConfig {
            jobs: 9,
            ..Default::default()
        });
        let mut ls_serial = ls.clone();
        ls_serial.solve.engine = Engine::LocalSearch(fbist_setcover::LocalSearchConfig {
            jobs: 1,
            ..Default::default()
        });
        assert_eq!(all_keys(&n, &ls), all_keys(&n, &ls_serial));
    }

    #[test]
    fn semantic_knobs_change_the_keys_they_feed() {
        let n = embedded::c17();
        let base = cfg();
        // seed feeds every stage (with_seed also reseeds ATPG)
        for key_fn in [atpg_stage_key, first_detection_stage_key, cover_stage_key] {
            assert_ne!(
                key_fn(&n, &base.clone().with_seed(1)),
                key_fn(&n, &base),
                "seed must change every stage key"
            );
        }
        // τ feeds only the cover stage
        let retau = base.clone().with_tau(15);
        assert_eq!(atpg_stage_key(&n, &retau), atpg_stage_key(&n, &base));
        assert_eq!(
            first_detection_stage_key(&n, &retau),
            first_detection_stage_key(&n, &base)
        );
        assert_ne!(cover_stage_key(&n, &retau), cover_stage_key(&n, &base));
        // the TPG feeds first-detection and cover, not ATPG
        let lfsr = FlowConfig::new(TpgKind::Lfsr).with_tau(7);
        assert_eq!(atpg_stage_key(&n, &lfsr), atpg_stage_key(&n, &base));
        assert_ne!(
            first_detection_stage_key(&n, &lfsr),
            first_detection_stage_key(&n, &base)
        );
        assert_ne!(cover_stage_key(&n, &lfsr), cover_stage_key(&n, &base));
        // trim and the solver engine feed only the cover
        let untrimmed = base.clone().with_trim(false);
        assert_eq!(atpg_stage_key(&n, &untrimmed), atpg_stage_key(&n, &base));
        assert_ne!(cover_stage_key(&n, &untrimmed), cover_stage_key(&n, &base));
        let mut greedy = base.clone();
        greedy.solve.engine = Engine::Greedy;
        assert_ne!(cover_stage_key(&n, &greedy), cover_stage_key(&n, &base));
        // static_prepass changes the ATPG fault classification, so it
        // feeds every stage downstream of atpg — it is NOT a throughput
        // knob even though coverage over detected faults is unchanged
        let prepass = base.clone().with_static_prepass(true);
        for key_fn in [atpg_stage_key, first_detection_stage_key, cover_stage_key] {
            assert_ne!(
                key_fn(&n, &prepass),
                key_fn(&n, &base),
                "static_prepass must change every stage key"
            );
        }
        assert_ne!(
            sweep_request_digest(&n, &prepass, &[0, 7]),
            sweep_request_digest(&n, &base, &[0, 7])
        );
        // static_learning reclassifies faults AND reshapes PODEM search,
        // so like static_prepass it is a semantic knob keyed everywhere
        let learning = base.clone().with_static_learning(true);
        for key_fn in [atpg_stage_key, first_detection_stage_key, cover_stage_key] {
            assert_ne!(
                key_fn(&n, &learning),
                key_fn(&n, &base),
                "static_learning must change every stage key"
            );
        }
        assert_ne!(
            sweep_request_digest(&n, &learning, &[0, 7]),
            sweep_request_digest(&n, &base, &[0, 7])
        );
        // the circuit feeds everything
        let other = embedded::majority();
        for key_fn in [atpg_stage_key, first_detection_stage_key, cover_stage_key] {
            assert_ne!(key_fn(&other, &base), key_fn(&n, &base));
        }
    }

    #[test]
    fn sweep_digest_is_invariant_under_tau_order_and_duplicates() {
        let n = embedded::c17();
        let base = cfg();
        let canonical = sweep_request_digest(&n, &base, &[0, 3, 15]);
        for taus in [vec![15, 3, 0], vec![0, 3, 15, 15, 3], vec![3, 3, 0, 15, 0]] {
            assert_eq!(
                sweep_request_digest(&n, &base, &taus),
                canonical,
                "taus: {taus:?}"
            );
        }
        assert_ne!(sweep_request_digest(&n, &base, &[0, 3]), canonical);
        assert_eq!(
            sweep_request_digest(&n, &base.clone().with_jobs(4), &[0, 3, 15]),
            canonical,
            "jobs must NOT change the digest"
        );
    }

    #[test]
    fn sweep_digest_ignores_throughput_knobs() {
        let n = embedded::c17();
        let base = cfg();
        let canonical = sweep_request_digest(&n, &base, &[0, 7]);
        for v in [
            base.clone().with_jobs(3),
            base.clone().with_backend(Backend::Sparse),
            base.clone().with_matrix_build(MatrixBuild::Batched),
            base.clone().with_sweep_engine(SweepEngine::PerTau),
        ] {
            assert_eq!(sweep_request_digest(&n, &v, &[0, 7]), canonical);
        }
    }

    #[test]
    fn disabled_cache_counts_misses_and_computes() {
        let n = embedded::c17();
        let builder = InitialReseedingBuilder::new(&n).unwrap();
        let cache = StageCache::disabled();
        assert!(!cache.is_enabled());
        let config = cfg();
        let base = cache.atpg_base(&builder, &config);
        assert!(!base.target_faults.is_empty());
        assert_eq!(cache.stats().atpg_misses, 1);
        assert_eq!(cache.stats().atpg_hits, 0);
        assert!(cache.cover_get(&n, &config).is_none());
        assert!(!cache.stats().fully_warm());
    }
}
