//! Flow configuration.

use fbist_atpg::AtpgConfig;
use fbist_setcover::{Backend, SolveConfig};
use fbist_tpg::{
    AccumulatorOp, AccumulatorTpg, Lfsr, MultiPolyLfsr, PatternGenerator, WeightedTpg,
};

/// Which hardware module plays the TPG role.
///
/// The paper's Table 1 evaluates the first three (accumulator-based
/// adder / subtracter / multiplier); the LFSR variants connect the method
/// back to classical reseeding, and the weighted generator is an ablation
/// extra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpgKind {
    /// Adder-based accumulator (`S ← S + θ`).
    Adder,
    /// Subtracter-based accumulator (`S ← S − θ`).
    Subtracter,
    /// Multiplier-based accumulator (`S ← S × θ`).
    Multiplier,
    /// Single-polynomial maximal LFSR.
    Lfsr,
    /// Multiple-polynomial LFSR (θ selects among 8 polynomials).
    MultiPolyLfsr,
    /// Weighted pseudo-random generator (unbiased, 4/8).
    Weighted,
}

impl TpgKind {
    /// The paper's three accumulator TPGs, in Table-1 column order.
    pub const PAPER: [TpgKind; 3] = [TpgKind::Adder, TpgKind::Subtracter, TpgKind::Multiplier];

    /// Short name used in reports (`add`, `sub`, `mul`, `lfsr`, `mplfsr`,
    /// `wrand`).
    pub fn name(self) -> &'static str {
        match self {
            TpgKind::Adder => "add",
            TpgKind::Subtracter => "sub",
            TpgKind::Multiplier => "mul",
            TpgKind::Lfsr => "lfsr",
            TpgKind::MultiPolyLfsr => "mplfsr",
            TpgKind::Weighted => "wrand",
        }
    }

    /// Instantiates the generator at the given register width.
    pub fn build(self, width: usize) -> Box<dyn PatternGenerator> {
        match self {
            TpgKind::Adder => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Add)),
            TpgKind::Subtracter => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Sub)),
            TpgKind::Multiplier => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Mul)),
            TpgKind::Lfsr => Box::new(Lfsr::maximal(width.max(2))),
            TpgKind::MultiPolyLfsr => Box::new(MultiPolyLfsr::standard_bank(width.max(2), 8)),
            TpgKind::Weighted => Box::new(WeightedTpg::new(width, 4)),
        }
    }
}

impl std::fmt::Display for TpgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which engine fills the Detection Matrix.
///
/// Like `jobs` and [`Backend`], this is purely a throughput knob: every
/// engine produces a bit-identical matrix (pinned by the
/// `batched_matrix_equivalence` suite), so the choice can never change a
/// cover, a report, or a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatrixBuild {
    /// One fault-simulation call per triplet: each row's `τ + 1` expanded
    /// patterns get their own 64-lane blocks, leaving `63 − τ (mod 64)`
    /// lanes of every final block dead.
    PerRow,
    /// The cross-row batch engine: many rows' pattern streams share
    /// 64-lane blocks (see `fbist_fault::BatchPlan`), so the good circuit
    /// is evaluated and every fault cone propagated once per *shared*
    /// block — up to `64 / (τ + 1)`× fewer of both.
    Batched,
    /// Picks per instance: batched whenever sharing blocks across rows
    /// actually reduces the total block count (i.e. unless every row
    /// already fills whole blocks exactly).
    #[default]
    Auto,
}

impl MatrixBuild {
    /// Short name used in reports and flags (`per-row`, `batched`, `auto`).
    pub fn name(self) -> &'static str {
        match self {
            MatrixBuild::PerRow => "per-row",
            MatrixBuild::Batched => "batched",
            MatrixBuild::Auto => "auto",
        }
    }

    /// Parses a flag value (`per-row`, `batched` or `auto`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values on anything else.
    pub fn parse(s: &str) -> Result<MatrixBuild, String> {
        match s {
            "per-row" => Ok(MatrixBuild::PerRow),
            "batched" => Ok(MatrixBuild::Batched),
            "auto" => Ok(MatrixBuild::Auto),
            other => Err(format!(
                "unknown matrix-build engine {other:?} (expected per-row, batched or auto)"
            )),
        }
    }
}

impl std::fmt::Display for MatrixBuild {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the full reseeding flow.
///
/// Construct with [`FlowConfig::new`] and customise with the `with_*`
/// builder methods:
///
/// ```
/// use reseed_core::{FlowConfig, TpgKind};
///
/// let cfg = FlowConfig::new(TpgKind::Multiplier)
///     .with_tau(63)
///     .with_seed(42)
///     .with_trim(false);
/// assert_eq!(cfg.tau, 63);
/// assert_eq!(cfg.tpg.name(), "mul");
/// ```
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// TPG selection.
    pub tpg: TpgKind,
    /// Evolution length applied to every initial triplet ("experimentally
    /// tuned and fixed equal for all the triplets of T", §3.1).
    pub tau: usize,
    /// Master RNG seed (drives ATPG, random δ, fills).
    pub seed: u64,
    /// ATPG settings used to produce `ATPGTS` and `F`.
    pub atpg: AtpgConfig,
    /// Set-covering pipeline settings (reductions + engine).
    pub solve: SolveConfig,
    /// Trim each selected triplet's tail patterns that add no coverage
    /// (the paper's global-test-length accounting, §4).
    pub trim: bool,
    /// Worker threads for the parallel stages (Detection-Matrix rows, the
    /// τ sweep, GATSBY fitness evaluation). `0` defers to the global
    /// [`mini_rayon::jobs`] default (`FBIST_JOBS` / available
    /// parallelism). Results are bit-identical for every value.
    pub jobs: usize,
    /// Detection-Matrix construction engine (per-row, cross-row batched,
    /// or auto). Purely a throughput knob: every engine fills the matrix
    /// bit-identically.
    pub matrix_build: MatrixBuild,
}

impl FlowConfig {
    /// Default flow for a TPG: `τ = 31`, reductions + exact solver, trim on.
    pub fn new(tpg: TpgKind) -> FlowConfig {
        FlowConfig {
            tpg,
            tau: 31,
            seed: 0xDA7E_2001,
            atpg: AtpgConfig::default(),
            solve: SolveConfig::default(),
            trim: true,
            jobs: 0,
            matrix_build: MatrixBuild::Auto,
        }
    }

    /// Sets the evolution length `τ`.
    pub fn with_tau(mut self, tau: usize) -> FlowConfig {
        self.tau = tau;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FlowConfig {
        self.seed = seed;
        self.atpg.seed = seed ^ 0xA7B6;
        self
    }

    /// Enables/disables tail trimming.
    pub fn with_trim(mut self, trim: bool) -> FlowConfig {
        self.trim = trim;
        self
    }

    /// Replaces the set-covering configuration.
    pub fn with_solve(mut self, solve: SolveConfig) -> FlowConfig {
        self.solve = solve;
        self
    }

    /// Replaces the ATPG configuration.
    pub fn with_atpg(mut self, atpg: AtpgConfig) -> FlowConfig {
        self.atpg = atpg;
        self
    }

    /// Sets the worker-thread count (`0` = global default). Purely a
    /// throughput knob: every job count computes the same results.
    pub fn with_jobs(mut self, jobs: usize) -> FlowConfig {
        self.jobs = jobs;
        self
    }

    /// Selects the set-covering backend (dense scans vs. the sparse
    /// incremental engine; [`Backend::Auto`] picks by matrix size). Like
    /// `jobs`, purely a throughput knob: every backend computes
    /// bit-identical covers, reduction logs and reports.
    pub fn with_backend(mut self, backend: Backend) -> FlowConfig {
        self.solve.backend = backend;
        self
    }

    /// Selects the Detection-Matrix construction engine
    /// ([`MatrixBuild::Auto`] batches whenever sharing blocks across rows
    /// saves block evaluations). Like `jobs` and the backend, purely a
    /// throughput knob: every engine fills the matrix bit-identically.
    pub fn with_matrix_build(mut self, matrix_build: MatrixBuild) -> FlowConfig {
        self.matrix_build = matrix_build;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_chain() {
        let cfg = FlowConfig::new(TpgKind::Lfsr).with_tau(7).with_seed(5);
        assert_eq!(cfg.tau, 7);
        assert_eq!(cfg.seed, 5);
        assert!(cfg.trim);
    }

    #[test]
    fn tpg_kinds_build_at_width() {
        for kind in [
            TpgKind::Adder,
            TpgKind::Subtracter,
            TpgKind::Multiplier,
            TpgKind::Lfsr,
            TpgKind::MultiPolyLfsr,
            TpgKind::Weighted,
        ] {
            let g = kind.build(24);
            assert_eq!(g.width(), 24, "{kind}");
        }
    }

    #[test]
    fn matrix_build_parse_roundtrip() {
        for mb in [MatrixBuild::PerRow, MatrixBuild::Batched, MatrixBuild::Auto] {
            assert_eq!(MatrixBuild::parse(mb.name()), Ok(mb));
        }
        assert!(MatrixBuild::parse("perrow").is_err());
        assert_eq!(
            FlowConfig::new(TpgKind::Adder)
                .with_matrix_build(MatrixBuild::Batched)
                .matrix_build,
            MatrixBuild::Batched
        );
        assert_eq!(
            FlowConfig::new(TpgKind::Adder).matrix_build,
            MatrixBuild::Auto
        );
    }

    #[test]
    fn paper_order() {
        let names: Vec<&str> = TpgKind::PAPER.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["add", "sub", "mul"]);
    }
}
