//! Flow configuration.

use fbist_atpg::AtpgConfig;
use fbist_bits::SimdWidth;
use fbist_setcover::{Backend, SolveConfig};
use fbist_tpg::{
    AccumulatorOp, AccumulatorTpg, Lfsr, MultiPolyLfsr, PatternGenerator, WeightedTpg,
};

/// Which hardware module plays the TPG role.
///
/// The paper's Table 1 evaluates the first three (accumulator-based
/// adder / subtracter / multiplier); the LFSR variants connect the method
/// back to classical reseeding, and the weighted generator is an ablation
/// extra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpgKind {
    /// Adder-based accumulator (`S ← S + θ`).
    Adder,
    /// Subtracter-based accumulator (`S ← S − θ`).
    Subtracter,
    /// Multiplier-based accumulator (`S ← S × θ`).
    Multiplier,
    /// Single-polynomial maximal LFSR.
    Lfsr,
    /// Multiple-polynomial LFSR (θ selects among 8 polynomials).
    MultiPolyLfsr,
    /// Weighted pseudo-random generator (unbiased, 4/8).
    Weighted,
}

impl TpgKind {
    /// The paper's three accumulator TPGs, in Table-1 column order.
    pub const PAPER: [TpgKind; 3] = [TpgKind::Adder, TpgKind::Subtracter, TpgKind::Multiplier];

    /// Short name used in reports (`add`, `sub`, `mul`, `lfsr`, `mplfsr`,
    /// `wrand`).
    pub fn name(self) -> &'static str {
        match self {
            TpgKind::Adder => "add",
            TpgKind::Subtracter => "sub",
            TpgKind::Multiplier => "mul",
            TpgKind::Lfsr => "lfsr",
            TpgKind::MultiPolyLfsr => "mplfsr",
            TpgKind::Weighted => "wrand",
        }
    }

    /// Instantiates the generator at the given register width.
    pub fn build(self, width: usize) -> Box<dyn PatternGenerator> {
        match self {
            TpgKind::Adder => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Add)),
            TpgKind::Subtracter => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Sub)),
            TpgKind::Multiplier => Box::new(AccumulatorTpg::new(width, AccumulatorOp::Mul)),
            TpgKind::Lfsr => Box::new(Lfsr::maximal(width.max(2))),
            TpgKind::MultiPolyLfsr => Box::new(MultiPolyLfsr::standard_bank(width.max(2), 8)),
            TpgKind::Weighted => Box::new(WeightedTpg::new(width, 4)),
        }
    }
}

impl std::fmt::Display for TpgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which engine fills the Detection Matrix.
///
/// Like `jobs` and [`Backend`], this is purely a throughput knob: every
/// engine produces a bit-identical matrix (pinned by the
/// `batched_matrix_equivalence` suite), so the choice can never change a
/// cover, a report, or a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatrixBuild {
    /// One fault-simulation call per triplet: each row's `τ + 1` expanded
    /// patterns get their own 64-lane blocks, leaving `63 − τ (mod 64)`
    /// lanes of every final block dead.
    PerRow,
    /// The cross-row batch engine: many rows' pattern streams share
    /// 64-lane blocks (see `fbist_fault::BatchPlan`), so the good circuit
    /// is evaluated and every fault cone propagated once per *shared*
    /// block — up to `64 / (τ + 1)`× fewer of both.
    Batched,
    /// Picks per instance: batched whenever sharing blocks across rows
    /// actually reduces the total block count (i.e. unless every row
    /// already fills whole blocks exactly).
    #[default]
    Auto,
}

impl MatrixBuild {
    /// Short name used in reports and flags (`per-row`, `batched`, `auto`).
    pub fn name(self) -> &'static str {
        match self {
            MatrixBuild::PerRow => "per-row",
            MatrixBuild::Batched => "batched",
            MatrixBuild::Auto => "auto",
        }
    }

    /// Parses a flag value (`per-row`, `batched` or `auto`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values on anything else.
    pub fn parse(s: &str) -> Result<MatrixBuild, String> {
        match s {
            "per-row" => Ok(MatrixBuild::PerRow),
            "batched" => Ok(MatrixBuild::Batched),
            "auto" => Ok(MatrixBuild::Auto),
            other => Err(format!(
                "unknown matrix-build engine {other:?} (expected per-row, batched or auto)"
            )),
        }
    }
}

impl std::fmt::Display for MatrixBuild {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which engine evaluates the τ-sweep ([`tradeoff_sweep`]).
///
/// Like `jobs`, [`Backend`] and [`MatrixBuild`], purely a throughput
/// knob: every engine produces bit-identical sweep points (pinned by
/// `tests/sweep_equivalence.rs`), so the choice can never change a
/// curve, a report, or an event log.
///
/// [`tradeoff_sweep`]: crate::tradeoff_sweep
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepEngine {
    /// One full Detection-Matrix fault simulation per τ point (the
    /// historical engine): every point pays its own simulation pass.
    PerTau,
    /// One fault simulation at `max(taus)` recording each `(triplet,
    /// fault)` pair's *first* detecting pattern index; every point's
    /// matrix is then derived by thresholding (`first ≤ τ`) without
    /// touching the simulator again. Detection at τ is a prefix property
    /// of detection at `τ_max`, so the derived matrices are bit-identical
    /// to freshly simulated ones.
    FirstDetection,
    /// Picks per call: first-detection whenever the sweep has at least
    /// two distinct τ values to amortise the single pass over, per-τ for
    /// degenerate single-point sweeps (where first-index bookkeeping
    /// buys nothing).
    #[default]
    Auto,
}

impl SweepEngine {
    /// Short name used in reports and flags (`per-tau`, `first-detection`,
    /// `auto`).
    pub fn name(self) -> &'static str {
        match self {
            SweepEngine::PerTau => "per-tau",
            SweepEngine::FirstDetection => "first-detection",
            SweepEngine::Auto => "auto",
        }
    }

    /// Parses a flag value (`per-tau`, `first-detection` or `auto`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values on anything else.
    pub fn parse(s: &str) -> Result<SweepEngine, String> {
        match s {
            "per-tau" => Ok(SweepEngine::PerTau),
            "first-detection" => Ok(SweepEngine::FirstDetection),
            "auto" => Ok(SweepEngine::Auto),
            other => Err(format!(
                "unknown sweep engine {other:?} (expected per-tau, first-detection or auto)"
            )),
        }
    }
}

impl std::fmt::Display for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Validates one τ value against [`FlowConfig::MAX_TAU`], naming the
/// originating flag in the error — the single owner of the user-facing
/// bound diagnostic, shared by `--tau`, `--taus` and every front end.
///
/// # Errors
///
/// Returns the diagnostic when `tau` exceeds the bound.
pub fn check_tau(flag_name: &str, tau: usize) -> Result<usize, String> {
    if tau > FlowConfig::MAX_TAU {
        Err(format!(
            "{flag_name}: τ = {tau} exceeds the supported maximum {} \
             (a triplet expands to τ + 1 patterns)",
            FlowConfig::MAX_TAU
        ))
    } else {
        Ok(tau)
    }
}

/// Parses a comma-separated τ list as the `fbist sweep`/`figure2` front
/// ends accept it: values trimmed, each bounded by
/// [`FlowConfig::MAX_TAU`], duplicates removed (first occurrence wins —
/// each duplicate would silently repeat the whole covering computation),
/// order preserved. One shared implementation so every front end
/// validates identically.
///
/// # Errors
///
/// Returns a message naming the offending value for an empty list, an
/// unparsable entry, or a τ over the bound.
pub fn parse_tau_list(list: &str) -> Result<Vec<usize>, String> {
    if list.trim().is_empty() {
        return Err(
            "--taus: empty τ list (expected comma-separated values, e.g. --taus 0,7,31)".into(),
        );
    }
    let mut taus: Vec<usize> = Vec::new();
    for s in list.split(',') {
        let s = s.trim();
        let tau: usize = s
            .parse()
            .map_err(|_| format!("--taus: invalid τ value {s:?}"))?;
        check_tau("--taus", tau)?;
        if !taus.contains(&tau) {
            taus.push(tau);
        }
    }
    Ok(taus)
}

/// Configuration of the full reseeding flow.
///
/// Construct with [`FlowConfig::new`] and customise with the `with_*`
/// builder methods:
///
/// ```
/// use reseed_core::{FlowConfig, TpgKind};
///
/// let cfg = FlowConfig::new(TpgKind::Multiplier)
///     .with_tau(63)
///     .with_seed(42)
///     .with_trim(false);
/// assert_eq!(cfg.tau, 63);
/// assert_eq!(cfg.tpg.name(), "mul");
/// ```
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// TPG selection.
    pub tpg: TpgKind,
    /// Evolution length applied to every initial triplet ("experimentally
    /// tuned and fixed equal for all the triplets of T", §3.1).
    pub tau: usize,
    /// Master RNG seed (drives ATPG, random δ, fills).
    pub seed: u64,
    /// ATPG settings used to produce `ATPGTS` and `F`.
    pub atpg: AtpgConfig,
    /// Set-covering pipeline settings (reductions + engine).
    pub solve: SolveConfig,
    /// Trim each selected triplet's tail patterns that add no coverage
    /// (the paper's global-test-length accounting, §4).
    pub trim: bool,
    /// Worker threads for the parallel stages (Detection-Matrix rows, the
    /// τ sweep, GATSBY fitness evaluation). `0` defers to the global
    /// [`mini_rayon::jobs`] default (`FBIST_JOBS` / available
    /// parallelism). Results are bit-identical for every value.
    pub jobs: usize,
    /// Detection-Matrix construction engine (per-row, cross-row batched,
    /// or auto). Purely a throughput knob: every engine fills the matrix
    /// bit-identically.
    pub matrix_build: MatrixBuild,
    /// τ-sweep evaluation engine (one simulation per τ, one shared
    /// first-detection simulation, or auto). Purely a throughput knob:
    /// every engine traces the identical curve.
    pub sweep_engine: SweepEngine,
    /// SIMD block width for the packed fault simulator (`[u64; W]` lanes
    /// per net; [`SimdWidth::Auto`] picks the widest W whose block count
    /// actually shrinks). Purely a throughput knob: lane `k` of a W-wide
    /// block is lane `k` of the flat 64·W lane space and every reduction
    /// runs in flat-lane order, so each width fills bit-identical
    /// matrices, detections and reports (pinned by
    /// `tests/simd_width_equivalence.rs`).
    pub simd_width: SimdWidth,
}

impl FlowConfig {
    /// Largest supported evolution length `τ` (2²⁴ − 1 = 16 777 215).
    ///
    /// A triplet expands to `τ + 1` patterns, so this caps a single
    /// triplet's test set at 16 Mi patterns — orders of magnitude beyond
    /// any BIST schedule — while keeping every downstream quantity safely
    /// representable: `τ + 1` can never wrap `usize`, per-stream pattern
    /// indices (the sweep's first-detection indices, the batch planner's
    /// `LaneGroup::start`) fit comfortably in `u32`, and the ROM τ-field
    /// stays bounded. [`with_tau`](Self::with_tau) and the `fbist` CLI
    /// enforce the bound at the configuration boundary.
    pub const MAX_TAU: usize = (1 << 24) - 1;

    /// Default flow for a TPG: `τ = 31`, reductions + exact solver, trim on.
    pub fn new(tpg: TpgKind) -> FlowConfig {
        FlowConfig {
            tpg,
            tau: 31,
            seed: 0xDA7E_2001,
            atpg: AtpgConfig::default(),
            solve: SolveConfig::default(),
            trim: true,
            jobs: 0,
            matrix_build: MatrixBuild::Auto,
            sweep_engine: SweepEngine::Auto,
            simd_width: SimdWidth::Auto,
        }
    }

    /// Sets the evolution length `τ`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` exceeds [`MAX_TAU`](Self::MAX_TAU) — unvalidated
    /// values this large would otherwise overflow `τ + 1` arithmetic deep
    /// inside the expansion and batch-planning layers (front ends like
    /// the CLI reject them with an error instead of panicking).
    pub fn with_tau(mut self, tau: usize) -> FlowConfig {
        assert!(
            tau <= Self::MAX_TAU,
            "τ = {tau} exceeds FlowConfig::MAX_TAU = {}",
            Self::MAX_TAU
        );
        self.tau = tau;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FlowConfig {
        self.seed = seed;
        self.atpg.seed = seed ^ 0xA7B6;
        self
    }

    /// Enables/disables tail trimming.
    pub fn with_trim(mut self, trim: bool) -> FlowConfig {
        self.trim = trim;
        self
    }

    /// Replaces the set-covering configuration.
    pub fn with_solve(mut self, solve: SolveConfig) -> FlowConfig {
        self.solve = solve;
        self
    }

    /// Replaces the ATPG configuration.
    pub fn with_atpg(mut self, atpg: AtpgConfig) -> FlowConfig {
        self.atpg = atpg;
        self
    }

    /// Enables/disables the static untestability pre-pass
    /// ([`AtpgConfig::static_prepass`]). Unlike the throughput knobs this
    /// IS part of every stage key: it upgrades aborted faults to proven
    /// untestable, changing the classification an artifact records.
    pub fn with_static_prepass(mut self, static_prepass: bool) -> FlowConfig {
        self.atpg.static_prepass = static_prepass;
        self
    }

    /// Enables/disables static learning ([`AtpgConfig::static_learning`]):
    /// the learned-implication database upgrades the untestability
    /// pre-pass and seeds every PODEM search with early conflict
    /// detection. A semantic knob, part of every stage key — results stay
    /// bit-identical across `jobs` and SIMD widths, but may differ from a
    /// learning-free run.
    pub fn with_static_learning(mut self, static_learning: bool) -> FlowConfig {
        self.atpg.static_learning = static_learning;
        self
    }

    /// Sets the worker-thread count (`0` = global default). Purely a
    /// throughput knob: every job count computes the same results. Also
    /// reaches the fault-parallel ATPG rounds, unless
    /// [`AtpgConfig::jobs`] pins its own count.
    pub fn with_jobs(mut self, jobs: usize) -> FlowConfig {
        self.jobs = jobs;
        self
    }

    /// Selects the set-covering backend (dense scans vs. the sparse
    /// incremental engine; [`Backend::Auto`] picks by matrix size). Like
    /// `jobs`, purely a throughput knob: every backend computes
    /// bit-identical covers, reduction logs and reports.
    pub fn with_backend(mut self, backend: Backend) -> FlowConfig {
        self.solve.backend = backend;
        self
    }

    /// Selects the Detection-Matrix construction engine
    /// ([`MatrixBuild::Auto`] batches whenever sharing blocks across rows
    /// saves block evaluations). Like `jobs` and the backend, purely a
    /// throughput knob: every engine fills the matrix bit-identically.
    pub fn with_matrix_build(mut self, matrix_build: MatrixBuild) -> FlowConfig {
        self.matrix_build = matrix_build;
        self
    }

    /// Selects the τ-sweep engine ([`SweepEngine::Auto`] shares one
    /// first-detection simulation whenever the sweep has at least two
    /// distinct τ values). Like every other engine knob, purely a
    /// throughput choice: the curve is bit-identical either way.
    pub fn with_sweep_engine(mut self, sweep_engine: SweepEngine) -> FlowConfig {
        self.sweep_engine = sweep_engine;
        self
    }

    /// Selects the packed simulator's SIMD block width
    /// ([`SimdWidth::Auto`] widens only while the block count shrinks).
    /// Like `jobs` and the engines, purely a throughput knob: every width
    /// computes bit-identical matrices, detections and reports. Also
    /// reaches the ATPG's fault simulation ([`AtpgConfig::simd_width`]).
    pub fn with_simd_width(mut self, simd_width: SimdWidth) -> FlowConfig {
        self.simd_width = simd_width;
        self.atpg.simd_width = simd_width;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_chain() {
        let cfg = FlowConfig::new(TpgKind::Lfsr).with_tau(7).with_seed(5);
        assert_eq!(cfg.tau, 7);
        assert_eq!(cfg.seed, 5);
        assert!(cfg.trim);
    }

    #[test]
    fn tpg_kinds_build_at_width() {
        for kind in [
            TpgKind::Adder,
            TpgKind::Subtracter,
            TpgKind::Multiplier,
            TpgKind::Lfsr,
            TpgKind::MultiPolyLfsr,
            TpgKind::Weighted,
        ] {
            let g = kind.build(24);
            assert_eq!(g.width(), 24, "{kind}");
        }
    }

    #[test]
    fn matrix_build_parse_roundtrip() {
        for mb in [MatrixBuild::PerRow, MatrixBuild::Batched, MatrixBuild::Auto] {
            assert_eq!(MatrixBuild::parse(mb.name()), Ok(mb));
        }
        assert!(MatrixBuild::parse("perrow").is_err());
        assert_eq!(
            FlowConfig::new(TpgKind::Adder)
                .with_matrix_build(MatrixBuild::Batched)
                .matrix_build,
            MatrixBuild::Batched
        );
        assert_eq!(
            FlowConfig::new(TpgKind::Adder).matrix_build,
            MatrixBuild::Auto
        );
    }

    #[test]
    fn sweep_engine_parse_roundtrip() {
        for se in [
            SweepEngine::PerTau,
            SweepEngine::FirstDetection,
            SweepEngine::Auto,
        ] {
            assert_eq!(SweepEngine::parse(se.name()), Ok(se));
        }
        assert!(SweepEngine::parse("pertau").is_err());
        assert_eq!(
            FlowConfig::new(TpgKind::Adder).sweep_engine,
            SweepEngine::Auto
        );
        assert_eq!(
            FlowConfig::new(TpgKind::Adder)
                .with_sweep_engine(SweepEngine::FirstDetection)
                .sweep_engine,
            SweepEngine::FirstDetection
        );
    }

    #[test]
    fn simd_width_parse_roundtrip() {
        for sw in SimdWidth::ALL {
            assert_eq!(SimdWidth::parse(sw.name()), Some(sw));
        }
        assert_eq!(SimdWidth::parse("16"), None);
        assert_eq!(FlowConfig::new(TpgKind::Adder).simd_width, SimdWidth::Auto);
        let cfg = FlowConfig::new(TpgKind::Adder).with_simd_width(SimdWidth::W4);
        assert_eq!(cfg.simd_width, SimdWidth::W4);
        assert_eq!(cfg.atpg.simd_width, SimdWidth::W4);
    }

    #[test]
    fn tau_list_parsing_validates_dedupes_and_keeps_order() {
        assert_eq!(parse_tau_list("7, 0,7,3 ,0"), Ok(vec![7, 0, 3]));
        assert_eq!(
            parse_tau_list(&format!("0,{}", FlowConfig::MAX_TAU)),
            Ok(vec![0, FlowConfig::MAX_TAU])
        );
        assert!(parse_tau_list(" ").unwrap_err().contains("empty τ list"));
        assert!(parse_tau_list("1,,2")
            .unwrap_err()
            .contains("invalid τ value"));
        assert!(parse_tau_list(&format!("{}", FlowConfig::MAX_TAU + 1))
            .unwrap_err()
            .contains("exceeds the supported maximum"));
        // the boundary is exact, and the flag name lands in the message
        assert_eq!(
            check_tau("--tau", FlowConfig::MAX_TAU),
            Ok(FlowConfig::MAX_TAU)
        );
        assert!(check_tau("--tau", FlowConfig::MAX_TAU + 1)
            .unwrap_err()
            .starts_with("--tau:"));
    }

    #[test]
    fn max_tau_is_accepted() {
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(FlowConfig::MAX_TAU);
        assert_eq!(cfg.tau, FlowConfig::MAX_TAU);
    }

    #[test]
    #[should_panic(expected = "exceeds FlowConfig::MAX_TAU")]
    fn over_max_tau_panics() {
        let _ = FlowConfig::new(TpgKind::Adder).with_tau(FlowConfig::MAX_TAU + 1);
    }

    #[test]
    fn paper_order() {
        let names: Vec<&str> = TpgKind::PAPER.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["add", "sub", "mul"]);
    }
}
