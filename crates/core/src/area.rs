//! Area-overhead model.
//!
//! The paper's cost argument: the number of reseedings "strongly impacts
//! the applicability of the approach since it affects the area overhead"
//! needed to store the triplets (e.g. in a ROM). This module quantifies
//! that overhead for both storage schemes §4 discusses:
//!
//! * **per-triplet `τ`** — store `(δ, θ, τᵢ)` per triplet: shortest test
//!   time, widest ROM words;
//! * **common `τ`** — store only `(δ, θ)` and run every triplet for the
//!   longest trimmed length: narrower ROM, longer test.

use fbist_tpg::Triplet;

/// How evolution lengths are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AreaModel {
    /// One `τ` field per triplet (paper's default accounting).
    #[default]
    PerTripletTau,
    /// A single global `τ` (= max over the solution); only seeds stored.
    CommonTau,
}

/// ROM bits for one triplet under a given `τ`-field width.
///
/// ```
/// use fbist_tpg::Triplet;
/// use fbist_bits::BitVec;
/// use reseed_core::rom_bits_per_triplet;
///
/// let t = Triplet::new(BitVec::zeros(32), BitVec::zeros(32), 100);
/// assert_eq!(rom_bits_per_triplet(&t, 7), 71);
/// ```
pub fn rom_bits_per_triplet(triplet: &Triplet, tau_bits: usize) -> usize {
    triplet.rom_bits(tau_bits)
}

/// Total ROM bits for a reseeding solution.
///
/// For [`AreaModel::PerTripletTau`] the `τ` field is sized for the largest
/// trimmed `τ` in the solution; for [`AreaModel::CommonTau`] no per-triplet
/// `τ` is stored at all (the single global value lives in control logic).
///
/// Returns 0 for an empty solution.
///
/// ```
/// use fbist_tpg::Triplet;
/// use fbist_bits::BitVec;
/// use reseed_core::{solution_rom_bits, AreaModel};
///
/// let ts = vec![
///     Triplet::new(BitVec::zeros(8), BitVec::zeros(8), 3),
///     Triplet::new(BitVec::zeros(8), BitVec::zeros(8), 12),
/// ];
/// // per-triplet: 2 × (8+8+4) = 40; common τ: 2 × 16 = 32
/// assert_eq!(solution_rom_bits(&ts, AreaModel::PerTripletTau), 40);
/// assert_eq!(solution_rom_bits(&ts, AreaModel::CommonTau), 32);
/// ```
pub fn solution_rom_bits(triplets: &[Triplet], model: AreaModel) -> usize {
    if triplets.is_empty() {
        return 0;
    }
    match model {
        AreaModel::PerTripletTau => {
            let max_tau = triplets.iter().map(Triplet::tau).max().unwrap_or(0);
            let tau_bits = bits_for(max_tau);
            triplets.iter().map(|t| t.rom_bits(tau_bits)).sum()
        }
        AreaModel::CommonTau => triplets.iter().map(|t| t.rom_bits(0)).sum(),
    }
}

/// Bits needed to represent `value` (at least 1).
fn bits_for(value: usize) -> usize {
    (usize::BITS - value.leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_bits::BitVec;

    fn t(width: usize, tau: usize) -> Triplet {
        Triplet::new(BitVec::zeros(width), BitVec::zeros(width), tau)
    }

    #[test]
    fn per_triplet_accounts_tau_field() {
        let sol = vec![t(16, 5), t(16, 200)];
        // max τ = 200 → 8 bits; 2 × (16+16+8) = 80
        assert_eq!(solution_rom_bits(&sol, AreaModel::PerTripletTau), 80);
    }

    #[test]
    fn common_tau_is_smaller() {
        let sol = vec![t(16, 5), t(16, 200), t(16, 31)];
        assert!(
            solution_rom_bits(&sol, AreaModel::CommonTau)
                < solution_rom_bits(&sol, AreaModel::PerTripletTau)
        );
    }

    #[test]
    fn empty_solution_is_free() {
        assert_eq!(solution_rom_bits(&[], AreaModel::PerTripletTau), 0);
        assert_eq!(solution_rom_bits(&[], AreaModel::CommonTau), 0);
    }

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }
}
