//! GATSBY-style genetic-algorithm reseeding — the Table 1 baseline.
//!
//! GATSBY ("Genetic Algorithm based Test Synthesis tool for BIST
//! applications", refs \[7\]\[8\] of the paper) computes reseedings by
//! evolving `(δ, θ)` chromosomes with a fault-simulation fitness and
//! appending the best triplet round after round until the target coverage
//! is reached. The paper's criticism — "since the GATSBY computation
//! process strongly relies on simulation, the approach is not applicable
//! to large circuits" — is reproduced here quite literally: every fitness
//! evaluation is a fault simulation of a full `τ + 1`-pattern sequence.
//!
//! This module implements that sequential-GA loop so Table 1's comparison
//! columns can be regenerated. It shares the TPG model and the fault
//! simulator with the set-covering flow, so the two methods compete on
//! identical ground.

use fbist_bits::BitVec;
use fbist_fault::{FaultId, FaultList, FaultSimulator};
use fbist_netlist::Netlist;
use fbist_sim::SimError;
use fbist_tpg::{PatternGenerator, Triplet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::TpgKind;

/// GA parameters.
#[derive(Debug, Clone)]
pub struct GatsbyConfig {
    /// TPG to drive.
    pub tpg: TpgKind,
    /// Evolution length for every triplet.
    pub tau: usize,
    /// Chromosomes per generation.
    pub population: usize,
    /// Generations per reseeding round.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation: f64,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Stop after this many consecutive rounds without new detections.
    pub stall_rounds: usize,
    /// Hard cap on reseeding rounds.
    pub max_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the fitness evaluations (`0` = global default).
    /// Purely a throughput knob — every value computes the same result.
    pub jobs: usize,
}

impl Default for GatsbyConfig {
    fn default() -> Self {
        GatsbyConfig {
            tpg: TpgKind::Adder,
            tau: 31,
            population: 24,
            generations: 12,
            mutation: 0.02,
            tournament: 3,
            stall_rounds: 8,
            max_rounds: 256,
            seed: 0x6A75_BEEF,
            jobs: 0,
        }
    }
}

/// Result of a GATSBY run.
#[derive(Debug, Clone)]
pub struct GatsbyResult {
    /// The reseeding solution, in the order the GA appended it.
    pub triplets: Vec<Triplet>,
    /// Global test length (trimmed per triplet like the flow's accounting).
    pub test_length: usize,
    /// Faults of the target list covered.
    pub covered: usize,
    /// Target list size.
    pub target_faults: usize,
    /// Total fault-simulation calls spent (the paper's cost metric).
    pub fault_sim_calls: usize,
}

impl GatsbyResult {
    /// Coverage over the target list in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.target_faults == 0 {
            1.0
        } else {
            self.covered as f64 / self.target_faults as f64
        }
    }

    /// `true` if every target fault was covered (GATSBY does not always
    /// get there — neither did the original on every circuit).
    pub fn complete(&self) -> bool {
        self.covered == self.target_faults
    }

    /// Number of reseedings.
    pub fn triplet_count(&self) -> usize {
        self.triplets.len()
    }
}

/// The sequential-GA reseeding engine.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::FaultList;
/// use reseed_core::{Gatsby, GatsbyConfig};
///
/// let n = embedded::c17();
/// let faults = FaultList::collapsed(&n);
/// let res = Gatsby::new(&n)?.run(&faults, &GatsbyConfig::default());
/// assert!(res.complete());
/// assert!(res.fault_sim_calls > 100); // simulation-hungry by design
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Gatsby {
    netlist: Netlist,
    fsim: FaultSimulator,
}

impl Gatsby {
    /// Creates the engine for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for sequential/invalid netlists.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Ok(Gatsby {
            netlist: netlist.clone(),
            fsim: FaultSimulator::new(netlist)?,
        })
    }

    /// Runs the sequential GA against the target fault list.
    pub fn run(&self, target: &FaultList, config: &GatsbyConfig) -> GatsbyResult {
        let width = self.netlist.inputs().len();
        let tpg = config.tpg.build(width);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut remaining_ids: Vec<FaultId> = target.iter().map(|(id, _)| id).collect();
        let mut triplets = Vec::new();
        let mut test_length = 0usize;
        let mut covered = 0usize;
        let mut sim_calls = 0usize;
        let mut stall = 0usize;

        for _round in 0..config.max_rounds {
            if remaining_ids.is_empty() || stall >= config.stall_rounds {
                break;
            }
            let remaining = target.subset(&remaining_ids);

            // ---- one GA round: evolve (δ, θ) for incremental coverage ---
            let mut population: Vec<(BitVec, BitVec)> = (0..config.population)
                .map(|_| {
                    (
                        BitVec::random_with(width, &mut || rng.gen()),
                        BitVec::random_with(width, &mut || rng.gen()),
                    )
                })
                .collect();
            let mut fitness: Vec<usize> = Vec::new();
            let mut best: Option<(usize, Triplet, fbist_fault::FaultSimResult)> = None;

            for _gen in 0..config.generations {
                fitness.clear();
                // Parallel region: the fitness of each chromosome is an
                // independent fault simulation and draws no RNG — all
                // randomness (population init, selection, crossover,
                // mutation) stays in the sequential GA loop around it.
                // Folding the results in chromosome order reproduces the
                // sequential first-strict-max `best` exactly.
                let evaluated = mini_rayon::par_map_indexed(config.jobs, population.len(), |i| {
                    let (delta, theta) = &population[i];
                    let triplet = Triplet::new(delta.clone(), theta.clone(), config.tau);
                    let ts = tpg.expand(&triplet);
                    let res = self.fsim.run(&ts, &remaining);
                    let fit = res.detected_count();
                    (fit, triplet, res)
                });
                sim_calls += evaluated.len();
                for (fit, triplet, res) in evaluated {
                    if best.as_ref().is_none_or(|(b, _, _)| fit > *b) {
                        best = Some((fit, triplet, res));
                    }
                    fitness.push(fit);
                }
                // next generation: tournament selection + uniform crossover
                // + bit-flip mutation
                let mut next = Vec::with_capacity(population.len());
                while next.len() < population.len() {
                    let a = self.tournament(&mut rng, &fitness, config.tournament);
                    let b = self.tournament(&mut rng, &fitness, config.tournament);
                    let child = self.crossover(&mut rng, &population[a], &population[b]);
                    next.push(self.mutate(&mut rng, child, config.mutation));
                }
                population = next;
            }

            // ---- append the round's best triplet -------------------------
            let (fit, triplet, res) = best.expect("population non-empty");
            if fit == 0 {
                stall += 1;
                continue;
            }
            stall = 0;
            covered += fit;
            let useful = res.useful_prefix_len().max(1);
            test_length += useful;
            triplets.push(triplet.with_tau(useful - 1));
            let mut next_remaining = Vec::with_capacity(remaining_ids.len() - fit);
            for (sub, &orig) in remaining_ids.iter().enumerate() {
                if !res.detected.get(sub) {
                    next_remaining.push(orig);
                }
            }
            remaining_ids = next_remaining;
        }

        GatsbyResult {
            triplets,
            test_length,
            covered,
            target_faults: target.len(),
            fault_sim_calls: sim_calls,
        }
    }

    fn tournament(&self, rng: &mut StdRng, fitness: &[usize], k: usize) -> usize {
        let mut best = rng.gen_range(0..fitness.len());
        for _ in 1..k {
            let cand = rng.gen_range(0..fitness.len());
            if fitness[cand] > fitness[best] {
                best = cand;
            }
        }
        best
    }

    fn crossover(
        &self,
        rng: &mut StdRng,
        a: &(BitVec, BitVec),
        b: &(BitVec, BitVec),
    ) -> (BitVec, BitVec) {
        let width = a.0.width();
        let mask = BitVec::random_with(width, &mut || rng.gen());
        let mix = |x: &BitVec, y: &BitVec| -> BitVec { &(x & &mask) | &(y & &!&mask) };
        (mix(&a.0, &b.0), mix(&a.1, &b.1))
    }

    fn mutate(&self, rng: &mut StdRng, mut c: (BitVec, BitVec), rate: f64) -> (BitVec, BitVec) {
        let width = c.0.width();
        for i in 0..width {
            if rng.gen_bool(rate) {
                c.0.toggle(i);
            }
            if rng.gen_bool(rate) {
                c.1.toggle(i);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::embedded;

    #[test]
    fn c17_reaches_full_coverage() {
        let n = embedded::c17();
        let faults = FaultList::collapsed(&n);
        let res = Gatsby::new(&n)
            .unwrap()
            .run(&faults, &GatsbyConfig::default());
        assert!(res.complete(), "coverage {}", res.coverage());
        assert!(res.triplet_count() >= 1);
        assert!(res.test_length >= res.triplet_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let n = embedded::c17();
        let faults = FaultList::collapsed(&n);
        let g = Gatsby::new(&n).unwrap();
        let cfg = GatsbyConfig::default();
        let a = g.run(&faults, &cfg);
        let b = g.run(&faults, &cfg);
        assert_eq!(a.triplets, b.triplets);
        assert_eq!(a.fault_sim_calls, b.fault_sim_calls);
    }

    #[test]
    fn result_invariant_in_jobs() {
        let n = embedded::c17();
        let faults = FaultList::collapsed(&n);
        let g = Gatsby::new(&n).unwrap();
        let serial = g.run(
            &faults,
            &GatsbyConfig {
                jobs: 1,
                ..GatsbyConfig::default()
            },
        );
        for jobs in [2, 8] {
            let par = g.run(
                &faults,
                &GatsbyConfig {
                    jobs,
                    ..GatsbyConfig::default()
                },
            );
            assert_eq!(par.triplets, serial.triplets, "jobs={jobs}");
            assert_eq!(par.test_length, serial.test_length, "jobs={jobs}");
            assert_eq!(par.fault_sim_calls, serial.fault_sim_calls, "jobs={jobs}");
        }
    }

    #[test]
    fn simulation_cost_grows_with_population() {
        let n = embedded::c17();
        let faults = FaultList::collapsed(&n);
        let g = Gatsby::new(&n).unwrap();
        let small = g.run(
            &faults,
            &GatsbyConfig {
                population: 8,
                generations: 4,
                ..GatsbyConfig::default()
            },
        );
        let large = g.run(
            &faults,
            &GatsbyConfig {
                population: 32,
                generations: 8,
                ..GatsbyConfig::default()
            },
        );
        assert!(large.fault_sim_calls > small.fault_sim_calls);
    }

    #[test]
    fn empty_target_is_trivially_complete() {
        let n = embedded::c17();
        let res = Gatsby::new(&n)
            .unwrap()
            .run(&FaultList::new(), &GatsbyConfig::default());
        assert!(res.complete());
        assert_eq!(res.triplet_count(), 0);
    }
}
