//! Independent verification of reseeding solutions.
//!
//! A [`ReseedingReport`] *claims* that its triplets cover the target fault
//! list. This module re-establishes that claim from scratch — fresh TPG,
//! fresh fault simulator, re-derived fault list — so a user (or a CI gate)
//! never has to trust the flow's internal bookkeeping. This is the
//! programmatic form of the "verification replay" the examples perform.

use fbist_fault::{FaultList, FaultSimulator};
use fbist_netlist::Netlist;
use fbist_sim::SimError;

use crate::config::{FlowConfig, TpgKind};
use crate::report::ReseedingReport;

/// Outcome of [`verify_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    /// Faults of the re-derived target list covered by the replayed
    /// solution.
    pub covered: usize,
    /// Size of the re-derived target list.
    pub target: usize,
    /// Total patterns replayed (must equal the report's test length).
    pub patterns: usize,
    /// `true` if the report's test length matches the replay.
    pub length_consistent: bool,
}

impl Verification {
    /// `true` when the solution fully covers the re-derived fault list and
    /// the bookkeeping is consistent.
    pub fn passed(&self) -> bool {
        self.covered == self.target && self.length_consistent
    }
}

/// Replays a report's triplets through a freshly built TPG and fault
/// simulator against a caller-supplied target fault list.
///
/// Use this form when the target list is already known (it avoids the
/// ATPG re-run of [`verify_report`]).
///
/// # Errors
///
/// Propagates [`SimError`] for invalid/sequential netlists.
pub fn verify_against(
    netlist: &Netlist,
    report: &ReseedingReport,
    tpg: TpgKind,
    target: &FaultList,
) -> Result<Verification, SimError> {
    let generator = tpg.build(netlist.inputs().len());
    let mut patterns = Vec::with_capacity(report.test_length());
    for sel in &report.selected {
        patterns.extend(generator.expand(&sel.triplet));
    }
    let fsim = FaultSimulator::new(netlist)?;
    let covered = fsim.detects(&patterns, target).count_ones();
    Ok(Verification {
        covered,
        target: target.len(),
        patterns: patterns.len(),
        length_consistent: patterns.len() == report.test_length(),
    })
}

/// Fully independent verification: re-derives the target fault list `F`
/// with a fresh ATPG run under `config`, then replays the report.
///
/// # Errors
///
/// Propagates [`SimError`] for invalid/sequential netlists.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use reseed_core::{verify_report, FlowConfig, ReseedingFlow, TpgKind};
///
/// let netlist = embedded::c17();
/// let config = FlowConfig::new(TpgKind::Adder).with_tau(7);
/// let report = ReseedingFlow::new(&netlist)?.run(&config);
/// let v = verify_report(&netlist, &report, &config)?;
/// assert!(v.passed());
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
pub fn verify_report(
    netlist: &Netlist,
    report: &ReseedingReport,
    config: &FlowConfig,
) -> Result<Verification, SimError> {
    let universe = FaultList::collapsed(netlist);
    let atpg = fbist_atpg::Atpg::new(netlist)?;
    let result = atpg.run(&universe, &config.atpg);
    let target = universe.subset(&result.detected_ids());
    verify_against(netlist, report, config.tpg, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::ReseedingFlow;
    use fbist_netlist::embedded;

    #[test]
    fn verifies_a_correct_report() {
        let n = embedded::c17();
        let cfg = FlowConfig::new(TpgKind::Subtracter).with_tau(5);
        let report = ReseedingFlow::new(&n).unwrap().run(&cfg);
        let v = verify_report(&n, &report, &cfg).unwrap();
        assert!(v.passed(), "{v:?}");
        assert_eq!(v.patterns, report.test_length());
    }

    #[test]
    fn detects_a_corrupted_report() {
        let n = embedded::c17();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(7);
        let mut report = ReseedingFlow::new(&n).unwrap().run(&cfg);
        // sabotage: drop a triplet but keep the claim
        let removed = report.selected.pop().expect("non-empty solution");
        report.covered_faults -= removed.new_faults;
        let v = verify_report(&n, &report, &cfg).unwrap();
        assert!(!v.passed(), "verification must catch the missing triplet");
        assert!(v.covered < v.target);
    }

    #[test]
    fn detects_inconsistent_length() {
        let n = embedded::c17();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(7);
        let mut report = ReseedingFlow::new(&n).unwrap().run(&cfg);
        // sabotage the bookkeeping only
        report.selected[0].test_length += 1;
        let v = verify_report(&n, &report, &cfg).unwrap();
        assert!(!v.length_consistent);
        assert!(!v.passed());
    }

    #[test]
    fn wrong_tpg_kind_fails() {
        // replaying an adder solution through a multiplier must not cover
        let n = embedded::c17();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(7);
        let report = ReseedingFlow::new(&n).unwrap().run(&cfg);
        let universe = FaultList::collapsed(&n);
        let atpg = fbist_atpg::Atpg::new(&n).unwrap();
        let target = universe.subset(&atpg.run(&universe, &cfg.atpg).detected_ids());
        let v = verify_against(&n, &report, TpgKind::Multiplier, &target).unwrap();
        // pattern 0 of each triplet is θ either way, so partial coverage
        // remains, but the evolved patterns differ; on c17's single-triplet
        // solutions this may or may not drop coverage — only assert that
        // verification runs and reports consistently.
        assert_eq!(v.patterns, report.test_length());
        assert!(v.covered <= v.target);
    }
}
