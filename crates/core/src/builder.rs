//! The Initial Reseeding Builder (paper §3.1).
//!
//! Builds the starting solution `T` — one triplet per ATPG pattern — and
//! the Detection Matrix by fault-simulating each triplet's expanded test
//! set against the target fault list `F`.

use std::sync::atomic::{AtomicU64, Ordering};

use fbist_atpg::{Atpg, AtpgResult};
use fbist_bits::{pack, BitVec};
use fbist_fault::{BatchPlan, FaultList, FaultSimulator};
use fbist_netlist::Netlist;
use fbist_setcover::{DetectionMatrix, FirstDetectionMatrix};
use fbist_sim::SimError;
use fbist_tpg::{PatternGenerator, Triplet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{FlowConfig, MatrixBuild};
use fbist_bits::SimdWidth;

/// The simulation-independent half of an [`InitialReseeding`]: one shared
/// ATPG run and the target fault list it defines.
///
/// The τ-sweep builds this once and derives every point's triplets and
/// Detection Matrix from it — re-running ATPG per τ would change nothing
/// (the run does not depend on `τ`) and waste the sweep's dominant
/// fixed cost.
#[derive(Debug)]
pub struct AtpgBase {
    /// The raw ATPG outcome (pattern set, coverage, untestable faults…).
    pub atpg: AtpgResult,
    /// The target fault list `F` (the faults `ATPGTS` covers).
    pub target_faults: FaultList,
    /// The collapsed universe `F` was selected from.
    pub universe_size: usize,
}

/// The initial reseeding `T` plus everything derived while building it.
#[derive(Debug)]
pub struct InitialReseeding {
    /// One triplet per ATPG pattern (`θᵢ = pᵢ`, random `δᵢ`, common `τ`).
    pub triplets: Vec<Triplet>,
    /// The Detection Matrix: rows = triplets, columns = faults of `F`.
    pub matrix: DetectionMatrix,
    /// The target fault list `F` (the faults `ATPGTS` covers).
    pub target_faults: FaultList,
    /// The collapsed universe `F` was selected from.
    pub universe_size: usize,
    /// The raw ATPG outcome (pattern set, coverage, untestable faults…).
    pub atpg: AtpgResult,
}

impl InitialReseeding {
    /// Number of initial triplets `M` (= `|ATPGTS|`).
    pub fn triplet_count(&self) -> usize {
        self.triplets.len()
    }
}

/// Builder for [`InitialReseeding`]. See the module docs.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use reseed_core::{FlowConfig, InitialReseedingBuilder, TpgKind};
///
/// let netlist = embedded::c17();
/// let config = FlowConfig::new(TpgKind::Adder).with_tau(3);
/// let initial = InitialReseedingBuilder::new(&netlist)?.build(&config);
/// assert_eq!(initial.matrix.rows(), initial.triplet_count());
/// assert_eq!(initial.matrix.cols(), initial.target_faults.len());
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct InitialReseedingBuilder {
    netlist: Netlist,
    atpg: Atpg,
    fsim: FaultSimulator,
    /// Matrix-simulation pass counter (see
    /// [`matrix_sim_passes`](Self::matrix_sim_passes)). Atomic because the
    /// builder is shared by reference across the sweep's worker pool.
    matrix_passes: AtomicU64,
}

impl InitialReseedingBuilder {
    /// Creates a builder for a combinational netlist (apply
    /// [`full_scan`](fbist_netlist::full_scan) to sequential ones first).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] or [`SimError::Netlist`]
    /// like the underlying engines.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Ok(InitialReseedingBuilder {
            netlist: netlist.clone(),
            atpg: Atpg::new(netlist)?,
            fsim: FaultSimulator::new(netlist)?,
            matrix_passes: AtomicU64::new(0),
        })
    }

    /// Runs ATPG and derives the target fault list — the shared,
    /// τ-independent base of every initial reseeding.
    ///
    /// This is the paper's (ATPGTS, F): `F` is defined as the faults the
    /// ATPG test set covers — untestable/aborted faults are excluded,
    /// exactly like TestGen's "guarantees complete covering of F". The
    /// run depends only on the netlist and `config.atpg`, never on `τ`,
    /// which is what lets the τ-sweep build it once.
    pub fn atpg_base(&self, config: &FlowConfig) -> AtpgBase {
        let universe = FaultList::collapsed(&self.netlist);
        // the flow-level worker count reaches the PODEM phase unless the
        // ATPG fragment pins its own; either way `jobs` never enters the
        // `atpg` stage key — it cannot change a single result bit
        let mut acfg = config.atpg.clone();
        if acfg.jobs == 0 {
            acfg.jobs = config.jobs;
        }
        let atpg = self.atpg.run(&universe, &acfg);
        let target_faults = universe.subset(&atpg.detected_ids());
        AtpgBase {
            atpg,
            target_faults,
            universe_size: universe.len(),
        }
    }

    /// Runs ATPG and constructs the initial reseeding and Detection Matrix
    /// for the configured TPG and `τ`.
    pub fn build(&self, config: &FlowConfig) -> InitialReseeding {
        // 1. the shared ATPG base (ATPGTS, F)
        let base = self.atpg_base(config);

        // 2. One triplet per ATPG pattern, expanded and fault-simulated.
        let tpg = config.tpg.build(self.netlist.inputs().len());
        let (triplets, matrix) = self.matrix_for(
            &tpg,
            &base.atpg.patterns,
            &base.target_faults,
            config.tau,
            config.seed,
            config.jobs,
            config.matrix_build,
            config.simd_width,
        );

        InitialReseeding {
            triplets,
            matrix,
            target_faults: base.target_faults,
            universe_size: base.universe_size,
            atpg: base.atpg,
        }
    }

    /// Triplets handed to one pool dispatch: large enough to amortise the
    /// scheduling overhead, small enough to load-balance rows whose fanout
    /// cones differ wildly in simulation cost.
    const ROW_CHUNK: usize = 4;

    /// Shared blocks handed to one pool dispatch of the batched engine. A
    /// shared block is a full 64-lane fault-simulation unit (good-circuit
    /// eval + one cone propagation per undropped fault), so a few of them
    /// already amortise the dispatch; keeping the chunk small load-balances
    /// blocks whose masked-dropping savings differ.
    const BLOCK_CHUNK: usize = 4;

    /// Builds triplets and the Detection Matrix for an explicit pattern
    /// list and fault list (used by the τ-sweep to reuse one ATPG run).
    ///
    /// `jobs` fans the construction out across the pool (`0` = global
    /// default) and `build` picks the engine. Every RNG draw happens in
    /// the serial prologue below, so the triplet stream — and therefore
    /// the matrix — is a pure function of `(seed, patterns, tau)`: the
    /// result is bit-identical for every job count *and* every engine.
    ///
    /// The per-row engine fans triplet chunks out and fault-simulates each
    /// row on its own. The batched engine plans the rows' expanded pattern
    /// streams into shared 64-lane blocks ([`BatchPlan`]), fans the
    /// *blocks* out, and reassembles rows in index order from the
    /// partial detection sets each block range reports — the union over
    /// any partition of the block axis is the same, so worker count and
    /// scheduling can never change a bit.
    #[allow(clippy::too_many_arguments)]
    pub fn matrix_for(
        &self,
        tpg: &dyn PatternGenerator,
        patterns: &[BitVec],
        target_faults: &FaultList,
        tau: usize,
        seed: u64,
        jobs: usize,
        build: MatrixBuild,
        simd_width: SimdWidth,
    ) -> (Vec<Triplet>, DetectionMatrix) {
        self.matrix_passes.fetch_add(1, Ordering::Relaxed);
        let triplets = derive_triplets(tpg, patterns, tau, seed);

        let matrix = if use_batched(build, patterns.len(), tau) {
            // Batched engine: expand every row up front (workers address
            // rows by block range, so the whole stream must be
            // materialised), then fan shared blocks out.
            let rows: Vec<Vec<BitVec>> =
                mini_rayon::par_chunks_map(jobs, &triplets, Self::ROW_CHUNK, |t| tpg.expand(t));
            self.batched_matrix(&rows, target_faults, jobs, simd_width)
        } else {
            // Per-row engine: expansion fused with the fault simulation,
            // one call per triplet, rows assembled in triplet index order
            // (only ROW_CHUNK rows of patterns live at a time). The SIMD
            // width resolves per row (`τ + 1` lanes).
            let bits = mini_rayon::par_chunks_map(jobs, &triplets, Self::ROW_CHUNK, |t| {
                let expanded = tpg.expand(t);
                let width = simd_width.resolve(expanded.len());
                self.fsim.detects_wide(&expanded, target_faults, width)
            });
            DetectionMatrix::from_rows(target_faults.len(), bits)
        };
        (triplets, matrix)
    }

    /// The shared half of both batched builds: plan shared blocks from
    /// the row lengths, fan *block ranges* of [`Self::BLOCK_CHUNK`] out
    /// over the pool, and concatenate the per-range `(row, partial)`
    /// results. Keeping plan construction and range partitioning in one
    /// place is what makes the "same plan, same partitioning" half of the
    /// first-detection bit-identity contract hold by construction — the
    /// detection and first-detection builds differ only in the simulator
    /// call and the merge.
    fn batched_partials<T: Send>(
        &self,
        rows: &[Vec<BitVec>],
        jobs: usize,
        simd_width: SimdWidth,
        simulate: &BlockRangeSim<'_, T>,
    ) -> Vec<(usize, T)> {
        let lengths: Vec<usize> = rows.iter().map(Vec::len).collect();
        let total_lanes: usize = lengths.iter().sum();
        let plan = BatchPlan::with_width(&lengths, simd_width.resolve(total_lanes));
        let ranges = plan.block_count().div_ceil(Self::BLOCK_CHUNK);
        let partials = mini_rayon::par_map_indexed(jobs, ranges, |i| {
            let lo = i * Self::BLOCK_CHUNK;
            let hi = (lo + Self::BLOCK_CHUNK).min(plan.block_count());
            simulate(&plan, lo..hi)
        });
        partials.into_iter().flatten().collect()
    }

    /// The cross-row batched build: plan shared blocks, fan *block ranges*
    /// out over the pool, and OR the per-range row partials into the
    /// matrix (any partition yields the same union).
    fn batched_matrix(
        &self,
        rows: &[Vec<BitVec>],
        target_faults: &FaultList,
        jobs: usize,
        simd_width: SimdWidth,
    ) -> DetectionMatrix {
        let partials = self.batched_partials(rows, jobs, simd_width, &|plan, range| {
            self.fsim.detects_blocks(plan, range, rows, target_faults)
        });
        DetectionMatrix::from_partial_rows(rows.len(), target_faults.len(), partials)
    }

    /// Builds triplets at `tau_max` and the **first-detection matrix**:
    /// per `(triplet, fault)` pair, the earliest expanded-pattern index
    /// that detects — one simulation pass from which the Detection Matrix
    /// of *every* `τ ≤ tau_max` is derivable by thresholding
    /// ([`FirstDetectionMatrix::at_tau`]).
    ///
    /// The serial RNG prologue, the engine selection and the
    /// block-range fan-out are exactly [`matrix_for`](Self::matrix_for)'s
    /// — same seeds, same plan, same partitioning — so the triplets equal
    /// `matrix_for(.., τ, ..)`'s up to their `τ` field, and
    /// `first_detection_matrix_for(.., tau_max, ..).1.at_tau(τ)` is
    /// bit-identical to `matrix_for(.., τ, ..).1` for every `τ ≤ tau_max`,
    /// every job count and every engine. Per-range partials are merged
    /// with an elementwise `min`, which is partition-invariant like the
    /// detection union.
    #[allow(clippy::too_many_arguments)]
    pub fn first_detection_matrix_for(
        &self,
        tpg: &dyn PatternGenerator,
        patterns: &[BitVec],
        target_faults: &FaultList,
        tau_max: usize,
        seed: u64,
        jobs: usize,
        build: MatrixBuild,
        simd_width: SimdWidth,
    ) -> (Vec<Triplet>, FirstDetectionMatrix) {
        self.matrix_passes.fetch_add(1, Ordering::Relaxed);
        let triplets = derive_triplets(tpg, patterns, tau_max, seed);

        let firsts: Vec<Vec<u32>> = if use_batched(build, patterns.len(), tau_max) {
            let rows: Vec<Vec<BitVec>> =
                mini_rayon::par_chunks_map(jobs, &triplets, Self::ROW_CHUNK, |t| tpg.expand(t));
            let partials = self.batched_partials(&rows, jobs, simd_width, &|plan, range| {
                self.fsim
                    .first_detections_blocks(plan, range, &rows, target_faults)
            });
            let mut firsts =
                vec![vec![FaultSimulator::NO_DETECTION; target_faults.len()]; rows.len()];
            fbist_fault::merge_first_detections(&mut firsts, partials);
            firsts
        } else {
            mini_rayon::par_chunks_map(jobs, &triplets, Self::ROW_CHUNK, |t| {
                let expanded = tpg.expand(t);
                let width = simd_width.resolve(expanded.len());
                self.fsim
                    .run_wide(&expanded, target_faults, width)
                    .first_detection
                    .iter()
                    .map(|o| o.map_or(FaultSimulator::NO_DETECTION, |v| v))
                    .collect()
            })
        };
        let matrix = FirstDetectionMatrix::from_rows(target_faults.len(), firsts);
        (triplets, matrix)
    }

    /// Number of Detection-Matrix simulation passes this builder has run
    /// ([`matrix_for`](Self::matrix_for) and
    /// [`first_detection_matrix_for`](Self::first_detection_matrix_for)
    /// each count one, whatever their engine or job count).
    ///
    /// This is the sweep's efficiency contract made observable: a per-τ
    /// sweep pays one pass per point, the
    /// first-detection sweep pays exactly **one** pass total — asserted
    /// in `tests/sweep_equivalence.rs` together with the
    /// [`LaneOccupancy`](fbist_sim::LaneOccupancy) counters.
    pub fn matrix_sim_passes(&self) -> u64 {
        self.matrix_passes.load(Ordering::Relaxed)
    }

    /// Resets the matrix-pass counter to zero.
    pub fn reset_matrix_sim_passes(&self) {
        self.matrix_passes.store(0, Ordering::Relaxed);
    }

    /// The underlying fault simulator (shared with the flow for trimming).
    pub fn fault_simulator(&self) -> &FaultSimulator {
        &self.fsim
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

/// One block-range simulation call of the batched fan-out
/// ([`InitialReseedingBuilder::batched_partials`]): maps the shared plan
/// and a block range to per-row `(row, partial)` results.
type BlockRangeSim<'a, T> =
    dyn Fn(&BatchPlan, std::ops::Range<usize>) -> Vec<(usize, T)> + Sync + 'a;

/// Serial triplet prologue shared by both matrix builds: derive every
/// triplet (and thus consume the full RNG stream) before any worker
/// starts, in pattern order. Worker identity and completion order can
/// never leak into the δ values, and the stream does not depend on `tau`
/// (`seed_for` never reads it) — so triplets derived at different `τ`
/// differ *only* in their `τ` field, the keystone of the τ-sweep's
/// derive-don't-resimulate guarantee.
pub(crate) fn derive_triplets(
    tpg: &dyn PatternGenerator,
    patterns: &[BitVec],
    tau: usize,
    seed: u64,
) -> Vec<Triplet> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7129_55D1);
    let mut word = move || rng.gen::<u64>();
    patterns
        .iter()
        .map(|p| tpg.seed_for(p, &mut word).with_tau(tau))
        .collect()
}

/// Engine choice: [`MatrixBuild::Auto`] batches exactly when sharing
/// blocks across rows evaluates fewer of them than the per-row build —
/// always, unless every row fills whole 64-lane blocks exactly. Every
/// triplet expands to `τ + 1` patterns
/// ([`PatternGenerator::expand`]'s contract), so the decision needs only
/// the row count and `τ`, not the expanded patterns.
///
/// # Panics
///
/// Panics if `τ + 1` or the total lane count overflows `usize` — callers
/// going through [`FlowConfig::with_tau`] are bounded far below this by
/// [`FlowConfig::MAX_TAU`], but `matrix_for` takes a raw `usize`, so the
/// arithmetic is checked instead of wrapping silently in release builds.
fn use_batched(build: MatrixBuild, row_count: usize, tau: usize) -> bool {
    match build {
        MatrixBuild::PerRow => false,
        MatrixBuild::Batched => true,
        MatrixBuild::Auto => {
            let len = tau
                .checked_add(1)
                .expect("τ + 1 overflows usize — bound τ by FlowConfig::MAX_TAU");
            let total = row_count
                .checked_mul(len)
                .expect("total lane count overflows usize");
            let per_row = row_count * len.div_ceil(pack::BLOCK);
            total.div_ceil(pack::BLOCK) < per_row
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpgKind;
    use fbist_netlist::embedded;

    fn build(tpg: TpgKind, tau: usize) -> InitialReseeding {
        let n = embedded::c17();
        let cfg = FlowConfig::new(tpg).with_tau(tau);
        InitialReseedingBuilder::new(&n).unwrap().build(&cfg)
    }

    #[test]
    fn rows_cover_all_target_faults() {
        for tpg in [TpgKind::Adder, TpgKind::Lfsr, TpgKind::Weighted] {
            let init = build(tpg, 4);
            let all: Vec<usize> = (0..init.matrix.rows()).collect();
            assert!(
                init.matrix.is_cover(&all),
                "{tpg}: initial reseeding must cover F by construction"
            );
        }
    }

    #[test]
    fn tau_zero_matrix_is_pattern_dictionary() {
        // with τ=0 each row is exactly the detection set of its ATPG pattern
        let n = embedded::c17();
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(0);
        let b = InitialReseedingBuilder::new(&n).unwrap();
        let init = b.build(&cfg);
        let dict = b
            .fault_simulator()
            .dictionary(&init.atpg.patterns, &init.target_faults);
        for r in 0..init.matrix.rows() {
            for c in 0..init.matrix.cols() {
                assert_eq!(init.matrix.get(r, c), dict.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn larger_tau_never_loses_coverage_per_row() {
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        let cfg0 = FlowConfig::new(TpgKind::Adder).with_tau(0);
        let init0 = b.build(&cfg0);
        let cfg8 = FlowConfig::new(TpgKind::Adder).with_tau(8);
        let init8 = b.build(&cfg8);
        // row weights can only grow with τ (pattern 0 is identical)
        for r in 0..init0.matrix.rows() {
            assert!(
                init8.matrix.row_weight(r) >= init0.matrix.row_weight(r),
                "row {r}"
            );
        }
    }

    #[test]
    fn matrix_dimensions() {
        let init = build(TpgKind::Subtracter, 2);
        assert_eq!(init.matrix.rows(), init.atpg.patterns.len());
        assert_eq!(init.matrix.cols(), init.target_faults.len());
        assert!(init.universe_size >= init.target_faults.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(TpgKind::Adder, 3);
        let b = build(TpgKind::Adder, 3);
        assert_eq!(a.triplets, b.triplets);
        assert_eq!(a.matrix.row_major(), b.matrix.row_major());
    }

    #[test]
    fn matrix_is_bit_identical_for_every_engine() {
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        for tau in [0, 3, 9, 63, 64, 100] {
            let base = FlowConfig::new(TpgKind::Adder).with_tau(tau);
            let per_row = b.build(&base.clone().with_matrix_build(MatrixBuild::PerRow));
            for engine in [MatrixBuild::Batched, MatrixBuild::Auto] {
                let other = b.build(&base.clone().with_matrix_build(engine));
                assert_eq!(per_row.triplets, other.triplets, "τ={tau} {engine}");
                assert_eq!(
                    per_row.matrix.row_major(),
                    other.matrix.row_major(),
                    "τ={tau} {engine}: matrix differs from per-row"
                );
            }
        }
    }

    #[test]
    fn auto_engine_batches_only_when_blocks_shrink() {
        // τ+1 = 64 exactly: batching cannot reduce the block count
        assert!(!use_batched(MatrixBuild::Auto, 10, 63));
        // τ+1 = 4: 10 per-row blocks collapse into 1 shared block
        assert!(use_batched(MatrixBuild::Auto, 10, 3));
        // τ+1 = 65: the straddling lane makes sharing pay again
        assert!(use_batched(MatrixBuild::Auto, 10, 64));
        // explicit engines ignore the arithmetic
        assert!(use_batched(MatrixBuild::Batched, 10, 63));
        assert!(!use_batched(MatrixBuild::PerRow, 10, 3));
    }

    #[test]
    #[should_panic(expected = "τ + 1 overflows usize")]
    fn auto_engine_rejects_tau_overflow() {
        // pre-fix this wrapped to len = 0 in release builds and silently
        // picked the batched engine for a nonsense τ
        let _ = use_batched(MatrixBuild::Auto, 10, usize::MAX);
    }

    #[test]
    fn first_detection_matrix_thresholds_to_every_tau() {
        // one first-detection pass at τ_max must reproduce matrix_for's
        // triplets (up to the τ field) and matrix at every smaller τ, for
        // every engine
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder);
        let base = b.atpg_base(&cfg);
        let tpg = cfg.tpg.build(n.inputs().len());
        let tau_max = 9;
        for engine in [MatrixBuild::PerRow, MatrixBuild::Batched, MatrixBuild::Auto] {
            let (trip_max, fdm) = b.first_detection_matrix_for(
                tpg.as_ref(),
                &base.atpg.patterns,
                &base.target_faults,
                tau_max,
                cfg.seed,
                1,
                engine,
                SimdWidth::Auto,
            );
            for tau in [0usize, 1, 3, 9] {
                let (trip, matrix) = b.matrix_for(
                    tpg.as_ref(),
                    &base.atpg.patterns,
                    &base.target_faults,
                    tau,
                    cfg.seed,
                    1,
                    engine,
                    SimdWidth::Auto,
                );
                let derived: Vec<_> = trip_max.iter().map(|t| t.with_tau(tau)).collect();
                assert_eq!(trip, derived, "τ={tau} {engine}: triplets");
                assert_eq!(
                    matrix.row_major(),
                    fdm.at_tau(tau).row_major(),
                    "τ={tau} {engine}: thresholded matrix differs"
                );
            }
        }
    }

    #[test]
    fn first_detection_matrix_is_job_invariant() {
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        let cfg = FlowConfig::new(TpgKind::Adder);
        let base = b.atpg_base(&cfg);
        let tpg = cfg.tpg.build(n.inputs().len());
        let build = |jobs| {
            b.first_detection_matrix_for(
                tpg.as_ref(),
                &base.atpg.patterns,
                &base.target_faults,
                9,
                cfg.seed,
                jobs,
                MatrixBuild::Batched,
                SimdWidth::Auto,
            )
        };
        let serial = build(1);
        for jobs in [2, 4, 16] {
            assert_eq!(build(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn no_detection_sentinels_agree_across_crates() {
        // the simulator's sentinel feeds FirstDetectionMatrix::from_rows
        // unchanged — the two constants are one contract
        assert_eq!(
            FaultSimulator::NO_DETECTION,
            FirstDetectionMatrix::NO_DETECTION
        );
    }

    #[test]
    fn matrix_pass_counter_counts_builds() {
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        assert_eq!(b.matrix_sim_passes(), 0);
        let cfg = FlowConfig::new(TpgKind::Adder).with_tau(3);
        let _ = b.build(&cfg);
        assert_eq!(b.matrix_sim_passes(), 1);
        let base = b.atpg_base(&cfg);
        assert_eq!(b.matrix_sim_passes(), 1, "ATPG alone is not a pass");
        let tpg = cfg.tpg.build(n.inputs().len());
        let _ = b.first_detection_matrix_for(
            tpg.as_ref(),
            &base.atpg.patterns,
            &base.target_faults,
            7,
            cfg.seed,
            1,
            MatrixBuild::Auto,
            SimdWidth::Auto,
        );
        assert_eq!(b.matrix_sim_passes(), 2);
        b.reset_matrix_sim_passes();
        assert_eq!(b.matrix_sim_passes(), 0);
    }

    #[test]
    fn matrix_is_bit_identical_for_every_job_count() {
        let n = embedded::c17();
        let b = InitialReseedingBuilder::new(&n).unwrap();
        let base = FlowConfig::new(TpgKind::Adder).with_tau(9);
        let serial = b.build(&base.clone().with_jobs(1));
        for jobs in [2, 4, 16] {
            let par = b.build(&base.clone().with_jobs(jobs));
            assert_eq!(serial.triplets, par.triplets, "jobs={jobs}");
            assert_eq!(
                serial.matrix.row_major(),
                par.matrix.row_major(),
                "jobs={jobs}"
            );
        }
    }
}
