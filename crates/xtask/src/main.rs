//! Repo invariant lints, run as `cargo run -p xtask -- lint` (and as a
//! plain `cargo test -p xtask`, so the tier-1 suite enforces them too).
//!
//! Four invariants, chosen because nothing else in the build would catch
//! a quiet violation:
//!
//! 1. **`#![forbid(unsafe_code)]` in every first-party crate root.** The
//!    workspace lint table already forbids unsafe code, but a crate that
//!    drops the attribute *and* the `[lints] workspace = true` stanza
//!    would silently opt out; the attribute in the root is the local,
//!    greppable witness.
//! 2. **No `std::thread::spawn` outside `vendor/mini-rayon`.** All
//!    parallelism goes through the `mini-rayon` worker pool so the
//!    equivalence suites can pin every job count bit-identical; a stray
//!    hand-rolled thread would bypass the `FBIST_JOBS` knob and the
//!    deterministic splitting the suites rely on.
//! 3. **The throughput-knob exclusion list stays in sync.** Stage keys in
//!    `crates/core/src/stage.rs` deliberately exclude the knobs listed in
//!    its `THROUGHPUT_KNOBS` manifest, each justified by an equivalence
//!    suite that pins the knob bit-identical. The lint fails if a listed
//!    suite file disappears from `tests/`, or if a manifest knob's field
//!    name shows up inside a `Digest` call in the key-derivation code —
//!    either way the exclusion's justification has drifted from reality.
//! 4. **No hash-order dependence in result-affecting crates.** `HashMap`
//!    and `HashSet` iterate in a per-process randomized order; a stray
//!    iteration in `analyze`, `atpg`, `core`, `fault`, or `setcover`
//!    would make artifacts differ run to run, which the equivalence
//!    suites only catch if the nondeterminism happens to fire under the
//!    test inputs. Every use of a hashed container in those crates must
//!    carry a `determinism:` comment (same line or the comment block
//!    directly above) arguing why iteration order is never observed.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let failures = run_lints(&repo_root());
            if failures.is_empty() {
                println!("xtask lint: all repo invariants hold");
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("xtask lint: {f}");
                }
                eprintln!("xtask lint: {} invariant violation(s)", failures.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs every lint; returns one human-readable message per violation.
fn run_lints(root: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    lint_forbid_unsafe(root, &mut failures);
    lint_no_thread_spawn(root, &mut failures);
    lint_throughput_manifest(root, &mut failures);
    lint_no_hash_iteration(root, &mut failures);
    failures
}

// ------------------------------------------------- 1: forbid(unsafe_code)

fn lint_forbid_unsafe(root: &Path, failures: &mut Vec<String>) {
    for krate in first_party_crates(root, failures) {
        let lib = krate.join("src/lib.rs");
        let main = krate.join("src/main.rs");
        let crate_root = if lib.is_file() { lib } else { main };
        let Ok(text) = std::fs::read_to_string(&crate_root) else {
            failures.push(format!(
                "{}: crate has neither src/lib.rs nor src/main.rs",
                krate.display()
            ));
            continue;
        };
        if !text.contains("#![forbid(unsafe_code)]") {
            failures.push(format!(
                "{}: crate root is missing #![forbid(unsafe_code)]",
                crate_root.display()
            ));
        }
    }
}

fn first_party_crates(root: &Path, failures: &mut Vec<String>) -> Vec<PathBuf> {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        failures.push(format!("cannot read {}", crates_dir.display()));
        return Vec::new();
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    if dirs.len() < 10 {
        failures.push(format!(
            "only {} crates found under {} — workspace layout changed?",
            dirs.len(),
            crates_dir.display()
        ));
    }
    dirs
}

// ------------------------------------------------- 2: no raw thread spawns

fn lint_no_thread_spawn(root: &Path, failures: &mut Vec<String>) {
    // built at runtime so this source file cannot trip its own lint
    let needle: String = ["thread", "::", "spawn"].concat();
    let mut sources = Vec::new();
    for top in ["crates", "tests", "benches"] {
        collect_rs_files(&root.join(top), &mut sources);
    }
    for path in sources {
        // the lint binary itself may name the pattern in docs
        if path.starts_with(root.join("crates/xtask")) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if code.contains(&needle) || code.contains(".spawn(") {
                failures.push(format!(
                    "{}:{}: raw thread spawn — route parallelism through \
                     mini_rayon so job counts stay pinned bit-identical",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

// ------------------------------------------- 3: throughput-knob manifest

fn lint_throughput_manifest(root: &Path, failures: &mut Vec<String>) {
    let stage = root.join("crates/core/src/stage.rs");
    let Ok(text) = std::fs::read_to_string(&stage) else {
        failures.push(format!("cannot read {}", stage.display()));
        return;
    };
    let manifest = parse_manifest(&text);
    if manifest.is_empty() {
        failures.push(format!(
            "{}: THROUGHPUT_KNOBS manifest missing or empty — the stage-key \
             exclusion list must stay greppable",
            stage.display()
        ));
        return;
    }

    // Forward: every excluded knob's pinning suite must still exist.
    for (knob, suite) in &manifest {
        let suite_file = root.join("tests").join(format!("{suite}.rs"));
        if !suite_file.is_file() {
            failures.push(format!(
                "THROUGHPUT_KNOBS lists {knob:?} as pinned by {suite:?}, but \
                 tests/{suite}.rs does not exist — an unkeyed knob without a \
                 pinning equivalence suite can silently change results under \
                 a warm artifact store"
            ));
        }
    }

    // Backward: no manifest knob may be hashed into a stage key. The scan
    // covers every `d.<method>(...)` digest call outside comments; a knob
    // whose field name appears there is keyed, so it no longer belongs in
    // the exclusion manifest.
    for (i, line) in text.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("").trim_start();
        if !code.starts_with("d.") {
            continue;
        }
        for (knob, suite) in &manifest {
            let field = knob.rsplit('.').next().unwrap_or(knob);
            if code.contains(field) {
                failures.push(format!(
                    "{}:{}: digest call {code:?} mentions throughput knob \
                     {knob:?} (pinned by {suite}) — either remove it from \
                     the key derivation or drop it from THROUGHPUT_KNOBS",
                    stage.display(),
                    i + 1
                ));
            }
        }
    }
}

// ------------------------------------------- 4: no hash-order dependence

/// Crates whose outputs land in stage artifacts; hash-order leaks here
/// show up as run-to-run result drift under a warm artifact store.
const RESULT_AFFECTING_CRATES: &[&str] = &["analyze", "atpg", "core", "fault", "setcover"];

fn lint_no_hash_iteration(root: &Path, failures: &mut Vec<String>) {
    // built at runtime so this source file cannot trip its own lint
    let needles = [["Hash", "Map"].concat(), ["Hash", "Set"].concat()];
    let tag: String = ["determinism", ":"].concat();
    for krate in RESULT_AFFECTING_CRATES {
        let mut sources = Vec::new();
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut sources);
        for path in sources {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let code = line.split("//").next().unwrap_or("");
                if !needles.iter().any(|n| code.contains(n.as_str())) {
                    continue;
                }
                if line.contains(&tag) || preceding_comment_contains(&lines, i, &tag) {
                    continue;
                }
                failures.push(format!(
                    "{}:{}: hashed container in a result-affecting crate — \
                     iteration order is randomized per process; use a \
                     Vec/BTreeMap, or justify with a `// {tag} ...` comment \
                     proving the order is never observed",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
}

/// True when the contiguous `//` comment block directly above line `i`
/// mentions `needle`.
fn preceding_comment_contains(lines: &[&str], i: usize, needle: &str) -> bool {
    lines[..i]
        .iter()
        .rev()
        .take_while(|l| l.trim_start().starts_with("//"))
        .any(|l| l.contains(needle))
}

/// Extracts the `(knob, suite)` pairs from the `THROUGHPUT_KNOBS` array
/// by scanning the quoted string pairs between the declaration and the
/// closing `];`.
fn parse_manifest(text: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut in_manifest = false;
    for line in text.lines() {
        if line.contains("THROUGHPUT_KNOBS") && line.contains('[') {
            in_manifest = true;
            continue;
        }
        if in_manifest {
            if line.trim_start().starts_with("];") {
                break;
            }
            let strings: Vec<String> = quoted_strings(line);
            if strings.len() == 2 {
                pairs.push((strings[0].clone(), strings[1].clone()));
            }
        }
    }
    pairs
}

fn quoted_strings(line: &str) -> Vec<String> {
    let code = line.split("//").next().unwrap_or("");
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        out.push(tail[..end].to_owned());
        rest = &tail[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real lint over the real repo: `cargo test` enforces the
    /// invariants even where CI never runs the standalone binary.
    #[test]
    fn repo_invariants_hold() {
        let failures = run_lints(&repo_root());
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn manifest_parser_reads_pairs() {
        let src = r#"
            pub const THROUGHPUT_KNOBS: &[(&str, &str)] = &[
                ("jobs", "parallel_equivalence"),
                ("atpg.jobs", "atpg_equivalence"), // trailing comment
            ];
        "#;
        assert_eq!(
            parse_manifest(src),
            vec![
                ("jobs".to_owned(), "parallel_equivalence".to_owned()),
                ("atpg.jobs".to_owned(), "atpg_equivalence".to_owned()),
            ]
        );
    }

    #[test]
    fn quoted_strings_ignores_comments() {
        assert_eq!(
            quoted_strings(r#"("a", "b"), // ("c", "d")"#),
            vec!["a".to_owned(), "b".to_owned()]
        );
    }

    #[test]
    fn missing_suite_is_reported() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/core/src")).unwrap();
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        std::fs::write(
            dir.join("crates/core/src/stage.rs"),
            "pub const THROUGHPUT_KNOBS: &[(&str, &str)] = &[\n\
             (\"jobs\", \"no_such_suite\"),\n];\n",
        )
        .unwrap();
        let mut failures = Vec::new();
        lint_throughput_manifest(&dir, &mut failures);
        assert_eq!(failures.len(), 1, "{failures:#?}");
        assert!(failures[0].contains("no_such_suite"), "{failures:#?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unjustified_hash_container_is_reported() {
        let dir = std::env::temp_dir().join(format!("xtask-lint3-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/fault/src")).unwrap();
        std::fs::write(
            dir.join("crates/fault/src/lib.rs"),
            "use std::collections::HashMap;\n\
             // determinism: lookup-only, never iterated.\n\
             fn ok(m: &HashMap<u32, u32>) -> Option<u32> { m.get(&0).copied() }\n\
             fn bad() { let s = std::collections::HashSet::<u32>::new(); \
             for _ in &s {} }\n",
        )
        .unwrap();
        let mut failures = Vec::new();
        lint_no_hash_iteration(&dir, &mut failures);
        // line 1 has no justification; line 3 is covered by the comment
        // above it; line 4 names HashSet with no justification.
        assert_eq!(failures.len(), 2, "{failures:#?}");
        assert!(failures[0].contains("lib.rs:1:"), "{failures:#?}");
        assert!(failures[1].contains("lib.rs:4:"), "{failures:#?}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn hashed_knob_is_reported() {
        let dir = std::env::temp_dir().join(format!("xtask-lint2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/core/src")).unwrap();
        std::fs::create_dir_all(dir.join("tests")).unwrap();
        std::fs::write(dir.join("tests/parallel_equivalence.rs"), "").unwrap();
        std::fs::write(
            dir.join("crates/core/src/stage.rs"),
            "pub const THROUGHPUT_KNOBS: &[(&str, &str)] = &[\n\
             (\"jobs\", \"parallel_equivalence\"),\n];\n\
             fn f(d: &mut D, c: &C) {\n    d.usize(c.jobs);\n}\n",
        )
        .unwrap();
        let mut failures = Vec::new();
        lint_throughput_manifest(&dir, &mut failures);
        assert_eq!(failures.len(), 1, "{failures:#?}");
        assert!(failures[0].contains("digest call"), "{failures:#?}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
