//! `fbist serve` — a long-running request loop over the artifact store.
//!
//! Reads line-delimited requests from stdin, in the same syntax as the
//! one-shot subcommands:
//!
//! ```text
//! reseed <circuit> [--tpg KIND] [--tau N] [--seed N] [--scale F] ...
//! sweep  <circuit> [--tpg KIND] [--taus 0,7,31] ...
//! ```
//!
//! Requests accumulate into a batch; a blank line or `flush` evaluates
//! the batch, `quit` (or EOF) evaluates what is pending and exits, and
//! `#`-prefixed lines are comments. Within a batch, requests that
//! canonicalise to the same work — same circuit, same keyed configuration
//! fragment, the same τ set regardless of order and duplicates — are
//! *coalesced*: computed once, answered to every submitter. Distinct
//! requests evaluate in parallel on the workspace pool.
//!
//! Answers go to stdout in submission order, one line per request —
//! `ok <id> <summary>` or `err <id> <message>` — so the stream stays
//! diffable between cold and warm stores. Per-request store statistics
//! (stage hits/misses, `matrix_sim_passes`, the configured SIMD width
//! with the simulator's lane-occupancy counters, plus `coalesced=1` for
//! requests that shared another's evaluation) go to stderr.

use std::io::{BufRead, Write};

use fbist_netlist::Netlist;
use fbist_store::ArtifactStore;
use reseed_core::{
    cover_stage_key, sweep_request_digest, tradeoff_sweep_with, FlowConfig, ReseedingFlow,
};

use crate::{
    load_circuit, parse_backend, parse_matrix_build, parse_simd_width, parse_sweep_engine,
    parse_tau, parse_taus, parse_tpg, resolve_store, simd_stats_line,
};

pub fn cmd_serve(args: &[String]) -> Result<(), String> {
    let store = resolve_store(args)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    serve(store, stdin.lock(), &mut stdout.lock(), &mut stderr.lock())
}

/// What a request line asks for, after parsing and canonicalisation.
struct Parsed {
    netlist: Netlist,
    config: FlowConfig,
    /// `None` = single-τ reseed at `config.tau`; `Some` = sweep.
    taus: Option<Vec<usize>>,
    /// The canonical work identity: requests with equal digests are the
    /// same computation and coalesce onto one evaluation.
    digest: String,
}

struct Request {
    id: usize,
    parsed: Result<Parsed, String>,
}

/// One evaluated unit of work: the stdout summary and the stderr stats.
struct Evaluated {
    summary: Result<String, String>,
    stats: String,
}

fn parse_line(line: &str) -> Result<Parsed, String> {
    let tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
    let (kind, rest) = tokens
        .split_first()
        .ok_or_else(|| "empty request".to_string())?;
    if rest.iter().any(|a| a == "--store" || a == "--no-store") {
        return Err(
            "per-request store flags are not supported; pass --store to `fbist serve` itself"
                .into(),
        );
    }
    let netlist = load_circuit(rest)?;
    let mut config = FlowConfig::new(parse_tpg(rest)?)
        .with_backend(parse_backend(rest)?)
        .with_matrix_build(parse_matrix_build(rest)?)
        .with_sweep_engine(parse_sweep_engine(rest)?)
        .with_simd_width(parse_simd_width(rest)?);
    match kind.as_str() {
        "reseed" => {
            config = config.with_tau(parse_tau(rest, 31)?);
            let digest = cover_stage_key(&netlist, &config).to_string();
            Ok(Parsed {
                netlist,
                config,
                taus: None,
                digest,
            })
        }
        "sweep" => {
            let taus = parse_taus(rest)?;
            let digest = format!("sweep/{}", sweep_request_digest(&netlist, &config, &taus));
            Ok(Parsed {
                netlist,
                config,
                taus: Some(taus),
                digest,
            })
        }
        other => Err(format!(
            "unknown request {other:?} (expected `reseed` or `sweep`)"
        )),
    }
}

fn evaluate(p: &Parsed, store: &Option<ArtifactStore>) -> Evaluated {
    let flow = match store {
        Some(s) => ReseedingFlow::with_store(&p.netlist, s.clone()),
        None => ReseedingFlow::new(&p.netlist),
    };
    let flow = match flow {
        Ok(flow) => flow,
        Err(e) => {
            return Evaluated {
                summary: Err(e.to_string()),
                stats: String::new(),
            }
        }
    };
    let summary = match &p.taus {
        None => {
            let r = flow.run(&p.config);
            format!(
                "reseed {} tpg={} tau={} triplets={} test_length={} rom_bits={}",
                r.circuit,
                r.tpg,
                r.tau,
                r.triplet_count(),
                r.test_length(),
                r.rom_bits()
            )
        }
        Some(taus) => {
            let curve = tradeoff_sweep_with(&flow, &p.config, taus);
            let points: Vec<String> = curve
                .iter()
                .map(|pt| {
                    format!(
                        "{}:{}:{}:{}",
                        pt.tau, pt.triplets, pt.test_length, pt.rom_bits
                    )
                })
                .collect();
            format!(
                "sweep {} tpg={} {}",
                p.netlist.name(),
                p.config.tpg.name(),
                points.join(" ")
            )
        }
    };
    let s = flow.stages().stats();
    let stats = format!(
        "cover_hits={} cover_misses={} first_detection_hits={} first_detection_misses={} \
         atpg_hits={} atpg_misses={} matrix_sim_passes={} {}",
        s.cover_hits,
        s.cover_misses,
        s.first_detection_hits,
        s.first_detection_misses,
        s.atpg_hits,
        s.atpg_misses,
        flow.builder().matrix_sim_passes(),
        simd_stats_line(&flow, p.config.simd_width)
    );
    Evaluated {
        summary: Ok(summary),
        stats,
    }
}

/// Evaluates a batch: coalesce by canonical digest, compute the distinct
/// work in parallel, answer every request in submission order.
fn flush_batch(
    batch: &mut Vec<Request>,
    store: &Option<ArtifactStore>,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), String> {
    let mut uniq: Vec<&Parsed> = Vec::new();
    let mut work_of: Vec<Option<(usize, bool)>> = Vec::with_capacity(batch.len());
    for req in batch.iter() {
        match &req.parsed {
            Err(_) => work_of.push(None),
            Ok(p) => {
                let existing = uniq.iter().position(|u| u.digest == p.digest);
                match existing {
                    Some(i) => work_of.push(Some((i, true))),
                    None => {
                        uniq.push(p);
                        work_of.push(Some((uniq.len() - 1, false)));
                    }
                }
            }
        }
    }
    let results: Vec<Evaluated> =
        mini_rayon::par_map_indexed(0, uniq.len(), |i| evaluate(uniq[i], store));
    for (req, work) in batch.iter().zip(&work_of) {
        let id = req.id;
        match (&req.parsed, work) {
            (Err(msg), _) => {
                writeln!(out, "err {id} {msg}").map_err(|e| e.to_string())?;
            }
            (Ok(_), Some((i, coalesced))) => {
                let r = &results[*i];
                match &r.summary {
                    Ok(summary) => {
                        writeln!(out, "ok {id} {summary}").map_err(|e| e.to_string())?;
                        let suffix = if *coalesced { " coalesced=1" } else { "" };
                        writeln!(err, "stats {id} {}{suffix}", r.stats)
                            .map_err(|e| e.to_string())?;
                    }
                    Err(msg) => {
                        writeln!(out, "err {id} {msg}").map_err(|e| e.to_string())?;
                    }
                }
            }
            (Ok(_), None) => unreachable!("parsed requests always get a work slot"),
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    err.flush().map_err(|e| e.to_string())?;
    batch.clear();
    Ok(())
}

fn serve(
    store: Option<ArtifactStore>,
    input: impl BufRead,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), String> {
    if let Some(s) = &store {
        writeln!(err, "fbist serve: store {}", s.root().display()).map_err(|e| e.to_string())?;
    } else {
        writeln!(
            err,
            "fbist serve: no store attached (pass --store DIR or set FBIST_STORE)"
        )
        .map_err(|e| e.to_string())?;
    }
    let mut batch: Vec<Request> = Vec::new();
    let mut next_id = 0usize;
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading request: {e}"))?;
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        match line {
            "" | "flush" => flush_batch(&mut batch, &store, out, err)?,
            "quit" | "exit" => break,
            _ => {
                batch.push(Request {
                    id: next_id,
                    parsed: parse_line(line),
                });
                next_id += 1;
            }
        }
    }
    flush_batch(&mut batch, &store, out, err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_serve(store: Option<ArtifactStore>, script: &str) -> (String, String) {
        let mut out = Vec::new();
        let mut err = Vec::new();
        serve(store, Cursor::new(script.to_owned()), &mut out, &mut err).unwrap();
        (
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    fn tmp_store(name: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("fbist-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn answers_in_submission_order_with_ids() {
        let (out, _) = run_serve(None, "reseed c17 --tau 3\nreseed c17 --tau 0\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("ok 0 reseed c17"), "{out}");
        assert!(lines[1].starts_with("ok 1 reseed c17"), "{out}");
        assert!(lines[0].contains("tau=3"));
        assert!(lines[1].contains("tau=0"));
    }

    #[test]
    fn bad_requests_answer_err_and_do_not_stop_the_batch() {
        let (out, _) = run_serve(
            None,
            "reseed no-such-circuit-anywhere\nbogus c17\nreseed c17 --tau 1\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].starts_with("err 0 "), "{out}");
        assert!(lines[1].starts_with("err 1 unknown request"), "{out}");
        assert!(lines[2].starts_with("ok 2 "), "{out}");
    }

    #[test]
    fn identical_requests_coalesce_within_a_batch() {
        // the same sweep, submitted thrice with reordered/duplicated τ:
        // one evaluation, three identical answers, coalesced flags on the
        // later two
        let (store, dir) = tmp_store("coalesce");
        let (out, err) = run_serve(
            Some(store),
            "sweep c17 --taus 0,3\nsweep c17 --taus 3,0\nsweep c17 --taus 0,3,3\nquit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        let tail = |l: &str| l.splitn(3, ' ').nth(2).unwrap().to_owned();
        assert_eq!(tail(lines[0]), tail(lines[1]));
        assert_eq!(tail(lines[0]), tail(lines[2]));
        assert_eq!(
            err.lines().filter(|l| l.contains("coalesced=1")).count(),
            2,
            "{err}"
        );
        // exactly one evaluation: the stats lines agree and show one pass
        assert_eq!(
            err.lines()
                .filter(|l| l.contains("matrix_sim_passes=1"))
                .count(),
            3,
            "{err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn second_batch_is_answered_from_the_store_without_simulating() {
        let (store, dir) = tmp_store("warm");
        // batches are separated by `flush`, so the second request is a
        // fresh evaluation answered from the store, not a coalesced one
        let script = "sweep c17 --taus 0,7\nflush\nsweep c17 --taus 0,7\nquit\n";
        let (out, err) = run_serve(Some(store), script);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        let tail = |l: &str| l.splitn(3, ' ').nth(2).unwrap().to_owned();
        assert_eq!(
            tail(lines[0]),
            tail(lines[1]),
            "warm answer must match cold"
        );
        let stats: Vec<&str> = err.lines().filter(|l| l.starts_with("stats")).collect();
        assert_eq!(stats.len(), 2, "{err}");
        assert!(stats[0].contains("matrix_sim_passes=1"), "{err}");
        assert!(
            stats[1].contains("matrix_sim_passes=0") && stats[1].contains("cover_hits=2"),
            "warm request must simulate nothing: {err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reseed_and_sweep_share_the_cover_artifacts() {
        // a sweep warms the store point by point; a later reseed at one of
        // its τ values is a pure cover hit
        let (store, dir) = tmp_store("cross");
        let script = "sweep c17 --taus 0,7\nflush\nreseed c17 --tau 7\nquit\n";
        let (_, err) = run_serve(Some(store), script);
        let stats: Vec<&str> = err.lines().filter(|l| l.starts_with("stats")).collect();
        assert_eq!(stats.len(), 2, "{err}");
        assert!(
            stats[1].contains("cover_hits=1") && stats[1].contains("matrix_sim_passes=0"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn per_request_store_flags_are_rejected() {
        let (out, _) = run_serve(None, "reseed c17 --store /tmp/x\n");
        assert!(out.starts_with("err 0 per-request store flags"), "{out}");
    }

    #[test]
    fn comments_and_blank_lines_are_free() {
        let (out, _) = run_serve(None, "# warm-up script\n\n\nreseed c17 --tau 1\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "{out}");
        assert!(lines[0].starts_with("ok 0 "));
    }
}
