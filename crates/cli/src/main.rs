//! `fbist` — command-line front end for the set-covering reseeding flow.
//!
//! ```text
//! fbist gen <profile> [--scale F] [--seed N] [--out FILE]
//! fbist stats <file.bench>
//! fbist check <file.bench|profile> [--json]
//! fbist atpg <file.bench|profile> [--seed N] [--static-prepass] [--static-learning]
//! fbist reseed <file.bench|profile> [--tpg add|sub|mul|lfsr|mplfsr|wrand] [--tau N]
//! fbist sweep <file.bench|profile> [--tpg KIND] [--taus 0,7,31,...]
//! fbist compare <file.bench|profile> [--tpg KIND] [--tau N]
//! fbist lp <file.bench|profile> [--tpg KIND] [--tau N]
//! fbist serve [--store DIR]
//! fbist profiles
//! ```
//!
//! Circuits are resolved in a fixed namespace order: explicit `.bench`
//! paths first (a `.bench` suffix or a path separator), then built-in
//! profile names (`fbist profiles` lists them), then embedded circuits —
//! so a stray file or directory in the working directory can never shadow
//! a profile name. All subcommands are thin wrappers over the workspace
//! libraries, and all accept `--jobs N` (0 = auto; also via the
//! `FBIST_JOBS` environment variable) to size the worker pool the
//! parallel stages run on, plus `--backend auto|dense|sparse` to pick the
//! set-covering implementation, `--matrix-build per-row|batched|auto` to
//! pick the Detection-Matrix construction engine and `--sweep-engine
//! per-tau|first-detection|auto` to pick how the τ-sweep is evaluated
//! (per-τ re-simulation vs. one shared first-detection pass) — results
//! are identical for every job count, backend and engine.
//!
//! `reseed`, `sweep` and `serve` additionally accept `--store DIR` (also
//! via the `FBIST_STORE` environment variable; `--no-store` overrides
//! both) to attach the content-addressed artifact store: finished stages
//! are answered from disk when their keyed inputs match, byte-identically
//! to computing them. Store hit/miss statistics go to stderr so stdout
//! stays diffable.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use fbist_atpg::{Atpg, AtpgConfig};
use fbist_fault::FaultList;
use fbist_genbench::{all_profiles, generate, profile};
use fbist_netlist::{bench, full_scan, Netlist, NetlistStats};
use fbist_setcover::lp;
use fbist_store::ArtifactStore;
use reseed_core::{
    export, tradeoff_sweep_with, Backend, FlowConfig, Gatsby, GatsbyConfig,
    InitialReseedingBuilder, MatrixBuild, ReseedingFlow, SimdWidth, SweepEngine, TpgKind,
};

mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `check` owns a three-way exit code (0 clean, 1 findings, 2 usage
    // error) so scripts can distinguish "circuit has issues" from "the
    // invocation itself was wrong"; every other subcommand keeps the
    // classic ok/fail pair.
    if args.first().map(String::as_str) == Some("check") {
        return match cmd_check(&args[1..]) {
            Ok(findings) => ExitCode::from(u8::from(findings)),
            Err(msg) => {
                eprintln!("fbist: {msg}");
                eprintln!();
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fbist: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fbist profiles
  fbist gen <profile> [--scale F] [--seed N] [--out FILE]
  fbist stats <circuit>
  fbist check <circuit> [--json]
  fbist atpg <circuit> [--seed N] [--static-prepass] [--static-learning]
  fbist reseed <circuit> [--tpg KIND] [--tau N] [--seed N] [--scale F]
               [--csv FILE] [--rom FILE]
  fbist sweep <circuit> [--tpg KIND] [--taus 0,7,31] [--scale F]
  fbist compare <circuit> [--tpg KIND] [--tau N] [--scale F]
  fbist lp <circuit> [--tpg KIND] [--tau N] [--scale F]
  fbist serve [--store DIR]

<circuit> is resolved as: an explicit .bench path (`.bench` suffix or a
path separator), else a built-in profile name, else an embedded circuit.
KIND is one of add, sub, mul, lfsr, mplfsr, wrand.
--taus takes a non-empty comma-separated list; duplicate values are
computed once, order is preserved, and every τ (like --tau) must not
exceed 16777215.
Every subcommand also accepts --jobs N (worker threads; 0 = auto, also
settable via the FBIST_JOBS environment variable), --backend
auto|dense|sparse (set-covering implementation), --matrix-build
per-row|batched|auto (Detection-Matrix construction engine; auto batches
whenever sharing 64-lane blocks across rows saves block evaluations) and
--sweep-engine per-tau|first-detection|auto (τ-sweep evaluation; auto
shares one first-detection simulation across all τ points whenever there
are at least two) and --simd-width auto|1|2|4|8 (fault-simulation block
width in 64-lane words; auto picks the widest that still shrinks the
block count). Results are identical for every job count, backend, engine
and SIMD width.
check runs the static analyses only (no simulation): structural errors,
floating nets, unobservable logic, dead constants, provably untestable
stuck-at faults (including learned redundancies from the static-learning
implication database), and a SCOAP hard-to-test-region report. It exits
0 when clean, 1 when anything of warning severity or worse was found, 2
on a usage error; --json emits the report as stable machine-readable
JSON on stdout (the \"testability\" section lists the hardest fault
sites by SCOAP difficulty).
atpg accepts --static-prepass to prune statically-proven-untestable
faults before any random patterns or PODEM effort is spent on them
(coverage over detected faults is unchanged; aborted faults may be
reclassified as untestable), and --static-learning to build the
recursive-learning implication database once per run: it deepens the
pre-pass proofs (implication-proved fault equivalence and dominance) and
seeds every PODEM search with early conflict detection, reducing
aborted faults at equal or better coverage.
reseed, sweep and serve accept --store DIR (default: the FBIST_STORE
environment variable) to cache finished stages in a content-addressed
artifact store, and --no-store to force recomputation; cached answers
are byte-identical to computed ones. serve reads line-delimited
`reseed ...`/`sweep ...` requests from stdin (blank line or `flush`
evaluates the batch, `quit` or EOF exits), answers `ok <id> ...` /
`err <id> ...` on stdout in submission order, and reports per-request
store statistics on stderr.";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    apply_jobs(args)?;
    // validate --backend, --matrix-build, --sweep-engine and
    // --simd-width globally (like --jobs) so a typo can never be silently
    // ignored by a subcommand that does not solve a cover, build a matrix
    // or sweep
    parse_backend(args)?;
    parse_matrix_build(args)?;
    parse_sweep_engine(args)?;
    parse_simd_width(args)?;
    let rest = &args[1..];
    match cmd.as_str() {
        "profiles" => cmd_profiles(),
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        // reachable only via run()'s tests: main() intercepts `check`
        // before run() so it can map the report onto its exit codes
        "check" => cmd_check(rest).map(|_| ()),
        "atpg" => cmd_atpg(rest),
        "reseed" => cmd_reseed(rest),
        "sweep" => cmd_sweep(rest),
        "compare" => cmd_compare(rest),
        "lp" => cmd_lp(rest),
        "serve" => serve::cmd_serve(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

// ---------------------------------------------------------------- helpers

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--jobs` and installs it as the process-wide worker count.
/// `0` (and an absent flag) means auto: `FBIST_JOBS` if set, else all
/// available cores. Job counts only affect wall-clock time — results are
/// bit-identical for every value.
fn apply_jobs(args: &[String]) -> Result<(), String> {
    if let Some(v) = flag(args, "--jobs") {
        mini_rayon::set_jobs(mini_rayon::parse_jobs(&v)?);
    }
    Ok(())
}

fn parse_backend(args: &[String]) -> Result<Backend, String> {
    match flag(args, "--backend") {
        None => Ok(Backend::Auto),
        Some(v) => Backend::parse(&v),
    }
}

fn parse_matrix_build(args: &[String]) -> Result<MatrixBuild, String> {
    match flag(args, "--matrix-build") {
        None => Ok(MatrixBuild::Auto),
        Some(v) => MatrixBuild::parse(&v),
    }
}

fn parse_sweep_engine(args: &[String]) -> Result<SweepEngine, String> {
    match flag(args, "--sweep-engine") {
        None => Ok(SweepEngine::Auto),
        Some(v) => SweepEngine::parse(&v),
    }
}

fn parse_simd_width(args: &[String]) -> Result<SimdWidth, String> {
    match flag(args, "--simd-width") {
        None => Ok(SimdWidth::Auto),
        Some(v) => SimdWidth::parse(&v)
            .ok_or_else(|| format!("unknown SIMD width {v:?} (expected auto, 1, 2, 4 or 8)")),
    }
}

/// Resolves the artifact store: `--no-store` disables it outright,
/// `--store DIR` opens (creating if needed) the given directory, else the
/// `FBIST_STORE` environment variable supplies the directory, else no
/// store. Open failures — the path is a file, the directory cannot be
/// created or written — surface as clear errors instead of a silently
/// cold cache.
fn resolve_store(args: &[String]) -> Result<Option<ArtifactStore>, String> {
    resolve_store_from(args, std::env::var("FBIST_STORE").ok())
}

fn resolve_store_from(
    args: &[String],
    env: Option<String>,
) -> Result<Option<ArtifactStore>, String> {
    if args.iter().any(|a| a == "--no-store") {
        return Ok(None);
    }
    let dir = match flag(args, "--store") {
        Some(d) => {
            if d.starts_with("--") {
                return Err(format!("--store expects a directory, got flag {d:?}"));
            }
            Some(d)
        }
        None => {
            if args.iter().any(|a| a == "--store") {
                return Err("--store expects a directory argument".into());
            }
            env.filter(|s| !s.is_empty())
        }
    };
    match dir {
        None => Ok(None),
        Some(d) => ArtifactStore::open(std::path::Path::new(&d))
            .map(Some)
            .map_err(|e| format!("opening artifact store: {e}")),
    }
}

/// Builds a flow with the store from `args` attached (if any).
fn flow_for(args: &[String], netlist: &Netlist) -> Result<ReseedingFlow, String> {
    match resolve_store(args)? {
        Some(store) => ReseedingFlow::with_store(netlist, store),
        None => ReseedingFlow::new(netlist),
    }
    .map_err(|e| e.to_string())
}

/// Per-run store statistics, on stderr so stdout stays diffable between
/// cold and warm runs. Silent when no store is attached.
fn print_store_stats(flow: &ReseedingFlow, simd_width: SimdWidth) {
    let stages = flow.stages();
    if let Some(store) = stages.store() {
        let s = stages.stats();
        eprintln!(
            "fbist: store {}: cover {}/{}, first-detection {}/{}, atpg {}/{} (hits/misses), matrix_sim_passes={}",
            store.root().display(),
            s.cover_hits,
            s.cover_misses,
            s.first_detection_hits,
            s.first_detection_misses,
            s.atpg_hits,
            s.atpg_misses,
            flow.builder().matrix_sim_passes()
        );
        eprintln!("fbist: {}", simd_stats_line(flow, simd_width));
    }
}

/// One-line SIMD summary for stderr stats: the configured width knob and
/// the simulator's width-aware lane-occupancy counters (a wide block
/// contributes `64·W` lanes of capacity, so the ratio stays honest at
/// every width).
fn simd_stats_line(flow: &ReseedingFlow, simd_width: SimdWidth) -> String {
    let occ = flow
        .builder()
        .fault_simulator()
        .good_simulator()
        .occupancy();
    format!(
        "simd_width={} sim_blocks={} sim_lanes={}/{} occupancy={:.3}",
        simd_width,
        occ.blocks,
        occ.lanes,
        occ.capacity,
        occ.ratio()
    )
}

/// Parses `--tau` with a default, rejecting values over the bound via
/// the shared [`reseed_core::check_tau`] diagnostic.
fn parse_tau(args: &[String], default: usize) -> Result<usize, String> {
    reseed_core::check_tau("--tau", parse_num(args, "--tau", default)?)
}

/// Parses `--taus` for the sweep subcommand via the shared
/// [`reseed_core::parse_tau_list`] rules (non-empty, bounded,
/// order-preserving dedup); an absent flag yields the default list.
fn parse_taus(args: &[String]) -> Result<Vec<usize>, String> {
    match flag(args, "--taus") {
        None => Ok(vec![0, 3, 7, 15, 31, 63, 127, 255]),
        Some(list) => reseed_core::parse_tau_list(&list),
    }
}

fn parse_tpg(args: &[String]) -> Result<TpgKind, String> {
    match flag(args, "--tpg").as_deref() {
        None | Some("add") => Ok(TpgKind::Adder),
        Some("sub") => Ok(TpgKind::Subtracter),
        Some("mul") => Ok(TpgKind::Multiplier),
        Some("lfsr") => Ok(TpgKind::Lfsr),
        Some("mplfsr") => Ok(TpgKind::MultiPolyLfsr),
        Some("wrand") => Ok(TpgKind::Weighted),
        Some(other) => Err(format!("unknown TPG kind {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v:?}")),
    }
}

/// Loads a circuit. Namespaces are resolved in a fixed order:
///
/// 1. an **explicit `.bench` path** — the name ends in `.bench` or
///    contains a path separator;
/// 2. a **built-in profile** name (synthesised with `--scale`/`--seed`);
/// 3. an **embedded circuit** (`c17`, …);
/// 4. as a last resort, any other *existing file* (legacy extensionless
///    bench files — names that also match a profile or embedded circuit
///    resolve to those first, so nothing in the cwd can shadow them).
///
/// Sequential netlists are full-scanned. Errors name the namespace that
/// failed instead of a bare I/O message.
fn load_circuit(args: &[String]) -> Result<Netlist, String> {
    let n = load_circuit_raw(args)?;
    Ok(if n.is_combinational() {
        n
    } else {
        full_scan(&n).into_combinational()
    })
}

/// [`load_circuit`] without the full-scan conversion: `check` analyses
/// the circuit as written, so flip-flop diagnostics (unconnected DFFs,
/// scan-observed `D` pins) stay visible instead of being rewritten into
/// pseudo-ports first.
fn load_circuit_raw(args: &[String]) -> Result<Netlist, String> {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("missing circuit argument".into());
    };
    let scale: f64 = parse_num(args, "--scale", 1.0)?;
    let seed: u64 = parse_num(args, "--seed", 1)?;
    let explicit_path =
        name.ends_with(".bench") || name.contains('/') || name.contains(std::path::MAIN_SEPARATOR);
    let n = if explicit_path {
        read_bench_file(name)?
    } else if let Some(p) = profile(name) {
        generate(&p.scaled(scale), seed)
    } else if let Some(n) = fbist_netlist::embedded::by_name(name) {
        n
    } else if std::path::Path::new(name).exists() {
        read_bench_file(name)?
    } else {
        return Err(format!(
            "circuit {name:?} not found in any namespace: not a .bench file path, \
             not a built-in profile (see `fbist profiles`), and not an embedded circuit"
        ));
    };
    Ok(n)
}

/// Reads and parses a `.bench` file, with errors that name the file
/// namespace (a directory is a common cwd-shadowing accident and gets a
/// direct message instead of a raw `EISDIR`).
fn read_bench_file(name: &str) -> Result<Netlist, String> {
    let path = std::path::Path::new(name);
    if path.is_dir() {
        return Err(format!(
            "circuit path {name:?} is a directory, not a .bench file"
        ));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading .bench file {name}: {e}"))?;
    bench::parse_named(&text, name).map_err(|e| format!("parsing .bench file {name}: {e}"))
}

// ------------------------------------------------------------- subcommands

fn cmd_profiles() -> Result<(), String> {
    println!("built-in circuit profiles (paper suite + extras):");
    for p in all_profiles() {
        println!("  {p}");
    }
    println!(
        "worker pool: {} jobs (override with --jobs N or FBIST_JOBS)",
        mini_rayon::jobs()
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("gen: missing profile name".into());
    };
    let p = profile(name).ok_or_else(|| format!("no such profile {name:?}"))?;
    let scale: f64 = parse_num(args, "--scale", 1.0)?;
    let seed: u64 = parse_num(args, "--seed", 1)?;
    let n = generate(&p.scaled(scale), seed);
    let text = bench::to_bench(&n);
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {} ({})", path, NetlistStats::of(&n));
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let s = NetlistStats::of(&n);
    println!("{s}");
    println!("  by kind:");
    for (kind, count) in &s.by_kind {
        println!("    {kind:<6} {count}");
    }
    let faults = FaultList::full(&n);
    let collapsed = FaultList::collapsed(&n);
    println!(
        "  faults: {} full, {} collapsed ({:.1} %)",
        faults.len(),
        collapsed.len(),
        100.0 * collapsed.len() as f64 / faults.len().max(1) as f64
    );
    Ok(())
}

/// `fbist check`: the static analyses, no simulation. Returns whether
/// the report contains warning-or-worse findings (the exit-1 condition);
/// `main` maps that onto the documented exit codes.
fn cmd_check(args: &[String]) -> Result<bool, String> {
    let n = load_circuit_raw(args)?;
    let report = fbist_analyze::analyze(&n);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(report.has_findings())
}

fn cmd_atpg(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let faults = FaultList::collapsed(&n);
    let atpg = Atpg::new(&n).map_err(|e| e.to_string())?;
    let mut cfg = AtpgConfig::default();
    cfg.seed = parse_num(args, "--seed", cfg.seed)?;
    cfg.static_prepass = args.iter().any(|a| a == "--static-prepass");
    cfg.static_learning = args.iter().any(|a| a == "--static-learning");
    let r = atpg.run(&faults, &cfg);
    println!(
        "{}: {} patterns, coverage {:.2} % (efficiency {:.2} %), {} random-phase detections, {} PODEM tests, {} untestable, {} aborted",
        n.name(),
        r.patterns.len(),
        100.0 * r.coverage(),
        100.0 * r.efficiency(),
        r.random_detected,
        r.podem_tests,
        r.untestable.len(),
        r.aborted.len()
    );
    Ok(())
}

fn cmd_reseed(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let tpg = parse_tpg(args)?;
    let tau: usize = parse_tau(args, 31)?;
    let cfg = FlowConfig::new(tpg)
        .with_tau(tau)
        .with_backend(parse_backend(args)?)
        .with_matrix_build(parse_matrix_build(args)?)
        .with_simd_width(parse_simd_width(args)?);
    let flow = flow_for(args, &n)?;
    let report = flow.run(&cfg);
    print_store_stats(&flow, cfg.simd_width);
    if let Some(path) = flag(args, "--csv") {
        std::fs::write(&path, export::to_csv(&report))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote triplet CSV to {path}");
    }
    if let Some(path) = flag(args, "--rom") {
        std::fs::write(&path, export::to_rom_image(&report))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote seed ROM image to {path}");
    }
    println!("{report}");
    println!(
        "  matrix {}x{} → residual {}x{} in {} iterations ({} dominated rows)",
        report.initial_triplets,
        report.target_faults,
        report.residual.0,
        report.residual.1,
        report.reduction_iterations,
        report.dominated_rows
    );
    println!(
        "  solver: {} nodes, optimal: {}; ROM: {} bits",
        report.solver_nodes,
        report.solution_optimal,
        report.rom_bits()
    );
    for (i, t) in report.selected.iter().enumerate() {
        println!(
            "  triplet {:>3} {} τ={:<5} +{} faults, {} patterns{}",
            i,
            if t.necessary {
                "[necessary]"
            } else {
                "[solver]   "
            },
            t.triplet.tau(),
            t.new_faults,
            t.test_length,
            if i < 8 {
                format!("  {}", t.triplet)
            } else {
                String::new()
            }
        );
        if i == 16 && report.selected.len() > 18 {
            println!("  … {} more", report.selected.len() - 17);
            break;
        }
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let tpg = parse_tpg(args)?;
    let taus = parse_taus(args)?;
    let cfg = FlowConfig::new(tpg)
        .with_backend(parse_backend(args)?)
        .with_matrix_build(parse_matrix_build(args)?)
        .with_sweep_engine(parse_sweep_engine(args)?)
        .with_simd_width(parse_simd_width(args)?);
    let flow = flow_for(args, &n)?;
    let curve = tradeoff_sweep_with(&flow, &cfg, &taus);
    print_store_stats(&flow, cfg.simd_width);
    println!(
        "{} [{}] — reseedings vs. test length (Figure 2)",
        n.name(),
        tpg
    );
    println!(
        "  {:>6} {:>10} {:>12} {:>10}",
        "tau", "#triplets", "test_length", "rom_bits"
    );
    for p in curve {
        println!(
            "  {:>6} {:>10} {:>12} {:>10}",
            p.tau, p.triplets, p.test_length, p.rom_bits
        );
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let tpg = parse_tpg(args)?;
    let tau: usize = parse_tau(args, 31)?;
    let backend = parse_backend(args)?;
    let matrix_build = parse_matrix_build(args)?;
    let simd_width = parse_simd_width(args)?;
    let flow = ReseedingFlow::new(&n).map_err(|e| e.to_string())?;
    let report = flow.run(
        &FlowConfig::new(tpg)
            .with_tau(tau)
            .with_backend(backend)
            .with_matrix_build(matrix_build)
            .with_simd_width(simd_width),
    );
    let gatsby = Gatsby::new(&n).map_err(|e| e.to_string())?;
    let init = flow.builder().build(
        &FlowConfig::new(tpg)
            .with_tau(tau)
            .with_matrix_build(matrix_build)
            .with_simd_width(simd_width),
    );
    let gres = gatsby.run(
        &init.target_faults,
        &GatsbyConfig {
            tpg,
            tau,
            ..GatsbyConfig::default()
        },
    );
    println!(
        "{} [{}] τ={tau} — set covering vs GATSBY-GA (Table 1)",
        n.name(),
        tpg
    );
    println!(
        "  set covering : {:>4} triplets, test length {:>7}, covers {}/{}",
        report.triplet_count(),
        report.test_length(),
        report.covered_faults,
        report.target_faults
    );
    println!(
        "  gatsby       : {:>4} triplets, test length {:>7}, covers {}/{} ({} fault-sim calls)",
        gres.triplet_count(),
        gres.test_length,
        gres.covered,
        gres.target_faults,
        gres.fault_sim_calls
    );
    let delta = gres.triplet_count() as i64 - report.triplet_count() as i64;
    println!("  improvement  : {delta:+} triplets");
    Ok(())
}

fn cmd_lp(args: &[String]) -> Result<(), String> {
    let n = load_circuit(args)?;
    let tpg = parse_tpg(args)?;
    let tau: usize = parse_tau(args, 31)?;
    let cfg = FlowConfig::new(tpg)
        .with_tau(tau)
        .with_matrix_build(parse_matrix_build(args)?)
        .with_simd_width(parse_simd_width(args)?);
    let builder = InitialReseedingBuilder::new(&n).map_err(|e| e.to_string())?;
    let init = builder.build(&cfg);
    print!("{}", lp::to_lp(&init.matrix));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simd_width_flag_parses_every_width_and_defaults_to_auto() {
        assert_eq!(parse_simd_width(&args(&[])), Ok(SimdWidth::Auto));
        for (v, w) in [
            ("auto", SimdWidth::Auto),
            ("1", SimdWidth::W1),
            ("2", SimdWidth::W2),
            ("4", SimdWidth::W4),
            ("8", SimdWidth::W8),
        ] {
            assert_eq!(parse_simd_width(&args(&["--simd-width", v])), Ok(w));
        }
    }

    #[test]
    fn simd_width_flag_rejects_garbage_with_a_clear_error() {
        for bad in ["16", "0", "wide", "3", ""] {
            let err = parse_simd_width(&args(&["--simd-width", bad])).unwrap_err();
            assert!(
                err.contains("unknown SIMD width") && err.contains("expected auto, 1, 2, 4 or 8"),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn simd_width_typo_fails_every_subcommand() {
        // validated globally like --jobs: even a subcommand that never
        // simulates must reject the typo instead of silently ignoring it
        let err = run(&args(&["stats", "c17", "--simd-width", "16"])).unwrap_err();
        assert!(err.contains("unknown SIMD width"), "{err}");
    }

    #[test]
    fn tau_boundary_is_exact() {
        // the largest supported value is accepted; the next one is not
        let max = FlowConfig::MAX_TAU.to_string();
        assert_eq!(
            parse_tau(&args(&["--tau", &max]), 31),
            Ok(FlowConfig::MAX_TAU)
        );
        let over = (FlowConfig::MAX_TAU + 1).to_string();
        let err = parse_tau(&args(&["--tau", &over]), 31).unwrap_err();
        assert!(err.contains("exceeds the supported maximum"), "{err}");
        assert_eq!(parse_tau(&args(&[]), 31), Ok(31));
    }

    #[test]
    fn taus_dedupe_preserves_first_occurrence_order() {
        assert_eq!(
            parse_taus(&args(&["--taus", "7, 0,7,3 ,0"])),
            Ok(vec![7, 0, 3])
        );
        let max = FlowConfig::MAX_TAU.to_string();
        assert_eq!(
            parse_taus(&args(&["--taus", &format!("0,{max}")])),
            Ok(vec![0, FlowConfig::MAX_TAU])
        );
    }

    #[test]
    fn taus_reject_empty_bad_and_oversized_values() {
        let empty = parse_taus(&args(&["--taus", " "])).unwrap_err();
        assert!(empty.contains("empty τ list"), "{empty}");
        let bad = parse_taus(&args(&["--taus", "1,,2"])).unwrap_err();
        assert!(bad.contains("invalid τ value"), "{bad}");
        let over = (FlowConfig::MAX_TAU + 1).to_string();
        let huge = parse_taus(&args(&["--taus", &format!("0,{over}")])).unwrap_err();
        assert!(huge.contains("exceeds the supported maximum"), "{huge}");
    }

    #[test]
    fn taus_default_is_the_documented_list() {
        assert_eq!(
            parse_taus(&args(&[])),
            Ok(vec![0, 3, 7, 15, 31, 63, 127, 255])
        );
    }

    #[test]
    fn no_store_beats_both_flag_and_env() {
        assert!(resolve_store_from(&args(&["--no-store"]), None)
            .unwrap()
            .is_none());
        assert!(
            resolve_store_from(&args(&["--no-store", "--store", "/tmp/x"]), None)
                .unwrap()
                .is_none()
        );
        assert!(
            resolve_store_from(&args(&["--no-store"]), Some("/tmp/x".into()))
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn absent_store_flag_falls_back_to_env_then_none() {
        assert!(resolve_store_from(&args(&[]), None).unwrap().is_none());
        assert!(resolve_store_from(&args(&[]), Some(String::new()))
            .unwrap()
            .is_none());
        let dir = std::env::temp_dir().join(format!("fbist-cli-env-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = resolve_store_from(&args(&[]), Some(dir.display().to_string()))
            .unwrap()
            .expect("env var must attach a store");
        assert_eq!(store.root(), dir.as_path());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn store_flag_creates_and_opens_the_directory() {
        let dir = std::env::temp_dir().join(format!(
            "fbist-cli-store-{}/nested/deep",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = resolve_store_from(&args(&["--store", &dir.display().to_string()]), None)
            .unwrap()
            .expect("--store must attach a store");
        assert!(dir.is_dir(), "open must create the directory");
        assert_eq!(store.root(), dir.as_path());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn store_flag_rejects_files_missing_values_and_flags() {
        // a file where the directory should be → a clear error naming it
        let file =
            std::env::temp_dir().join(format!("fbist-cli-store-file-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let err =
            resolve_store_from(&args(&["--store", &file.display().to_string()]), None).unwrap_err();
        assert!(
            err.contains("opening artifact store") && err.contains("not a directory"),
            "{err}"
        );
        let _ = std::fs::remove_file(file);
        // a missing or flag-like value is a usage error, not a store named "--jobs"
        let err = resolve_store_from(&args(&["--store"]), None).unwrap_err();
        assert!(err.contains("expects a directory"), "{err}");
        let err = resolve_store_from(&args(&["--store", "--jobs"]), None).unwrap_err();
        assert!(err.contains("expects a directory"), "{err}");
    }
}
