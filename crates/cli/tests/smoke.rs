//! End-to-end smoke tests of the `fbist` binary.

use std::process::Command;

fn fbist(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fbist"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn profiles_lists_paper_suite() {
    let (ok, stdout, _) = fbist(&["profiles"]);
    assert!(ok);
    for name in ["c499", "s1238", "s15850"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn reseed_on_embedded_circuit() {
    let (ok, stdout, _) = fbist(&["reseed", "c17", "--tau", "7"]);
    assert!(ok);
    assert!(stdout.contains("triplets"), "{stdout}");
    assert!(stdout.contains("necessary"), "{stdout}");
}

#[test]
fn gen_stats_roundtrip_through_file() {
    let dir = std::env::temp_dir().join("fbist_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.bench");
    let path_s = path.to_str().unwrap();
    let (ok, _, stderr) = fbist(&["gen", "tiny64", "--out", path_s]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = fbist(&["stats", path_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("faults:"), "{stdout}");
}

#[test]
fn sweep_prints_one_row_per_tau() {
    let (ok, stdout, _) = fbist(&["sweep", "tiny64", "--taus", "0,7,31"]);
    assert!(ok);
    assert!(stdout.contains("test_length"));
    // three data rows
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .count();
    assert_eq!(rows, 3, "{stdout}");
}

#[test]
fn lp_export_is_wellformed() {
    let (ok, stdout, _) = fbist(&["lp", "c17", "--tau", "3"]);
    assert!(ok);
    assert!(stdout.starts_with("/* set covering:"));
    assert!(stdout.contains("min:"));
    assert!(stdout.contains(">= 1;"));
}

/// Like [`fbist`] but exposing the raw exit code, for subcommands with
/// more than two outcomes (`check`: 0 clean / 1 findings / 2 usage).
fn fbist_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fbist"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_clean_circuit_exits_zero() {
    let (code, stdout, _) = fbist_code(&["check", "c17"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("check c17:"), "{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}

#[test]
fn check_flags_findings_with_exit_one() {
    let dir = std::env::temp_dir().join("fbist_cli_check");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("floating.bench");
    std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nz = BUFF(a)\n").unwrap();
    let (code, stdout, _) = fbist_code(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[floating-net]"), "{stdout}");
    assert!(stdout.contains("\"z\""), "{stdout}");
}

#[test]
fn check_json_is_machine_readable() {
    let (code, stdout, _) = fbist_code(&["check", "c17", "--json"]);
    assert_eq!(code, Some(0));
    let line = stdout.trim();
    assert!(line.starts_with("{\"circuit\":\"c17\""), "{stdout}");
    assert!(
        line.contains("\"summary\":{\"errors\":0,\"warnings\":0,\"infos\":0}"),
        "{stdout}"
    );
    assert!(line.contains("\"findings\":[]"), "{stdout}");
    assert!(line.ends_with("}}"), "{stdout}");
}

/// Pins the `testability` JSON schema consumed by dashboards: a
/// `hard_nets` array whose entries carry the SCOAP numbers in a fixed
/// key order (`net`, `stuck`, `difficulty`, `cc0`, `cc1`, `co`).
#[test]
fn check_json_testability_schema_is_stable() {
    let (code, stdout, _) = fbist_code(&["check", "c17", "--json"]);
    assert_eq!(code, Some(0));
    let line = stdout.trim();
    let (_, tail) = line
        .split_once("\"testability\":{\"hard_nets\":[")
        .unwrap_or_else(|| panic!("no testability section: {stdout}"));
    // c17 is fully observable, so the hardest-site list is non-empty.
    let entry = tail
        .split('}')
        .next()
        .unwrap_or_else(|| panic!("empty hard_nets: {stdout}"));
    let positions: Vec<usize> = [
        "\"net\":",
        "\"stuck\":",
        "\"difficulty\":",
        "\"cc0\":",
        "\"cc1\":",
        "\"co\":",
    ]
    .iter()
    .map(|k| {
        entry
            .find(k)
            .unwrap_or_else(|| panic!("missing {k} in {entry}"))
    })
    .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "key order drifted: {entry}"
    );
}

#[test]
fn check_json_reports_findings_with_severities() {
    let dir = std::env::temp_dir().join("fbist_cli_check");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("redundant.bench");
    // OR(a, NOT a) is constant 1: an info-level untestable-fault finding,
    // which must NOT flip the exit code
    std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n").unwrap();
    let (code, stdout, _) = fbist_code(&["check", path.to_str().unwrap(), "--json"]);
    assert_eq!(
        code,
        Some(0),
        "info findings must not fail the check: {stdout}"
    );
    assert!(
        stdout.contains("\"code\":\"untestable-faults\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"severity\":\"info\""), "{stdout}");
}

#[test]
fn check_usage_errors_exit_two() {
    let (code, _, stderr) = fbist_code(&["check", "c99999"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    let (code, _, _) = fbist_code(&["check"]);
    assert_eq!(code, Some(2));
}

#[test]
fn check_reports_cycles_from_bench_files_by_full_path() {
    let dir = std::env::temp_dir().join("fbist_cli_check");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cyclic.bench");
    std::fs::write(&path, "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n").unwrap();
    let (code, _, stderr) = fbist_code(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "cycle is a parse error: {stderr}");
    for name in ["combinational cycle", "x", "y", "->"] {
        assert!(stderr.contains(name), "missing {name:?}: {stderr}");
    }
}

#[test]
fn atpg_static_prepass_keeps_coverage() {
    let (ok, out_off, _) = fbist(&["atpg", "tiny64"]);
    let (ok2, out_on, _) = fbist(&["atpg", "tiny64", "--static-prepass"]);
    assert!(ok && ok2);
    let coverage = |s: &str| {
        s.split("coverage ")
            .nth(1)
            .and_then(|t| t.split(' ').next())
            .map(str::to_owned)
    };
    assert_eq!(coverage(&out_off), coverage(&out_on), "{out_off}\n{out_on}");
}

#[test]
fn atpg_static_learning_keeps_coverage() {
    let (ok, out_off, _) = fbist(&["atpg", "tiny64"]);
    let (ok2, out_on, _) = fbist(&["atpg", "tiny64", "--static-learning"]);
    assert!(ok && ok2);
    let coverage = |s: &str| {
        s.split("coverage ")
            .nth(1)
            .and_then(|t| t.split(' ').next())
            .map(str::to_owned)
    };
    assert_eq!(coverage(&out_off), coverage(&out_on), "{out_off}\n{out_on}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = fbist(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_circuit_error_names_every_namespace() {
    let (ok, _, stderr) = fbist(&["reseed", "c99999"]);
    assert!(!ok);
    for namespace in [".bench", "profile", "embedded"] {
        assert!(stderr.contains(namespace), "missing {namespace}: {stderr}");
    }
}

/// A file or directory in the cwd named like a built-in profile must not
/// shadow the profile (it used to be read as a `.bench` file, yielding a
/// parse failure or a confusing `EISDIR`).
#[test]
fn profile_name_shadowed_by_cwd_entries_still_resolves() {
    let dir = std::env::temp_dir().join("fbist_cli_shadow");
    std::fs::create_dir_all(dir.join("tiny64")).unwrap(); // directory shadow
    std::fs::write(dir.join("mid256"), "not a bench file").unwrap(); // file shadow
    std::fs::write(dir.join("c17"), "garbage").unwrap(); // embedded shadow
    for name in ["tiny64", "mid256", "c17"] {
        let out = Command::new(env!("CARGO_BIN_EXE_fbist"))
            .args(["stats", name])
            .current_dir(&dir)
            .output()
            .expect("binary runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{name} shadowed: {stderr}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("faults:"),
            "{name}: no stats output"
        );
    }
}

#[test]
fn explicit_directory_path_gets_a_clear_error() {
    let dir = std::env::temp_dir().join("fbist_cli_dirpath");
    std::fs::create_dir_all(dir.join("subdir")).unwrap();
    let path = dir.join("subdir");
    let (ok, _, stderr) = fbist(&["stats", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(
        stderr.contains("is a directory, not a .bench file"),
        "{stderr}"
    );
}

#[test]
fn backend_flag_never_changes_results() {
    let (ok_d, out_d, _) = fbist(&["reseed", "c17", "--tau", "7", "--backend", "dense"]);
    let (ok_s, out_s, _) = fbist(&["reseed", "c17", "--tau", "7", "--backend", "sparse"]);
    let (ok_a, out_a, _) = fbist(&["reseed", "c17", "--tau", "7", "--backend", "auto"]);
    assert!(ok_d && ok_s && ok_a);
    assert_eq!(out_d, out_s, "--backend must never change results");
    assert_eq!(out_d, out_a, "--backend must never change results");
}

#[test]
fn backend_flag_rejects_garbage_on_every_subcommand() {
    // validated globally (like --jobs): even subcommands that never solve
    // a cover must reject a typo instead of silently ignoring it
    for args in [
        ["reseed", "c17", "--backend", "turbo"],
        ["stats", "c17", "--backend", "turbo"],
        ["lp", "c17", "--backend", "spase"],
    ] {
        let (ok, _, stderr) = fbist(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains("unknown backend"), "{args:?}: {stderr}");
    }
}

#[test]
fn matrix_build_flag_never_changes_results() {
    let (ok_p, out_p, _) = fbist(&["reseed", "c17", "--tau", "7", "--matrix-build", "per-row"]);
    let (ok_b, out_b, _) = fbist(&["reseed", "c17", "--tau", "7", "--matrix-build", "batched"]);
    let (ok_a, out_a, _) = fbist(&["reseed", "c17", "--tau", "7", "--matrix-build", "auto"]);
    assert!(ok_p && ok_b && ok_a);
    assert_eq!(out_p, out_b, "--matrix-build must never change results");
    assert_eq!(out_p, out_a, "--matrix-build must never change results");
}

#[test]
fn matrix_build_flag_rejects_garbage_on_every_subcommand() {
    // validated globally (like --jobs and --backend)
    for args in [
        ["reseed", "c17", "--matrix-build", "perrow"],
        ["stats", "c17", "--matrix-build", "rowwise"],
        ["sweep", "c17", "--matrix-build", "batch"],
    ] {
        let (ok, _, stderr) = fbist(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("unknown matrix-build engine"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn sweep_engine_flag_is_output_invariant() {
    // the new first-detection engine must print byte-identical tables
    let (ok_p, out_p, _) = fbist(&[
        "sweep",
        "tiny64",
        "--taus",
        "0,3,7",
        "--sweep-engine",
        "per-tau",
    ]);
    let (ok_f, out_f, _) = fbist(&[
        "sweep",
        "tiny64",
        "--taus",
        "0,3,7",
        "--sweep-engine",
        "first-detection",
    ]);
    let (ok_a, out_a, _) = fbist(&[
        "sweep",
        "tiny64",
        "--taus",
        "0,3,7",
        "--sweep-engine",
        "auto",
    ]);
    assert!(ok_p && ok_f && ok_a);
    assert_eq!(out_p, out_f, "--sweep-engine must never change results");
    assert_eq!(out_p, out_a, "--sweep-engine must never change results");
}

#[test]
fn sweep_engine_flag_rejects_garbage_on_every_subcommand() {
    // validated globally (like --backend and --matrix-build)
    for args in [
        ["sweep", "tiny64", "--sweep-engine", "pertau"],
        ["stats", "c17", "--sweep-engine", "fast"],
    ] {
        let (ok, _, stderr) = fbist(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("unknown sweep engine"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn sweep_rejects_empty_tau_list() {
    let (ok, _, stderr) = fbist(&["sweep", "tiny64", "--taus", ""]);
    assert!(!ok, "empty --taus must be rejected");
    assert!(stderr.contains("empty τ list"), "{stderr}");
    let (ok, _, stderr) = fbist(&["sweep", "tiny64", "--taus", "  "]);
    assert!(!ok);
    assert!(stderr.contains("empty τ list"), "{stderr}");
}

#[test]
fn sweep_rejects_malformed_tau_values() {
    for bad in ["1,,2", "1,banana", "-3"] {
        let (ok, _, stderr) = fbist(&["sweep", "tiny64", "--taus", bad]);
        assert!(!ok, "--taus {bad} must be rejected");
        assert!(stderr.contains("invalid τ value"), "--taus {bad}: {stderr}");
    }
}

#[test]
fn sweep_dedupes_tau_values_preserving_order() {
    // duplicates used to silently double the covering work; now each τ is
    // computed once and the table keeps first-occurrence order
    let (ok, stdout, _) = fbist(&["sweep", "tiny64", "--taus", "7,0,7,7,3"]);
    assert!(ok);
    let rows: Vec<&str> = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .collect();
    assert_eq!(rows.len(), 3, "{stdout}");
    let taus: Vec<&str> = rows
        .iter()
        .map(|r| r.split_whitespace().next().unwrap())
        .collect();
    assert_eq!(taus, ["7", "0", "3"], "{stdout}");
}

#[test]
fn tau_values_over_the_bound_are_rejected() {
    // τ > FlowConfig::MAX_TAU used to overflow τ + 1 in release builds
    let huge = usize::MAX.to_string();
    let (ok, _, stderr) = fbist(&["reseed", "c17", "--tau", &huge]);
    assert!(!ok, "--tau {huge} must be rejected");
    assert!(stderr.contains("exceeds the supported maximum"), "{stderr}");
    // the first value over the bound is rejected too (exact boundary —
    // MAX_TAU itself passing validation is pinned by the parse_taus unit
    // tests in the binary, where accepting it does not cost a 16M-pattern
    // expansion)
    let (ok, _, stderr) = fbist(&["sweep", "tiny64", "--taus", "0,16777216"]);
    assert!(!ok);
    assert!(stderr.contains("exceeds the supported maximum"), "{stderr}");
}

#[test]
fn jobs_flag_accepts_zero_as_auto() {
    let (ok, stdout, stderr) = fbist(&["reseed", "c17", "--tau", "3", "--jobs", "0"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("triplets"), "{stdout}");
}

#[test]
fn jobs_flag_accepts_explicit_count_with_identical_output() {
    let (ok1, out1, _) = fbist(&["reseed", "c17", "--tau", "3", "--jobs", "1"]);
    let (ok4, out4, _) = fbist(&["reseed", "c17", "--tau", "3", "--jobs", "4"]);
    assert!(ok1 && ok4);
    assert_eq!(out1, out4, "--jobs must never change results");
}

#[test]
fn jobs_flag_rejects_garbage_with_clear_error() {
    for bad in ["banana", "-2", "1.5"] {
        let (ok, _, stderr) = fbist(&["reseed", "c17", "--jobs", bad]);
        assert!(!ok, "--jobs {bad} must be rejected");
        assert!(
            stderr.contains("invalid value for --jobs"),
            "--jobs {bad}: {stderr}"
        );
        assert!(stderr.contains("0 = auto"), "--jobs {bad}: {stderr}");
    }
}

#[test]
fn jobs_env_var_is_honoured_and_flag_beats_it() {
    // `fbist profiles` prints the resolved worker count, so the env path
    // is observable: a regression in the FBIST_JOBS lookup fails here
    let resolved = |args: &[&str], env_jobs: Option<&str>| -> String {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_fbist"));
        cmd.args(args);
        if let Some(v) = env_jobs {
            cmd.env("FBIST_JOBS", v);
        }
        let out = cmd.output().expect("binary runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout
            .lines()
            .find(|l| l.starts_with("worker pool:"))
            .unwrap_or_else(|| panic!("no worker-pool line in {stdout}"))
            .to_owned()
    };
    assert!(resolved(&["profiles"], Some("2")).contains("worker pool: 2 jobs"));
    assert!(resolved(&["profiles", "--jobs", "5"], Some("2")).contains("worker pool: 5 jobs"));
}

#[test]
fn rom_and_csv_exports() {
    let dir = std::env::temp_dir().join("fbist_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sol.csv");
    let rom = dir.join("sol.rom");
    let (ok, _, stderr) = fbist(&[
        "reseed",
        "c17",
        "--tau",
        "7",
        "--csv",
        csv.to_str().unwrap(),
        "--rom",
        rom.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("index,kind,delta,theta,tau"));
    let rom_text = std::fs::read_to_string(&rom).unwrap();
    assert!(rom_text.starts_with("# seed ROM:"));
}
