//! End-to-end smoke tests of the `fbist` binary.

use std::process::Command;

fn fbist(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fbist"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn profiles_lists_paper_suite() {
    let (ok, stdout, _) = fbist(&["profiles"]);
    assert!(ok);
    for name in ["c499", "s1238", "s15850"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn reseed_on_embedded_circuit() {
    let (ok, stdout, _) = fbist(&["reseed", "c17", "--tau", "7"]);
    assert!(ok);
    assert!(stdout.contains("triplets"), "{stdout}");
    assert!(stdout.contains("necessary"), "{stdout}");
}

#[test]
fn gen_stats_roundtrip_through_file() {
    let dir = std::env::temp_dir().join("fbist_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.bench");
    let path_s = path.to_str().unwrap();
    let (ok, _, stderr) = fbist(&["gen", "tiny64", "--out", path_s]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = fbist(&["stats", path_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("faults:"), "{stdout}");
}

#[test]
fn sweep_prints_monotone_table() {
    let (ok, stdout, _) = fbist(&["sweep", "tiny64", "--taus", "0,7,31"]);
    assert!(ok);
    assert!(stdout.contains("test_length"));
    // three data rows
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .count();
    assert_eq!(rows, 3, "{stdout}");
}

#[test]
fn lp_export_is_wellformed() {
    let (ok, stdout, _) = fbist(&["lp", "c17", "--tau", "3"]);
    assert!(ok);
    assert!(stdout.starts_with("/* set covering:"));
    assert!(stdout.contains("min:"));
    assert!(stdout.contains(">= 1;"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = fbist(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_circuit_fails_cleanly() {
    let (ok, _, stderr) = fbist(&["reseed", "c99999"]);
    assert!(!ok);
    assert!(stderr.contains("no such"), "{stderr}");
}

#[test]
fn rom_and_csv_exports() {
    let dir = std::env::temp_dir().join("fbist_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sol.csv");
    let rom = dir.join("sol.rom");
    let (ok, _, stderr) = fbist(&[
        "reseed",
        "c17",
        "--tau",
        "7",
        "--csv",
        csv.to_str().unwrap(),
        "--rom",
        rom.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("index,kind,delta,theta,tau"));
    let rom_text = std::fs::read_to_string(&rom).unwrap();
    assert!(rom_text.starts_with("# seed ROM:"));
}
