//! Full-scan transformation.
//!
//! Scan design makes every flip-flop externally controllable and observable.
//! For test generation purposes a full-scan sequential circuit is therefore
//! equivalent to its *combinational core*: each DFF's `Q` output becomes a
//! pseudo primary input (PPI) and each DFF's `D` input becomes a pseudo
//! primary output (PPO). This is exactly how the paper uses "the full-scan
//! version of the ISCAS'89 circuits": the TPG feeds `PI ∪ PPI` and the
//! responses are observed at `PO ∪ PPO`.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::{bench, full_scan};
//!
//! let n = bench::parse("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n")?;
//! let view = full_scan(&n);
//! let comb = view.combinational();
//! assert!(comb.is_combinational());
//! assert_eq!(comb.inputs().len(), 2);  // a + one PPI
//! assert_eq!(comb.outputs().len(), 2); // q (now the PPI net) + one PPO
//! # Ok::<(), fbist_netlist::bench::BenchParseError>(())
//! ```

use crate::gate::GateKind;
use crate::netlist::{GateId, Netlist};

/// The result of [`full_scan`]: the combinational core plus the bookkeeping
/// linking pseudo inputs/outputs back to the original flip-flops.
#[derive(Debug, Clone)]
pub struct ScanView {
    comb: Netlist,
    original_pi_count: usize,
    original_po_count: usize,
    ppi: Vec<GateId>,
    ppo: Vec<GateId>,
}

impl ScanView {
    /// The combinational core. Its input list is `PI … PPI` (original
    /// primary inputs first) and its output list is `PO … PPO`.
    pub fn combinational(&self) -> &Netlist {
        &self.comb
    }

    /// Consumes the view, returning the combinational core.
    pub fn into_combinational(self) -> Netlist {
        self.comb
    }

    /// Number of original primary inputs (the first entries of the core's
    /// input list).
    pub fn original_pi_count(&self) -> usize {
        self.original_pi_count
    }

    /// Number of original primary outputs.
    pub fn original_po_count(&self) -> usize {
        self.original_po_count
    }

    /// Pseudo primary inputs (one per DFF, in DFF declaration order), as ids
    /// in the combinational core.
    pub fn pseudo_inputs(&self) -> &[GateId] {
        &self.ppi
    }

    /// Pseudo primary outputs (one per DFF, in DFF declaration order), as
    /// ids in the combinational core.
    pub fn pseudo_outputs(&self) -> &[GateId] {
        &self.ppo
    }

    /// Number of scan cells (flip-flops in the original circuit).
    pub fn scan_cell_count(&self) -> usize {
        self.ppi.len()
    }
}

/// Applies the full-scan transformation, producing the combinational core.
///
/// Every [`GateKind::Dff`] becomes an [`GateKind::Input`] (same name), and
/// the net driving its `D` pin is added to the output list. Combinational
/// circuits pass through unchanged (the view simply has no PPI/PPO).
///
/// # Panics
///
/// Panics if the input netlist fails validation (callers are expected to
/// have validated or constructed it through the builder API).
pub fn full_scan(netlist: &Netlist) -> ScanView {
    netlist
        .validate()
        .expect("full_scan requires a valid netlist");
    let mut comb = Netlist::new(format!("{}_scan", netlist.name()));
    let mut map: Vec<Option<GateId>> = vec![None; netlist.gate_count()];

    // 1. Original primary inputs keep their position at the front.
    for &pi in netlist.inputs() {
        let id = comb.add_input(netlist.gate(pi).name().to_owned());
        map[pi.index()] = Some(id);
    }
    // 2. Each DFF becomes a pseudo primary input.
    let mut ppi = Vec::with_capacity(netlist.dffs().len());
    for &d in netlist.dffs() {
        let id = comb.add_input(netlist.gate(d).name().to_owned());
        map[d.index()] = Some(id);
        ppi.push(id);
    }
    // 3. Copy the combinational gates in a valid topological order.
    let order = netlist.levelize().expect("validated netlist levelizes");
    for &gid in &order {
        let g = netlist.gate(gid);
        if g.kind() == GateKind::Input || g.kind() == GateKind::Dff {
            continue; // already mapped
        }
        let fanin: Vec<GateId> = g
            .fanin()
            .iter()
            .map(|&f| map[f.index()].expect("fanin mapped before use"))
            .collect();
        let id = comb
            .add_gate(g.kind(), g.name().to_owned(), fanin)
            .expect("copying a valid netlist cannot fail");
        map[gid.index()] = Some(id);
    }
    // 4. Outputs: original POs first, then one PPO per DFF (its D net).
    for &po in netlist.outputs() {
        comb.add_output(map[po.index()].expect("output mapped"));
    }
    let mut ppo = Vec::with_capacity(netlist.dffs().len());
    for &d in netlist.dffs() {
        let d_net = netlist.gate(d).fanin()[0];
        let mapped = map[d_net.index()].expect("D net mapped");
        comb.add_output(mapped);
        ppo.push(mapped);
    }

    ScanView {
        comb,
        original_pi_count: netlist.inputs().len(),
        original_po_count: netlist.outputs().len(),
        ppi,
        ppo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    fn counter2() -> Netlist {
        // 2-bit counter: q0' = NOT q0; q1' = q1 XOR q0; out = AND(q0, q1)
        let src = "\
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = NOT(q0)
d1 = XOR(q1, q0)
out = AND(q0, q1)
";
        bench::parse_named(src, "counter2").unwrap()
    }

    #[test]
    fn scan_replaces_dffs() {
        let n = counter2();
        let view = full_scan(&n);
        let c = view.combinational();
        assert!(c.is_combinational());
        assert_eq!(view.scan_cell_count(), 2);
        assert_eq!(c.inputs().len(), 2); // 0 PIs + 2 PPIs
        assert_eq!(c.outputs().len(), 3); // out + 2 PPOs
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scan_preserves_names() {
        let n = counter2();
        let c = full_scan(&n).into_combinational();
        assert!(c.find("q0").is_some());
        assert!(c.find("d1").is_some());
        assert_eq!(c.gate(c.find("q0").unwrap()).kind(), GateKind::Input);
    }

    #[test]
    fn scan_order_pi_then_ppi() {
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = AND(a, q)\ny = NOT(q)\n";
        let n = bench::parse(src).unwrap();
        let view = full_scan(&n);
        let c = view.combinational();
        assert_eq!(view.original_pi_count(), 1);
        assert_eq!(c.gate(c.inputs()[0]).name(), "a");
        assert_eq!(c.gate(c.inputs()[1]).name(), "q");
        assert_eq!(view.pseudo_inputs(), &[c.inputs()[1]]);
    }

    #[test]
    fn combinational_passthrough() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let view = full_scan(&n);
        assert_eq!(view.scan_cell_count(), 0);
        assert_eq!(view.combinational().inputs().len(), 2);
        assert_eq!(view.combinational().outputs().len(), 1);
    }

    #[test]
    fn ppo_is_d_net() {
        let n = counter2();
        let view = full_scan(&n);
        let c = view.combinational();
        // first DFF is q0, its D net is d0 = NOT(q0)
        let d0 = c.find("d0").unwrap();
        assert_eq!(view.pseudo_outputs()[0], d0);
        assert!(c.outputs().contains(&d0));
    }
}
