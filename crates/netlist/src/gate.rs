//! Gate kinds and their evaluation semantics.

use std::fmt;
use std::str::FromStr;

use fbist_bits::Trit;

/// The kind of a gate (its Boolean function).
///
/// The set matches what appears in the ISCAS'85/'89 `.bench` benchmark
/// format: the basic gates plus `DFF` for state elements and explicit
/// constants (used by some synthetic circuits).
///
/// Multi-input `AND`/`NAND`/`OR`/`NOR` fold over all fanins; `XOR`/`XNOR`
/// compute (inverted) parity over all fanins, which agrees with the 2-input
/// reading used by the benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Logical AND of all fanins.
    And,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Logical NOR of all fanins.
    Nor,
    /// Parity (XOR) of all fanins.
    Xor,
    /// Inverted parity (XNOR) of all fanins.
    Xnor,
    /// Inverter (single fanin).
    Not,
    /// Buffer (single fanin).
    Buff,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
    /// D flip-flop; fanin is the `D` pin, the gate's net is `Q`.
    Dff,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for statistics tables).
    pub const ALL: [GateKind; 12] = [
        GateKind::Input,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buff,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Dff,
    ];

    /// The `.bench` keyword for this kind (upper-case).
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buff => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Dff => "DFF",
        }
    }

    /// Valid fanin count range `(min, max)` for this kind
    /// (`usize::MAX` = unbounded).
    pub fn fanin_arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Not | GateKind::Buff | GateKind::Dff => (1, 1),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => (1, usize::MAX),
            GateKind::Xor | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// `true` for gates that have no driver of their own (sources of the
    /// combinational graph): inputs and constants.
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// `true` for state elements.
    pub fn is_state(self) -> bool {
        self == GateKind::Dff
    }

    /// The *controlling value* of the gate, if it has one: the input value
    /// that forces the output regardless of the other inputs (e.g. `0` for
    /// AND/NAND, `1` for OR/NOR). XOR-family and single-input gates have
    /// none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// `true` if the gate inverts: output = NOT(base function).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// Error for an unknown gate keyword in [`GateKind::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError(pub(crate) String);

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind {:?}", self.0)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Case-insensitive parse of a `.bench` gate keyword.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INPUT" => Ok(GateKind::Input),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUFF" | "BUF" => Ok(GateKind::Buff),
            "CONST0" => Ok(GateKind::Const0),
            "CONST1" => Ok(GateKind::Const1),
            "DFF" => Ok(GateKind::Dff),
            other => Err(ParseGateKindError(other.to_owned())),
        }
    }
}

/// Evaluates a gate over 64-way packed values (one bit per pattern lane).
///
/// `Input` and `Dff` gates are sources for the combinational evaluation and
/// must not be evaluated through this function (their packed words are
/// assigned by the simulator).
///
/// # Panics
///
/// Panics if called on `Input`/`Dff`, or if the fanin count is invalid for
/// the kind.
///
/// ```
/// use fbist_netlist::{eval_packed, GateKind};
/// assert_eq!(eval_packed(GateKind::And, &[0b1100, 0b1010]), 0b1000);
/// assert_eq!(eval_packed(GateKind::Xor, &[0b1100, 0b1010]), 0b0110);
/// assert_eq!(eval_packed(GateKind::Not, &[0]), u64::MAX);
/// ```
#[inline]
pub fn eval_packed(kind: GateKind, fanin: &[u64]) -> u64 {
    match kind {
        GateKind::And => fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
        GateKind::Nand => !fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
        GateKind::Or => fanin.iter().fold(0, |acc, &v| acc | v),
        GateKind::Nor => !fanin.iter().fold(0, |acc, &v| acc | v),
        GateKind::Xor => fanin.iter().fold(0, |acc, &v| acc ^ v),
        GateKind::Xnor => !fanin.iter().fold(0, |acc, &v| acc ^ v),
        GateKind::Not => {
            debug_assert_eq!(fanin.len(), 1);
            !fanin[0]
        }
        GateKind::Buff => {
            debug_assert_eq!(fanin.len(), 1);
            fanin[0]
        }
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Input | GateKind::Dff => {
            panic!("{kind} is a source; its value is assigned, not evaluated")
        }
    }
}

/// Evaluates a gate over three-valued ([`Trit`]) fanin values using the
/// standard pessimistic (Kleene) extension: the result is `X` only when the
/// binary outcomes actually diverge.
///
/// # Panics
///
/// Panics like [`eval_packed`] on sources.
///
/// ```
/// use fbist_netlist::{eval_trit, GateKind};
/// use fbist_bits::Trit;
/// // 0 AND X = 0 (controlling value wins)
/// assert_eq!(eval_trit(GateKind::And, &[Trit::Zero, Trit::X]), Trit::Zero);
/// // 1 AND X = X
/// assert_eq!(eval_trit(GateKind::And, &[Trit::One, Trit::X]), Trit::X);
/// assert_eq!(eval_trit(GateKind::Xor, &[Trit::One, Trit::X]), Trit::X);
/// ```
pub fn eval_trit(kind: GateKind, fanin: &[Trit]) -> Trit {
    fn and_all(fanin: &[Trit]) -> Trit {
        let mut has_x = false;
        for &t in fanin {
            match t {
                Trit::Zero => return Trit::Zero,
                Trit::X => has_x = true,
                Trit::One => {}
            }
        }
        if has_x {
            Trit::X
        } else {
            Trit::One
        }
    }
    fn or_all(fanin: &[Trit]) -> Trit {
        let mut has_x = false;
        for &t in fanin {
            match t {
                Trit::One => return Trit::One,
                Trit::X => has_x = true,
                Trit::Zero => {}
            }
        }
        if has_x {
            Trit::X
        } else {
            Trit::Zero
        }
    }
    fn xor_all(fanin: &[Trit]) -> Trit {
        let mut acc = false;
        for &t in fanin {
            match t {
                Trit::X => return Trit::X,
                Trit::One => acc = !acc,
                Trit::Zero => {}
            }
        }
        Trit::from_bool(acc)
    }
    fn invert(t: Trit) -> Trit {
        match t {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }

    match kind {
        GateKind::And => and_all(fanin),
        GateKind::Nand => invert(and_all(fanin)),
        GateKind::Or => or_all(fanin),
        GateKind::Nor => invert(or_all(fanin)),
        GateKind::Xor => xor_all(fanin),
        GateKind::Xnor => invert(xor_all(fanin)),
        GateKind::Not => invert(fanin[0]),
        GateKind::Buff => fanin[0],
        GateKind::Const0 => Trit::Zero,
        GateKind::Const1 => Trit::One,
        GateKind::Input | GateKind::Dff => {
            panic!("{kind} is a source; its value is assigned, not evaluated")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_truth_tables() {
        // lanes: 00, 01, 10, 11 for (a=0b1100? ...) use a=0b0101? Standard:
        let a = 0b0011u64; // a = 1 in lanes 0,1
        let b = 0b0101u64; // b = 1 in lanes 0,2
        assert_eq!(eval_packed(GateKind::And, &[a, b]) & 0xF, 0b0001);
        assert_eq!(eval_packed(GateKind::Or, &[a, b]) & 0xF, 0b0111);
        assert_eq!(eval_packed(GateKind::Xor, &[a, b]) & 0xF, 0b0110);
        assert_eq!(eval_packed(GateKind::Nand, &[a, b]) & 0xF, 0b1110);
        assert_eq!(eval_packed(GateKind::Nor, &[a, b]) & 0xF, 0b1000);
        assert_eq!(eval_packed(GateKind::Xnor, &[a, b]) & 0xF, 0b1001);
        assert_eq!(eval_packed(GateKind::Buff, &[a]) & 0xF, a);
        assert_eq!(eval_packed(GateKind::Not, &[a]) & 0xF, 0b1100);
    }

    #[test]
    fn packed_multi_input() {
        let v = [0b1110u64, 0b1101, 0b1011];
        assert_eq!(eval_packed(GateKind::And, &v) & 0xF, 0b1000);
        assert_eq!(eval_packed(GateKind::Xor, &v) & 0xF, 0b1000);
        // parity of three words: 1110^1101^1011 = 1000
        assert_eq!(eval_packed(GateKind::Xor, &v) & 0xF, 0b1000);
    }

    #[test]
    #[should_panic(expected = "source")]
    fn eval_input_panics() {
        eval_packed(GateKind::Input, &[]);
    }

    #[test]
    fn trit_controlling_values() {
        use Trit::*;
        assert_eq!(eval_trit(GateKind::And, &[Zero, X, X]), Zero);
        assert_eq!(eval_trit(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval_trit(GateKind::Or, &[One, X]), One);
        assert_eq!(eval_trit(GateKind::Nor, &[One, X]), Zero);
        assert_eq!(eval_trit(GateKind::Or, &[Zero, X]), X);
        assert_eq!(eval_trit(GateKind::Xnor, &[One, One]), One);
        assert_eq!(eval_trit(GateKind::Not, &[X]), X);
        assert_eq!(eval_trit(GateKind::Const1, &[]), One);
    }

    #[test]
    fn trit_agrees_with_packed_on_binary() {
        use Trit::*;
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for a in [false, true] {
                for b in [false, true] {
                    let lane = (a as u64) | (b as u64); // single-lane check
                    let packed = eval_packed(kind, &[a as u64, b as u64]) & 1 == 1;
                    let tri = eval_trit(kind, &[Trit::from_bool(a), Trit::from_bool(b)]);
                    assert_eq!(tri, Trit::from_bool(packed), "{kind} {a} {b} lane {lane}");
                }
            }
        }
        assert_eq!(eval_trit(GateKind::Buff, &[One]), One);
    }

    #[test]
    fn parse_kind_roundtrip() {
        for k in GateKind::ALL {
            let parsed: GateKind = k.bench_name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert_eq!("nand".parse::<GateKind>().unwrap(), GateKind::Nand);
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        assert!("FOO".parse::<GateKind>().is_err());
    }

    #[test]
    fn arity_ranges() {
        assert_eq!(GateKind::Input.fanin_arity(), (0, 0));
        assert_eq!(GateKind::Not.fanin_arity(), (1, 1));
        assert_eq!(GateKind::And.fanin_arity().0, 1);
        assert!(GateKind::And.fanin_arity().1 > 100);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
    }
}
