//! Reader and writer for the ISCAS `.bench` netlist format.
//!
//! The `.bench` format is the lingua franca of the ISCAS'85/'89 benchmark
//! suites the paper evaluates on:
//!
//! ```text
//! # c17 — smallest ISCAS'85 circuit
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Gates may be referenced before they are defined, so parsing is two-pass:
//! first collect declarations, then resolve names.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::bench;
//!
//! let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
//! let n = bench::parse(src)?;
//! assert_eq!(n.inputs().len(), 2);
//! let round = bench::parse(&bench::to_bench(&n))?;
//! assert_eq!(round.gate_count(), n.gate_count());
//! # Ok::<(), bench::BenchParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::GateKind;
use crate::netlist::{GateId, Netlist, NetlistError};

/// Error produced while parsing `.bench` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchParseError {
    line: usize,
    message: String,
}

impl BenchParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        BenchParseError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line (0 for whole-file errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for BenchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for BenchParseError {}

impl From<NetlistError> for BenchParseError {
    fn from(e: NetlistError) -> Self {
        BenchParseError::new(0, e.to_string())
    }
}

enum Decl {
    Input(String),
    Output(String),
    Gate {
        name: String,
        kind: GateKind,
        fanin_names: Vec<String>,
    },
}

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`BenchParseError`] naming the offending line for syntax
/// errors, unknown gate kinds, undefined signal references, duplicate
/// definitions or arity violations.
pub fn parse(src: &str) -> Result<Netlist, BenchParseError> {
    parse_named(src, "bench")
}

/// Parses `.bench` text, giving the resulting netlist an explicit name.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_named(src: &str, name: &str) -> Result<Netlist, BenchParseError> {
    let mut decls = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_call(line, "INPUT") {
            decls.push(Decl::Input(rest.trim().to_owned()));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            decls.push(Decl::Output(rest.trim().to_owned()));
        } else if let Some(eq) = line.find('=') {
            let name_part = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| {
                BenchParseError::new(lineno, format!("expected KIND(...) after '=', got {rhs:?}"))
            })?;
            if !rhs.ends_with(')') {
                return Err(BenchParseError::new(lineno, "missing closing ')'"));
            }
            let kind_str = rhs[..open].trim();
            let kind: GateKind = kind_str.parse().map_err(|_| {
                BenchParseError::new(lineno, format!("unknown gate kind {kind_str:?}"))
            })?;
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanin_names: Vec<String> = if args.trim().is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|a| a.trim().to_owned()).collect()
            };
            if name_part.is_empty() {
                return Err(BenchParseError::new(lineno, "missing gate name before '='"));
            }
            decls.push(Decl::Gate {
                name: name_part.to_owned(),
                kind,
                fanin_names,
            });
        } else {
            return Err(BenchParseError::new(
                lineno,
                format!("unrecognised statement {line:?}"),
            ));
        }
    }

    // Pass 1: assign ids in declaration order (inputs and gates).
    let mut ids: HashMap<&str, usize> = HashMap::new();
    let mut gate_decls: Vec<(&str, GateKind, &[String])> = Vec::new();
    const NO_FANIN: &[String] = &[];
    for d in &decls {
        match d {
            Decl::Input(n) => {
                if ids.insert(n.as_str(), gate_decls.len()).is_some() {
                    return Err(BenchParseError::new(
                        0,
                        format!("duplicate definition of {n:?}"),
                    ));
                }
                gate_decls.push((n.as_str(), GateKind::Input, NO_FANIN));
            }
            Decl::Gate {
                name,
                kind,
                fanin_names,
            } => {
                if ids.insert(name.as_str(), gate_decls.len()).is_some() {
                    return Err(BenchParseError::new(
                        0,
                        format!("duplicate definition of {name:?}"),
                    ));
                }
                gate_decls.push((name.as_str(), *kind, fanin_names.as_slice()));
            }
            Decl::Output(_) => {}
        }
    }

    // Pass 2: emit gates in dependence order (iterative DFS), since the
    // Netlist builder requires fanins to exist first. DFF fanins are
    // sequential edges and must not create build-order dependences, so they
    // are resolved in a fix-up pass afterwards — but the builder API needs
    // the fanin id at insertion. Instead, emit DFFs first with a placeholder
    // fanin of themselves? Cleaner: topologically sort treating DFF fanin
    // edges as absent, insert DFFs as id-only, then patch via rebuild.
    //
    // Simplest correct approach: order combinational dependences, with DFF
    // gates treated as sources; afterwards rebuild any DFF's fanin by name
    // through a second netlist construction. To keep the Netlist immutable-
    // after-build invariant, we instead compute a global emission order in
    // which every gate's *combinational* fanins precede it, and DFFs are
    // emitted last (all their D drivers exist by then).
    let n = gate_decls.len();

    // Cycle pre-check on the declared dependence graph via the shared SCC
    // pass, so the error names the full cycle path rather than one gate.
    // DFF fanins are sequential edges and unknown names are reported later
    // with a better message, so both are skipped here.
    {
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &(_, kind, fanins)) in gate_decls.iter().enumerate() {
            if kind == GateKind::Dff {
                continue;
            }
            for fname in fanins {
                if let Some(&dep) = ids.get(fname.as_str()) {
                    succ[dep].push(i as u32);
                }
            }
        }
        let comps = crate::topo::cyclic_sccs(&succ);
        if let Some(comp) = comps.first() {
            let path = crate::topo::cycle_path(&succ, comp);
            let names: Vec<&str> = path.iter().map(|&i| gate_decls[i].0).collect();
            return Err(BenchParseError::new(
                0,
                format!(
                    "combinational cycle through {:?}: {} -> {}",
                    names[0],
                    names.join(" -> "),
                    names[0]
                ),
            ));
        }
    }

    let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
    let mut emit: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // iterative DFS
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&(node, child)) = stack.last() {
            let (_, kind, fanins) = gate_decls[node];
            // DFF: sequential input, no combinational dependence.
            let deps: &[String] = if kind == GateKind::Dff { &[] } else { fanins };
            if child < deps.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let dep_name = &deps[child];
                let &dep = ids.get(dep_name.as_str()).ok_or_else(|| {
                    BenchParseError::new(
                        0,
                        format!(
                            "gate {:?} references undefined signal {dep_name:?}",
                            gate_decls[node].0
                        ),
                    )
                })?;
                match state[dep] {
                    0 => {
                        state[dep] = 1;
                        stack.push((dep, 0));
                    }
                    1 => {
                        return Err(BenchParseError::new(
                            0,
                            format!("combinational cycle through {:?}", gate_decls[dep].0),
                        ));
                    }
                    _ => {}
                }
            } else {
                state[node] = 2;
                emit.push(node);
                stack.pop();
            }
        }
    }
    // Emit: DFF placeholders first (so their Q nets can be referenced by
    // combinational gates), then everything else in dependence order, then
    // connect the D pins.
    let mut netlist = Netlist::new(name);
    let mut new_id: Vec<Option<GateId>> = vec![None; n];
    for (i, &(gname, kind, _)) in gate_decls.iter().enumerate() {
        if kind == GateKind::Dff {
            new_id[i] = Some(netlist.add_dff(gname)?);
        }
    }
    for &i in &emit {
        let (gname, kind, fanin_names) = gate_decls[i];
        if kind == GateKind::Dff {
            continue;
        }
        let fanin: Vec<GateId> = fanin_names
            .iter()
            .map(|fname| {
                let &fi = ids.get(fname.as_str()).ok_or_else(|| {
                    BenchParseError::new(
                        0,
                        format!("gate {gname:?} references undefined signal {fname:?}"),
                    )
                })?;
                new_id[fi].ok_or_else(|| {
                    BenchParseError::new(
                        0,
                        format!("gate {gname:?} fanin {fname:?} not yet emitted (cycle?)"),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let id = netlist.add_gate(kind, gname, fanin)?;
        new_id[i] = Some(id);
    }
    for (i, &(gname, kind, fanin_names)) in gate_decls.iter().enumerate() {
        if kind != GateKind::Dff {
            continue;
        }
        if fanin_names.len() != 1 {
            return Err(BenchParseError::new(
                0,
                format!("DFF {gname:?} must have exactly one input"),
            ));
        }
        let fname = &fanin_names[0];
        let &fi = ids.get(fname.as_str()).ok_or_else(|| {
            BenchParseError::new(
                0,
                format!("gate {gname:?} references undefined signal {fname:?}"),
            )
        })?;
        let d = new_id[fi].expect("non-DFF gates all emitted");
        netlist.connect_dff(new_id[i].expect("DFF emitted"), d)?;
    }
    for d in &decls {
        if let Decl::Output(oname) = d {
            let &oi = ids
                .get(oname.as_str())
                .ok_or_else(|| BenchParseError::new(0, format!("undefined output {oname:?}")))?;
            netlist.add_output(new_id[oi].expect("all gates emitted"));
        }
    }
    Ok(netlist)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        // case-insensitive match
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

/// Serialises a netlist to `.bench` text.
///
/// Output order: inputs, outputs, then gates in id order — which is a valid
/// definition-before-use order for everything except DFF feedback, which the
/// format permits anyway.
pub fn to_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    for &i in netlist.inputs() {
        out.push_str(&format!("INPUT({})\n", netlist.gate(i).name()));
    }
    for &o in netlist.outputs() {
        out.push_str(&format!("OUTPUT({})\n", netlist.gate(o).name()));
    }
    for (_, g) in netlist.iter() {
        if g.kind() == GateKind::Input {
            continue;
        }
        let fanins: Vec<&str> = g.fanin().iter().map(|&f| netlist.gate(f).name()).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            g.name(),
            g.kind().bench_name(),
            fanins.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = r#"
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"#;

    #[test]
    fn parse_c17() {
        let n = parse_named(C17, "c17").unwrap();
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.logic_gate_count(), 6);
        assert!(n.is_combinational());
        assert!(n.validate().is_ok());
    }

    #[test]
    fn roundtrip_c17() {
        let n = parse_named(C17, "c17").unwrap();
        let text = to_bench(&n);
        let n2 = parse_named(&text, "c17").unwrap();
        assert_eq!(n2.inputs().len(), n.inputs().len());
        assert_eq!(n2.outputs().len(), n.outputs().len());
        assert_eq!(n2.logic_gate_count(), n.logic_gate_count());
        // names survive
        assert!(n2.find("22").is_some());
    }

    #[test]
    fn forward_references_allowed() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = BUFF(a)\n";
        let n = parse(src).unwrap();
        assert_eq!(n.logic_gate_count(), 2);
        // m must precede y in ids
        assert!(n.find("m").unwrap() < n.find("y").unwrap());
    }

    #[test]
    fn dff_feedback_loop_parses() {
        let src = "OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n";
        let n = parse(src).unwrap();
        assert_eq!(n.dffs().len(), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn combinational_cycle_rejected() {
        let src = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUFF(x)\n";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // the full cycle path is reported by gate name
        let msg = e.to_string();
        assert!(
            msg.contains("x") && msg.contains("y") && msg.contains("->"),
            "{msg}"
        );
    }

    #[test]
    fn cycle_error_names_every_gate_on_the_loop() {
        let src = "INPUT(a)\nOUTPUT(p)\np = AND(a, r)\nq = NOT(p)\nr = BUFF(q)\n";
        let msg = parse(src).unwrap_err().to_string();
        for g in ["p", "q", "r"] {
            assert!(msg.contains(g), "missing {g} in {msg}");
        }
        // sequential feedback is fine though
        let seq = "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)\n";
        assert!(parse(seq).is_ok());
    }

    #[test]
    fn unknown_signal_rejected() {
        let src = "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("ghost"), "{e}");
    }

    #[test]
    fn unknown_kind_rejected() {
        let src = "INPUT(a)\ny = FROB(a)\n";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("FROB"), "{e}");
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse("INPUT(a)\nwhat is this\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse("INPUT(a)\ny = AND(a\n").unwrap_err();
        assert_eq!(e.line(), 2);
    }

    #[test]
    fn duplicate_definition_rejected() {
        let src = "INPUT(a)\nINPUT(a)\n";
        assert!(parse(src).is_err());
        let src = "INPUT(a)\nx = NOT(a)\nx = BUFF(a)\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn comments_and_case_insensitivity() {
        let src = "input(a) # the input\noutput(y)\ny = nand(a, a) # self-pair\n";
        let n = parse(src).unwrap();
        assert_eq!(n.logic_gate_count(), 1);
        assert_eq!(n.gate(n.find("y").unwrap()).kind(), GateKind::Nand);
    }
}
