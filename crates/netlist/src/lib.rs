//! Gate-level netlist representation for the functional-BIST tool chain.
//!
//! This crate provides the structural substrate of the workspace: a compact
//! gate-level intermediate representation ([`Netlist`]), the ISCAS `.bench`
//! interchange format ([`mod@bench`]), the full-scan transformation that turns a
//! sequential circuit into the combinational view tested by scan-based BIST
//! ([`scan`]), levelisation for the bit-parallel simulators, and a handful of
//! embedded real benchmark circuits ([`embedded`]).
//!
//! # Model
//!
//! Every gate drives exactly one net, so nets are identified with the
//! [`GateId`] of their driver — the classical representation used in the
//! ATPG and fault-simulation literature. Primary inputs are zero-fanin gates
//! of kind [`GateKind::Input`]; primary outputs are a designated list of
//! nets. D flip-flops are single-input gates ([`GateKind::Dff`]) whose
//! output is the `Q` net; the full-scan transform replaces them by
//! pseudo-input / pseudo-output pairs.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::{GateKind, Netlist};
//!
//! let mut n = Netlist::new("mux");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let s = n.add_input("s");
//! let ns = n.add_gate(GateKind::Not, "ns", vec![s])?;
//! let t0 = n.add_gate(GateKind::And, "t0", vec![a, ns])?;
//! let t1 = n.add_gate(GateKind::And, "t1", vec![b, s])?;
//! let y = n.add_gate(GateKind::Or, "y", vec![t0, t1])?;
//! n.add_output(y);
//! assert_eq!(n.gate_count(), 7);
//! assert!(n.validate().is_ok());
//! # Ok::<(), fbist_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod embedded;
mod gate;
mod netlist;
pub mod scan;
pub mod stats;
pub mod topo;

pub use gate::{eval_packed, eval_trit, GateKind};
pub use netlist::{CsrAdjacency, Gate, GateId, Netlist, NetlistError};
pub use scan::{full_scan, ScanView};
pub use stats::NetlistStats;
pub use topo::{cycle_path, cyclic_sccs};
