//! The netlist data structure.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::GateKind;

/// Identifier of a gate and, equivalently, of the net it drives.
///
/// Ids are dense indices into the owning [`Netlist`]'s gate table; they are
/// only meaningful relative to that netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only valid for indices obtained from
    /// the same netlist.
    #[inline]
    pub fn from_index(i: usize) -> GateId {
        GateId(i as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate instance: a kind, its fanin nets and a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    fanin: Vec<GateId>,
    name: String,
}

impl Gate {
    /// The gate's Boolean function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nets (driver ids), in pin order.
    #[inline]
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }

    /// The gate / net name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A per-gate adjacency (fanins or fanouts) flattened into CSR form:
/// `of(i)` is one contiguous slice of a single allocation, so inner-loop
/// sweeps (fault propagation, PODEM implication) walk flat memory instead
/// of pointer-chasing a `Vec` per gate.
///
/// Built by [`Netlist::fanouts_csr`] / [`Netlist::fanins_csr`]; the slice
/// contents and order match [`Netlist::fanouts`] and the gates' fanin
/// lists exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    start: Vec<u32>,
    flat: Vec<GateId>,
}

impl CsrAdjacency {
    /// Gate `i`'s adjacent gates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn of(&self, i: usize) -> &[GateId] {
        &self.flat[self.start[i] as usize..self.start[i + 1] as usize]
    }
}

/// Errors produced while building or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate name was used twice.
    DuplicateName(String),
    /// A fanin id does not refer to an existing gate.
    DanglingFanin {
        /// The gate whose fanin is broken.
        gate: String,
        /// The offending id.
        fanin: GateId,
    },
    /// The fanin count is invalid for the gate kind.
    BadArity {
        /// The gate with the wrong number of fanins.
        gate: String,
        /// Its kind.
        kind: GateKind,
        /// The number of fanins it was given.
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// A gate participating in the cycle.
        gate: String,
        /// The full cycle as gate names: each gate feeds the next, and the
        /// last feeds the first. Empty when the path was not recovered.
        cycle: Vec<String>,
    },
    /// A referenced name does not exist (reported by the `.bench` parser).
    UnknownName(String),
    /// An output refers to a gate id outside the netlist.
    DanglingOutput(GateId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate gate name {n:?}"),
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate:?} has dangling fanin {fanin}")
            }
            NetlistError::BadArity { gate, kind, got } => {
                write!(
                    f,
                    "gate {gate:?} of kind {kind} has invalid fanin count {got}"
                )
            }
            NetlistError::CombinationalCycle { gate, cycle } => {
                write!(f, "combinational cycle through gate {gate:?}")?;
                if !cycle.is_empty() {
                    let path = cycle.join(" -> ");
                    write!(f, ": {path} -> {}", cycle[0])?;
                }
                Ok(())
            }
            NetlistError::UnknownName(n) => write!(f, "reference to unknown name {n:?}"),
            NetlistError::DanglingOutput(id) => write!(f, "output refers to unknown gate {id}"),
        }
    }
}

impl Error for NetlistError {}

/// A gate-level netlist.
///
/// See the [crate-level documentation](crate) for the modelling conventions
/// and a construction example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    by_name: HashMap<String, GateId>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use (inputs are typically added
    /// first; use [`Netlist::add_gate`] for fallible insertion).
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        self.add_gate(GateKind::Input, name, Vec::new())
            .expect("input name already in use")
    }

    /// Adds a gate and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken,
    /// [`NetlistError::BadArity`] if the fanin count is invalid for `kind`,
    /// or [`NetlistError::DanglingFanin`] if a fanin id is out of range.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin: Vec<GateId>,
    ) -> Result<GateId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let (lo, hi) = kind.fanin_arity();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(NetlistError::BadArity {
                gate: name,
                kind,
                got: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: name,
                    fanin: f,
                });
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.by_name.insert(name.clone(), id);
        if kind == GateKind::Input {
            self.inputs.push(id);
        }
        if kind == GateKind::Dff {
            self.dffs.push(id);
        }
        self.gates.push(Gate { kind, fanin, name });
        Ok(id)
    }

    /// Adds a D flip-flop whose `D` pin is connected later with
    /// [`Netlist::connect_dff`]. This two-phase construction is what makes
    /// sequential feedback loops (`q = DFF(d); d = NOT(q)`) expressible.
    ///
    /// A netlist containing a still-unconnected DFF fails
    /// [`Netlist::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_dff(&mut self, name: impl Into<String>) -> Result<GateId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = GateId(self.gates.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.dffs.push(id);
        self.gates.push(Gate {
            kind: GateKind::Dff,
            fanin: Vec::new(),
            name,
        });
        Ok(id)
    }

    /// Connects the `D` pin of a flip-flop created by [`Netlist::add_dff`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `dff` is not an unconnected
    /// DFF, or [`NetlistError::DanglingFanin`] if `d` is out of range.
    pub fn connect_dff(&mut self, dff: GateId, d: GateId) -> Result<(), NetlistError> {
        if d.index() >= self.gates.len() {
            return Err(NetlistError::DanglingFanin {
                gate: self.gates[dff.index()].name.clone(),
                fanin: d,
            });
        }
        let g = &mut self.gates[dff.index()];
        if g.kind != GateKind::Dff || !g.fanin.is_empty() {
            return Err(NetlistError::BadArity {
                gate: g.name.clone(),
                kind: g.kind,
                got: g.fanin.len(),
            });
        }
        g.fanin.push(d);
        Ok(())
    }

    /// Declares `id` as a primary output. A net may be listed as output more
    /// than once only if the caller insists; duplicates are ignored.
    pub fn add_output(&mut self, id: GateId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Number of gates (including inputs and flip-flops).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of *logic* gates (excluding inputs, constants and flip-flops),
    /// the count conventionally reported for the ISCAS benchmarks.
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !g.kind.is_source() && !g.kind.is_state())
            .count()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks a gate up by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// D flip-flops, in declaration order.
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// `true` if the netlist has no state elements.
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Position of `id` in the primary-input list, if it is an input.
    pub fn input_position(&self, id: GateId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == id)
    }

    /// Fanout adjacency: for every net, the list of gates it feeds
    /// (each occurrence of a multiple connection listed once per pin).
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &f in &g.fanin {
                out[f.index()].push(GateId(i as u32));
            }
        }
        out
    }

    /// The fanout adjacency of [`fanouts`](Self::fanouts) in CSR form.
    pub fn fanouts_csr(&self) -> CsrAdjacency {
        let fanouts = self.fanouts();
        let mut start = Vec::with_capacity(self.gates.len() + 1);
        let mut flat = Vec::new();
        start.push(0u32);
        for fos in &fanouts {
            flat.extend_from_slice(fos);
            start.push(flat.len() as u32);
        }
        CsrAdjacency { start, flat }
    }

    /// The fanin adjacency (each gate's ordered input pins) in CSR form.
    pub fn fanins_csr(&self) -> CsrAdjacency {
        let mut start = Vec::with_capacity(self.gates.len() + 1);
        let mut flat = Vec::new();
        start.push(0u32);
        for g in &self.gates {
            flat.extend_from_slice(&g.fanin);
            start.push(flat.len() as u32);
        }
        CsrAdjacency { start, flat }
    }

    /// Every gate's kind, indexed by gate id — a flat copy for inner
    /// loops that should not touch the full [`Gate`] structs.
    pub fn kinds(&self) -> Vec<GateKind> {
        self.gates.iter().map(|g| g.kind()).collect()
    }

    /// Computes a topological order of the *combinational* gates: sources
    /// (inputs, constants, DFF outputs) first, then every logic gate after
    /// all of its fanins. DFF gates themselves are placed at the end (their
    /// `D` input is a combinational sink).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// part is cyclic.
    pub fn levelize(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        // Kahn's algorithm over the combinational dependence graph. A gate
        // is a *source* for evaluation purposes if its value is assigned
        // rather than computed: primary inputs, constants, and DFF outputs
        // (the Q value comes from the previous cycle). The DFF gate itself
        // therefore never appears as a dependence of anything.
        let is_assigned = |k: GateKind| -> bool { k.is_source() || k.is_state() };
        let succ = self.comb_succ();
        let mut indeg = vec![0usize; n];
        for s in &succ {
            for &w in s {
                indeg[w as usize] += 1;
            }
        }
        let mut order: Vec<GateId> = Vec::with_capacity(n);
        let mut queue: Vec<u32> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if is_assigned(g.kind) {
                order.push(GateId(i as u32));
            } else if indeg[i] == 0 {
                queue.push(i as u32);
            }
        }
        queue.sort_unstable(); // deterministic tie-break by id
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(GateId(g));
            for &s in &succ[g as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            // Recover the full cycle path via the shared SCC pass so the
            // error names every gate on it, not just one.
            let cycles = self.combinational_cycles();
            let cycle: Vec<String> = cycles
                .first()
                .map(|c| {
                    c.iter()
                        .map(|&g| self.gates[g.index()].name.clone())
                        .collect()
                })
                .unwrap_or_default();
            let culprit = cycle.first().cloned().unwrap_or_else(|| {
                (0..n)
                    .find(|&i| !is_assigned(self.gates[i].kind) && indeg[i] > 0)
                    .map(|i| self.gates[i].name.clone())
                    .unwrap_or_default()
            });
            return Err(NetlistError::CombinationalCycle {
                gate: culprit,
                cycle,
            });
        }
        Ok(order)
    }

    /// The combinational dependence graph as successor lists: an edge
    /// `d → g` for every logic gate `g` reading a net `d` that is itself
    /// computed (not a primary input, constant, or DFF output).
    fn comb_succ(&self) -> Vec<Vec<u32>> {
        let is_assigned = |k: GateKind| -> bool { k.is_source() || k.is_state() };
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if is_assigned(g.kind) {
                continue;
            }
            for &f in &g.fanin {
                if is_assigned(self.gates[f.index()].kind) {
                    continue;
                }
                succ[f.index()].push(i as u32);
            }
        }
        succ
    }

    /// Every combinational cycle in the netlist, one representative
    /// (shortest) cycle per cyclic strongly connected component, as gate-id
    /// paths where each gate feeds the next and the last feeds the first.
    ///
    /// Empty for a valid (acyclic) netlist. Sequential feedback through
    /// flip-flops is not a combinational cycle.
    pub fn combinational_cycles(&self) -> Vec<Vec<GateId>> {
        let succ = self.comb_succ();
        crate::topo::cyclic_sccs(&succ)
            .iter()
            .map(|comp| {
                crate::topo::cycle_path(&succ, comp)
                    .into_iter()
                    .map(|i| GateId(i as u32))
                    .collect()
            })
            .collect()
    }

    /// Validates the netlist: arities, output references, and combinational
    /// acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for g in &self.gates {
            let (lo, hi) = g.kind.fanin_arity();
            if g.fanin.len() < lo || g.fanin.len() > hi {
                return Err(NetlistError::BadArity {
                    gate: g.name.clone(),
                    kind: g.kind,
                    got: g.fanin.len(),
                });
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.gates.len() {
                return Err(NetlistError::DanglingOutput(o));
            }
        }
        self.levelize()?;
        Ok(())
    }

    /// The transitive fanout cone of `root`: every gate whose value can be
    /// affected by the net `root`, **including** `root` itself, in
    /// topological order consistent with `order` (pass the result of
    /// [`Netlist::levelize`]). Cut at DFF boundaries.
    pub fn fanout_cone(&self, root: GateId, order: &[GateId]) -> Vec<GateId> {
        let mut in_cone = vec![false; self.gates.len()];
        in_cone[root.index()] = true;
        let mut cone = Vec::new();
        for &id in order {
            let g = &self.gates[id.index()];
            let hit = in_cone[id.index()]
                || (!g.kind.is_source()
                    && !g.kind.is_state()
                    && g.fanin.iter().any(|f| in_cone[f.index()]));
            if hit {
                in_cone[id.index()] = true;
                cone.push(id);
            }
        }
        cone
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} DFFs, {} gates",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.dffs.len(),
            self.logic_gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> Netlist {
        let mut n = Netlist::new("and2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::And, "y", vec![a, b]).unwrap();
        n.add_output(y);
        n
    }

    #[test]
    fn build_and_query() {
        let n = and2();
        assert_eq!(n.gate_count(), 3);
        assert_eq!(n.logic_gate_count(), 1);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert!(n.is_combinational());
        assert_eq!(n.find("y"), Some(GateId(2)));
        assert_eq!(n.find("zzz"), None);
        assert_eq!(n.gate(GateId(2)).kind(), GateKind::And);
        assert_eq!(n.input_position(GateId(1)), Some(1));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut n = and2();
        let e = n.add_gate(GateKind::Not, "y", vec![GateId(0)]);
        assert!(matches!(e, Err(NetlistError::DuplicateName(_))));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut n = and2();
        let e = n.add_gate(GateKind::Not, "n1", vec![GateId(0), GateId(1)]);
        assert!(matches!(e, Err(NetlistError::BadArity { .. })));
        let e = n.add_gate(GateKind::And, "n2", vec![]);
        assert!(matches!(e, Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut n = and2();
        let e = n.add_gate(GateKind::Not, "n1", vec![GateId(99)]);
        assert!(matches!(e, Err(NetlistError::DanglingFanin { .. })));
    }

    #[test]
    fn levelize_orders_fanins_first() {
        let n = and2();
        let order = n.levelize().unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| order.iter().position(|&g| g == GateId(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[2] && pos[1] < pos[2]);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn fanouts_computed() {
        let n = and2();
        let fo = n.fanouts();
        assert_eq!(fo[0], vec![GateId(2)]);
        assert_eq!(fo[2], Vec::<GateId>::new());
    }

    #[test]
    fn dff_breaks_cycles() {
        // q = DFF(d); d = NOT(q) — a valid sequential loop.
        let mut n = Netlist::new("toggle");
        // create placeholder input to feed first NOT before DFF exists:
        // build order: dff after not is impossible (not needs dff id), so
        // build: dff with temporary fanin then fix? Instead: not(q) requires
        // q first; dff requires d first. Use two steps: add input clk-less
        // trick: add NOT gate on a const first.
        let c = n.add_gate(GateKind::Const0, "c0", vec![]).unwrap();
        let d = n.add_gate(GateKind::Not, "d", vec![c]).unwrap();
        let q = n.add_gate(GateKind::Dff, "q", vec![d]).unwrap();
        let y = n.add_gate(GateKind::Buff, "y", vec![q]).unwrap();
        n.add_output(y);
        assert!(!n.is_combinational());
        assert_eq!(n.dffs().len(), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn combinational_cycle_detected() {
        // Build a cycle by hand: a = AND(b, i); b = BUFF(a). We must create
        // ids before referencing, so create with a self-loop via two passes:
        // use add_gate with forward reference — not allowed. Emulate with a
        // buffer chain then mutate? The public API prevents cycles by
        // construction (ids must exist), which is itself worth asserting.
        let mut n = Netlist::new("nocycle");
        let i = n.add_input("i");
        let e = n.add_gate(GateKind::Buff, "b", vec![GateId(5)]);
        assert!(e.is_err());
        let b = n.add_gate(GateKind::Buff, "b", vec![i]).unwrap();
        n.add_output(b);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn fanout_cone_contains_root_and_sinks() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::And, "x", vec![a, b]).unwrap();
        let y = n.add_gate(GateKind::Not, "y", vec![x]).unwrap();
        let z = n.add_gate(GateKind::Or, "z", vec![a, y]).unwrap();
        n.add_output(z);
        let order = n.levelize().unwrap();
        let cone = n.fanout_cone(x, &order);
        assert!(cone.contains(&x) && cone.contains(&y) && cone.contains(&z));
        assert!(!cone.contains(&b));
        let cone_b = n.fanout_cone(b, &order);
        assert!(cone_b.contains(&x) && cone_b.contains(&z));
    }

    #[test]
    fn display_summary() {
        let n = and2();
        let s = n.to_string();
        assert!(s.contains("2 inputs"));
        assert!(s.contains("1 gates"));
    }
}
