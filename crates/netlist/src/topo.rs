//! Strongly-connected-component analysis of gate dependence graphs.
//!
//! This is the one shared cycle detector of the workspace: both the
//! `.bench` parser's definition-order pass and [`Netlist::levelize`]
//! report combinational cycles through it, and `fbist-analyze` reuses it
//! for structural diagnostics — so every error message names the *full*
//! cycle, not just one gate on it.
//!
//! The graph is given as successor lists over dense `0..n` node indices
//! (for a netlist: `succ[driver]` lists the gates reading that net).
//! [`cyclic_sccs`] finds the strongly connected components that actually
//! contain a cycle; [`cycle_path`] extracts one concrete shortest cycle
//! from such a component for reporting.
//!
//! [`Netlist::levelize`]: crate::Netlist::levelize

/// Strongly connected components of a directed graph, restricted to the
/// *cyclic* ones: components with more than one node, or a single node
/// with a self-loop.
///
/// Deterministic: components are returned ordered by their smallest node
/// index, each component's nodes sorted ascending. Iterative Tarjan, so
/// deep netlists cannot overflow the call stack.
pub fn cyclic_sccs(succ: &[Vec<u32>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNDEF: u32 = u32::MAX;
    let mut index = vec![UNDEF; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // (node, next-successor cursor)
    let mut call: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if index[root] != UNDEF {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        call.push((root as u32, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0 as usize;
            if (frame.1 as usize) < succ[v].len() {
                let w = succ[v][frame.1 as usize] as usize;
                frame.1 += 1;
                if index[w] == UNDEF {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0 as usize;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp: Vec<usize> = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the component");
                        on_stack[w as usize] = false;
                        comp.push(w as usize);
                        if w as usize == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || succ[v].contains(&(v as u32));
                    if cyclic {
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }
    }
    comps.sort_unstable_by_key(|c| c[0]);
    comps
}

/// One concrete cycle inside a cyclic component returned by
/// [`cyclic_sccs`]: the shortest cycle through the component's smallest
/// node, as the node sequence `[n0, n1, …, nk]` where every consecutive
/// pair is an edge and `nk → n0` closes the loop (a self-loop yields just
/// `[n0]`).
///
/// # Panics
///
/// Panics if `component` is empty or is not a cyclic component of `succ`
/// (no cycle through its smallest node exists).
pub fn cycle_path(succ: &[Vec<u32>], component: &[usize]) -> Vec<usize> {
    let start = *component.iter().min().expect("non-empty component");
    if succ[start].contains(&(start as u32)) {
        return vec![start];
    }
    let n = succ.len();
    let mut in_comp = vec![false; n];
    for &c in component {
        in_comp[c] = true;
    }
    // BFS from `start` restricted to the component; the first edge found
    // back into `start` closes the shortest cycle through it.
    let mut parent = vec![usize::MAX; n];
    let mut queue: Vec<usize> = vec![start];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in &succ[v] {
            let w = w as usize;
            if w == start {
                // close the cycle: start … v
                let mut path = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            if in_comp[w] && parent[w] == usize::MAX && w != start {
                parent[w] = v;
                queue.push(w);
            }
        }
    }
    panic!("component has no cycle through its smallest node");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(u32, u32)], n: usize) -> Vec<Vec<u32>> {
        let mut succ = vec![Vec::new(); n];
        for &(a, b) in edges {
            succ[a as usize].push(b);
        }
        succ
    }

    #[test]
    fn acyclic_graph_has_no_cyclic_sccs() {
        let succ = g(&[(0, 1), (1, 2), (0, 2)], 3);
        assert!(cyclic_sccs(&succ).is_empty());
    }

    #[test]
    fn simple_cycle_found_with_full_path() {
        let succ = g(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let comps = cyclic_sccs(&succ);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
        assert_eq!(cycle_path(&succ, &comps[0]), vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let succ = g(&[(1, 1)], 2);
        let comps = cyclic_sccs(&succ);
        assert_eq!(comps, vec![vec![1]]);
        assert_eq!(cycle_path(&succ, &comps[0]), vec![1]);
    }

    #[test]
    fn two_disjoint_cycles_ordered_by_smallest_node() {
        let succ = g(&[(3, 4), (4, 3), (0, 1), (1, 0)], 5);
        let comps = cyclic_sccs(&succ);
        assert_eq!(comps, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn shortest_cycle_is_reported_for_a_dense_scc() {
        // 0→1→2→0 and the chord 0→2 (so 0→2→0 is shorter)
        let succ = g(&[(0, 1), (1, 2), (2, 0), (0, 2)], 3);
        let comps = cyclic_sccs(&succ);
        assert_eq!(comps.len(), 1);
        assert_eq!(cycle_path(&succ, &comps[0]), vec![0, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 0→1→…→N→0: one giant cycle, found iteratively
        let n = 200_000;
        let mut succ: Vec<Vec<u32>> = (0..n).map(|i| vec![(i as u32 + 1) % n as u32]).collect();
        succ[n - 1] = vec![0];
        let comps = cyclic_sccs(&succ);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }
}
