//! Embedded real benchmark circuits.
//!
//! A few small, well-known circuits are embedded verbatim so the parser,
//! simulators, ATPG and the reseeding flow can be exercised against real
//! netlists without external files. Larger ISCAS'85/'89 circuits are not
//! redistributable inside source code at reasonable size; the
//! `fbist-genbench` crate generates synthetic profiles that stand in for
//! them (see `DESIGN.md`).

use crate::bench;
use crate::netlist::Netlist;

/// `.bench` source of c17, the smallest ISCAS'85 benchmark (6 NAND gates).
pub const C17_BENCH: &str = "\
# c17 — ISCAS'85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// `.bench` source of a 4-bit ripple-carry adder (`cin + a[3:0] + b[3:0]`).
pub const ADDER4_BENCH: &str = "\
# 4-bit ripple-carry adder
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
INPUT(cin)
OUTPUT(s0)
OUTPUT(s1)
OUTPUT(s2)
OUTPUT(s3)
OUTPUT(cout)
x0 = XOR(a0, b0)
s0 = XOR(x0, cin)
g0 = AND(a0, b0)
p0 = AND(x0, cin)
c1 = OR(g0, p0)
x1 = XOR(a1, b1)
s1 = XOR(x1, c1)
g1 = AND(a1, b1)
p1 = AND(x1, c1)
c2 = OR(g1, p1)
x2 = XOR(a2, b2)
s2 = XOR(x2, c2)
g2 = AND(a2, b2)
p2 = AND(x2, c2)
c3 = OR(g2, p2)
x3 = XOR(a3, b3)
s3 = XOR(x3, c3)
g3 = AND(a3, b3)
p3 = AND(x3, c3)
cout = OR(g3, p3)
";

/// `.bench` source of a small sequential circuit: a 3-bit Johnson counter
/// with a decoded output, used to exercise the full-scan transform.
pub const JOHNSON3_BENCH: &str = "\
# 3-bit Johnson counter with decode
INPUT(en)
OUTPUT(hit)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
nq2 = NOT(q2)
d0 = AND(nq2, en)
d1 = AND(q0, en)
d2 = AND(q1, en)
hit = AND(q0, q1, q2)
";

/// `.bench` source of a 2-of-3 majority voter with inverted spare output.
pub const MAJORITY_BENCH: &str = "\
# majority-of-3 voter
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(m)
OUTPUT(nm)
ab = AND(a, b)
bc = AND(b, c)
ac = AND(a, c)
m = OR(ab, bc, ac)
nm = NOT(m)
";

/// Parses and returns c17.
///
/// # Example
///
/// ```
/// let n = fbist_netlist::embedded::c17();
/// assert_eq!(n.inputs().len(), 5);
/// ```
pub fn c17() -> Netlist {
    bench::parse_named(C17_BENCH, "c17").expect("embedded c17 parses")
}

/// Parses and returns the 4-bit ripple-carry adder.
pub fn adder4() -> Netlist {
    bench::parse_named(ADDER4_BENCH, "adder4").expect("embedded adder4 parses")
}

/// Parses and returns the 3-bit Johnson counter (sequential).
pub fn johnson3() -> Netlist {
    bench::parse_named(JOHNSON3_BENCH, "johnson3").expect("embedded johnson3 parses")
}

/// Parses and returns the majority voter.
pub fn majority() -> Netlist {
    bench::parse_named(MAJORITY_BENCH, "majority").expect("embedded majority parses")
}

/// All embedded circuits, by name.
pub fn all() -> Vec<Netlist> {
    vec![c17(), adder4(), johnson3(), majority()]
}

/// Looks an embedded circuit up by name.
pub fn by_name(name: &str) -> Option<Netlist> {
    match name {
        "c17" => Some(c17()),
        "adder4" => Some(adder4()),
        "johnson3" => Some(johnson3()),
        "majority" => Some(majority()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_embedded_validate() {
        for n in all() {
            assert!(n.validate().is_ok(), "{} invalid", n.name());
        }
    }

    #[test]
    fn adder4_shape() {
        let n = adder4();
        assert_eq!(n.inputs().len(), 9);
        assert_eq!(n.outputs().len(), 5);
        assert_eq!(n.logic_gate_count(), 20);
    }

    #[test]
    fn johnson3_is_sequential() {
        let n = johnson3();
        assert_eq!(n.dffs().len(), 3);
        assert!(!n.is_combinational());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("c17").is_some());
        assert!(by_name("c9999").is_none());
    }
}
