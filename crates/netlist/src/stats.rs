//! Netlist statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Summary statistics of a netlist, in the style of the ISCAS benchmark
/// profile tables.
///
/// # Example
///
/// ```
/// use fbist_netlist::{bench, NetlistStats};
/// let n = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let s = NetlistStats::of(&n);
/// assert_eq!(s.inputs, 2);
/// assert_eq!(s.logic_gates, 1);
/// assert_eq!(s.depth, 1);
/// # Ok::<(), fbist_netlist::bench::BenchParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Logic gate count (excludes inputs, constants, DFFs).
    pub logic_gates: usize,
    /// Maximum combinational depth in gates (0 for a wire-only circuit).
    pub depth: usize,
    /// Largest fanout of any net.
    pub max_fanout: usize,
    /// Largest fanin of any gate.
    pub max_fanin: usize,
    /// Gate population per kind.
    pub by_kind: BTreeMap<GateKind, usize>,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not levelize (invalid circuits have no
    /// meaningful depth).
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let order = netlist.levelize().expect("stats require a valid netlist");
        let mut level = vec![0usize; netlist.gate_count()];
        let mut depth = 0;
        for &id in &order {
            let g = netlist.gate(id);
            if g.kind().is_source() || g.kind().is_state() {
                continue;
            }
            let l = g
                .fanin()
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            level[id.index()] = l;
            depth = depth.max(l);
        }
        let mut by_kind = BTreeMap::new();
        let mut max_fanin = 0;
        for (_, g) in netlist.iter() {
            *by_kind.entry(g.kind()).or_insert(0) += 1;
            max_fanin = max_fanin.max(g.fanin().len());
        }
        let max_fanout = netlist.fanouts().iter().map(|f| f.len()).max().unwrap_or(0);
        NetlistStats {
            name: netlist.name().to_owned(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            dffs: netlist.dffs().len(),
            logic_gates: netlist.logic_gate_count(),
            depth,
            max_fanout,
            max_fanin,
            by_kind,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: PI={} PO={} FF={} gates={} depth={} maxFO={} maxFI={}",
            self.name,
            self.inputs,
            self.outputs,
            self.dffs,
            self.logic_gates,
            self.depth,
            self.max_fanout,
            self.max_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::embedded;

    #[test]
    fn c17_stats() {
        let n = embedded::c17();
        let s = NetlistStats::of(&n);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.logic_gates, 6);
        assert_eq!(s.depth, 3);
        assert_eq!(s.by_kind[&GateKind::Nand], 6);
        assert_eq!(s.dffs, 0);
    }

    #[test]
    fn depth_of_chain() {
        let src = "INPUT(a)\nOUTPUT(d)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\n";
        let n = bench::parse(src).unwrap();
        assert_eq!(NetlistStats::of(&n).depth, 3);
    }

    #[test]
    fn fanout_counts_pins() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, a, a)\n";
        let n = bench::parse(src).unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.max_fanin, 3);
    }

    #[test]
    fn display_contains_counts() {
        let n = embedded::c17();
        let text = NetlistStats::of(&n).to_string();
        assert!(text.contains("PI=5"));
        assert!(text.contains("gates=6"));
    }
}
