//! The complete ATPG engine: random phase + PODEM + compaction.
//!
//! The PODEM phase is *fault-parallel*: undetected target faults are
//! consumed in deterministic rounds of [`PODEM_ROUND`], each round's cube
//! searches fan out over the `mini-rayon` pool, and fills + fault-dropping
//! are applied serially in fault-index order. Cube generation is a pure
//! function of the fault and every don't-care fill is drawn from a
//! per-fault RNG stream derived from the master seed, so the test set,
//! drop results and [`AtpgResult`] are bit-identical at any worker count —
//! `jobs` is a pure throughput knob, pinned by `tests/atpg_equivalence.rs`.

use fbist_bits::{BitVec, SimdWidth};
use fbist_fault::{FaultId, FaultList, FaultSimulator};
use fbist_netlist::Netlist;
use fbist_sim::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::podem::{Podem, PodemConfig, PodemOutcome};

/// Target faults PODEM'd per deterministic round — one packed simulation
/// block's worth, so a fully accepted round drops faults in a single
/// 64-lane pass. Fixed: round boundaries are part of the algorithm and
/// never depend on `jobs`.
const PODEM_ROUND: usize = 64;

/// Round targets handed to one pool task at a time, amortising one
/// reusable [`PodemSession`](crate::PodemSession) (and its O(netlist)
/// buffers) over the chunk. Fixed for the same reason as [`PODEM_ROUND`]:
/// chunking only groups work, results are position-ordered either way.
const PODEM_CHUNK: usize = 8;

/// How the don't-care positions of PODEM cubes are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillMode {
    /// Fill with pseudo-random values (default; best for fortuitous
    /// detection of other faults).
    #[default]
    Random,
    /// Fill with zeros.
    Zeros,
    /// Fill with ones.
    Ones,
}

/// Configuration of an [`Atpg`] run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// RNG seed; equal seeds give bit-identical results.
    pub seed: u64,
    /// Patterns per random batch (one packed block).
    pub random_batch: usize,
    /// Hard cap on the number of random batches.
    pub max_random_batches: usize,
    /// Stop the random phase after this many consecutive batches that
    /// detect nothing new.
    pub random_stall_batches: usize,
    /// PODEM backtrack budget per fault.
    pub backtrack_limit: usize,
    /// Fill mode for cube don't-cares.
    pub fill: FillMode,
    /// Run the reverse-order compaction pass.
    pub compact: bool,
    /// Worker threads for the PODEM phase (`0` = the process-wide pool
    /// default, i.e. `--jobs` / `FBIST_JOBS` / core count). A pure
    /// throughput knob: results are bit-identical at any value.
    pub jobs: usize,
    /// Run the static untestability pre-pass (`fbist-analyze`) and prune
    /// provably untestable faults before the random and PODEM phases.
    /// Changes fault *classification* (pruned faults are reported
    /// untestable up front, never aborted), so unlike `jobs` it is part
    /// of the `atpg` stage key; the detected set and pattern sequence are
    /// unaffected because untestable faults never contribute patterns.
    pub static_prepass: bool,
    /// Build the static-learning implication database (`fbist-analyze`)
    /// once per run and use it twice: the untestability pre-pass (when
    /// `static_prepass` is also set) upgrades to the learned closure —
    /// indirect implications plus implication-proved fault equivalence and
    /// dominance — proving strictly more faults untestable, and every
    /// PODEM session is seeded with the database for early conflict
    /// detection and search-free untestability proofs. Like
    /// `static_prepass` this is a *semantic* knob (part of the `atpg`
    /// stage key): classifications and patterns may differ from a
    /// learning-free run, but results remain bit-identical across `jobs`
    /// and `simd_width`.
    pub static_learning: bool,
    /// SIMD block width for the packed fault simulations behind
    /// dictionaries, drop passes and compaction checks
    /// ([`SimdWidth::Auto`] widens only while the block count shrinks).
    /// Like `jobs`, a pure throughput knob: every width computes
    /// bit-identical detections (pinned by
    /// `tests/simd_width_equivalence.rs`).
    pub simd_width: SimdWidth,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 0x5EED_CAFE,
            random_batch: 64,
            max_random_batches: 64,
            random_stall_batches: 3,
            backtrack_limit: 400,
            fill: FillMode::Random,
            compact: true,
            jobs: 0,
            static_prepass: false,
            static_learning: false,
            simd_width: SimdWidth::Auto,
        }
    }
}

/// Result of an ATPG run — the paper's `(ATPGTS, F)` pair plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgResult {
    /// The generated (compacted) test set `ATPGTS`.
    pub patterns: Vec<BitVec>,
    /// Per-fault detection flag, indexed like the target list.
    pub detected: BitVec,
    /// Faults proven untestable by PODEM.
    pub untestable: Vec<FaultId>,
    /// Faults on which PODEM exhausted its backtrack budget.
    pub aborted: Vec<FaultId>,
    /// Faults detected during the random phase.
    pub random_detected: usize,
    /// Number of PODEM-produced patterns (before compaction).
    pub podem_tests: usize,
    /// Total faults targeted.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Fault coverage over the target list, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected.count_ones() as f64 / self.total_faults as f64
        }
    }

    /// Coverage over the *testable* faults (excludes proven-untestable), the
    /// figure usually quoted as "fault efficiency".
    pub fn efficiency(&self) -> f64 {
        let testable = self.total_faults - self.untestable.len();
        if testable == 0 {
            1.0
        } else {
            self.detected.count_ones() as f64 / testable as f64
        }
    }

    /// Ids of the detected faults, in target-list order. This is the
    /// paper's fault list `F`: the set the reseeding must re-cover.
    pub fn detected_ids(&self) -> Vec<FaultId> {
        (0..self.total_faults)
            .filter(|&i| self.detected.get(i))
            .map(FaultId::from_index)
            .collect()
    }
}

/// The full ATPG engine.
///
/// See the [crate-level documentation](crate) for the role it plays in the
/// reseeding flow and an end-to-end example.
#[derive(Debug)]
pub struct Atpg {
    netlist: Netlist,
    fsim: FaultSimulator,
}

impl Atpg {
    /// Builds the engine for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        // validate eagerly so `run` cannot fail
        let _ = Podem::new(netlist)?;
        Ok(Atpg {
            netlist: netlist.clone(),
            fsim: FaultSimulator::new(netlist)?,
        })
    }

    /// The targeted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Runs ATPG against `faults`.
    pub fn run(&self, faults: &FaultList, config: &AtpgConfig) -> AtpgResult {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let width = self.netlist.inputs().len();
        let mut detected = BitVec::zeros(faults.len());
        let mut patterns: Vec<BitVec> = Vec::new();
        let mut random_detected = 0usize;

        // Not-yet-detected faults in target-list order, maintained
        // incrementally (one ordered retain per batch/round) instead of
        // rebuilt from `detected` after every test.
        let mut remaining: Vec<FaultId> = faults.iter().map(|(id, _)| id).collect();

        // ---- Phase 0: optional static untestability pre-pass ----------
        //
        // Statically-proven untestable faults are recorded up front and
        // removed from the target list, so neither the random phase nor
        // PODEM spends budget on them. This cannot change the detected
        // set or the pattern sequence: a provably untestable fault is
        // detected by no pattern, so it never contributes a first
        // detection in Phase 1 and PODEM could only ever classify it
        // (untestable or aborted), never produce a test for it.
        let mut untestable: Vec<FaultId> = Vec::new();
        let learned = config.static_learning.then(|| {
            fbist_analyze::LearnedImplications::learn(&self.netlist)
                .expect("netlist already validated")
        });
        if config.static_prepass {
            let statically_untestable =
                fbist_analyze::untestable_faults_with(&self.netlist, faults, learned.as_ref())
                    .expect("netlist already validated");
            remaining.retain(|&id| {
                if statically_untestable[id.index()] {
                    untestable.push(id);
                    false
                } else {
                    true
                }
            });
        }

        // ---- Phase 1: random patterns with fault dropping -------------
        let mut stall = 0usize;
        for _ in 0..config.max_random_batches {
            if remaining.is_empty() || stall >= config.random_stall_batches {
                break;
            }
            let batch: Vec<BitVec> = (0..config.random_batch)
                .map(|_| BitVec::random_with(width, &mut || rng.gen::<u64>()))
                .collect();
            let res = self.fsim.run_wide(
                &batch,
                &faults.subset(&remaining),
                config.simd_width.resolve(batch.len()),
            );
            if res.detected_count() == 0 {
                stall += 1;
                continue;
            }
            stall = 0;
            random_detected += res.detected_count();
            // keep only the patterns that first-detect something
            let mut useful: Vec<usize> = res
                .first_detection
                .iter()
                .flatten()
                .map(|&p| p as usize)
                .collect();
            useful.sort_unstable();
            useful.dedup();
            for &p in &useful {
                patterns.push(batch[p].clone());
            }
            for (sub, &orig) in remaining.iter().enumerate() {
                if res.detected.get(sub) {
                    detected.set(orig.index(), true);
                }
            }
            remaining.retain(|id| !detected.get(id.index()));
        }

        // ---- Phase 2: fault-parallel PODEM in deterministic rounds -----
        //
        // Each round takes the next PODEM_ROUND undetected faults in index
        // order, searches their cubes in parallel (a pure function of the
        // fault), then applies fills + drops serially in index order. A
        // candidate whose target an earlier *accepted* pattern of the same
        // round already covers is discarded — exactly the fault the serial
        // loop would have skipped — so the accepted test sequence, and with
        // it every statistic, is independent of the worker count.
        let podem = Podem::with_config(
            &self.netlist,
            PodemConfig {
                backtrack_limit: config.backtrack_limit,
                learning: learned,
            },
        )
        .expect("netlist already validated");
        let mut aborted = Vec::new();
        let mut podem_tests = 0usize;
        // Faults PODEM has not yet attempted, in index order. Untestable
        // and aborted faults leave this queue but stay in `remaining`: a
        // later pattern may still cover an aborted fault fortuitously.
        let queue: Vec<FaultId> = remaining.clone();
        let mut cursor = 0usize;
        while cursor < queue.len() {
            let mut targets: Vec<FaultId> = Vec::with_capacity(PODEM_ROUND);
            while cursor < queue.len() && targets.len() < PODEM_ROUND {
                let fid = queue[cursor];
                cursor += 1;
                if !detected.get(fid.index()) {
                    targets.push(fid);
                }
            }
            if targets.is_empty() {
                break;
            }

            // Parallel part: generate a cube per target and fill it from
            // the target's own seed-derived RNG stream. Chunks reuse one
            // PODEM session each; results come back in target order.
            let n_chunks = targets.len().div_ceil(PODEM_CHUNK);
            let outcomes: Vec<RoundOutcome> =
                mini_rayon::par_map_indexed(config.jobs, n_chunks, |ci| {
                    let lo = ci * PODEM_CHUNK;
                    let hi = (lo + PODEM_CHUNK).min(targets.len());
                    let mut session = podem.session();
                    targets[lo..hi]
                        .iter()
                        .map(|&fid| match session.generate(faults.get(fid)) {
                            PodemOutcome::Test(cube) => {
                                let mut fill_rng =
                                    StdRng::seed_from_u64(fill_stream_seed(config.seed, fid));
                                RoundOutcome::Test(match config.fill {
                                    FillMode::Random => {
                                        cube.fill_with(&mut || fill_rng.gen::<u64>())
                                    }
                                    FillMode::Zeros => cube.fill_const(false),
                                    FillMode::Ones => cube.fill_const(true),
                                })
                            }
                            PodemOutcome::Untestable => RoundOutcome::Untestable,
                            PodemOutcome::Aborted => RoundOutcome::Aborted,
                        })
                        .collect::<Vec<RoundOutcome>>()
                })
                .into_iter()
                .flatten()
                .collect();

            // Serial part, in fault-index order. The (no-dropping) pattern
            // × target dictionary tells each apply step whether an earlier
            // accepted pattern of this round already covers its target.
            let candidates: Vec<BitVec> = outcomes
                .iter()
                .filter_map(|o| match o {
                    RoundOutcome::Test(p) => Some(p.clone()),
                    _ => None,
                })
                .collect();
            let dict = (!candidates.is_empty()).then(|| {
                self.fsim.dictionary_wide(
                    &candidates,
                    &faults.subset(&targets),
                    config.simd_width.resolve(candidates.len()),
                )
            });
            let mut row = 0usize;
            let round_start = patterns.len();
            for (j, &fid) in targets.iter().enumerate() {
                match &outcomes[j] {
                    RoundOutcome::Test(pattern) => {
                        let this_row = row;
                        row += 1;
                        if detected.get(fid.index()) {
                            continue; // covered within this round — skip
                        }
                        let dict = dict.as_ref().expect("candidate implies dictionary");
                        debug_assert!(
                            dict.get(this_row, j),
                            "PODEM cube failed to detect its own fault {}",
                            faults.get(fid).describe(&self.netlist)
                        );
                        podem_tests += 1;
                        patterns.push(pattern.clone());
                        // credit this pattern's fortuitous detections among
                        // the round's targets so later apply steps see them
                        for (k, &other) in targets.iter().enumerate() {
                            if dict.get(this_row, k) {
                                detected.set(other.index(), true);
                            }
                        }
                    }
                    RoundOutcome::Untestable => {
                        if !detected.get(fid.index()) {
                            untestable.push(fid);
                        }
                    }
                    RoundOutcome::Aborted => {
                        if !detected.get(fid.index()) {
                            aborted.push(fid);
                        }
                    }
                }
            }

            // One batched drop pass for the whole round's accepted
            // patterns (≤ one packed 64-lane block) against everything
            // still undetected, instead of one `detects` call per test.
            if patterns.len() > round_start {
                let round = &patterns[round_start..];
                let det = self.fsim.detects_wide(
                    round,
                    &faults.subset(&remaining),
                    config.simd_width.resolve(round.len()),
                );
                for (sub, &orig) in remaining.iter().enumerate() {
                    if det.get(sub) {
                        detected.set(orig.index(), true);
                    }
                }
            }
            remaining.retain(|id| !detected.get(id.index()));
        }

        // A fault PODEM gave up on can still be covered fortuitously by a
        // later round's pattern: report it detected, not aborted, so the
        // statistics never double-count (same for untestable, defensively
        // — a proven-redundant fault can never be detected).
        untestable.retain(|id| !detected.get(id.index()));
        aborted.retain(|id| !detected.get(id.index()));

        // ---- Phase 3: reverse-order compaction --------------------------
        if config.compact && patterns.len() > 1 {
            patterns = self.compacted_or_fallback(patterns, faults, detected.count_ones(), config);
        }

        AtpgResult {
            patterns,
            detected,
            untestable,
            aborted,
            random_detected,
            podem_tests,
            total_faults: faults.len(),
        }
    }

    /// Reverse-order compaction with a real (release-mode) coverage check:
    /// keeps each pattern that first-detects some fault when the set is
    /// replayed in reverse. If the compacted set were ever to cover a
    /// different number of faults than `expected_detected`, the
    /// uncompacted set is returned instead and a warning is printed —
    /// a short test set must never ship silently.
    fn compacted_or_fallback(
        &self,
        patterns: Vec<BitVec>,
        faults: &FaultList,
        expected_detected: usize,
        config: &AtpgConfig,
    ) -> Vec<BitVec> {
        let reversed: Vec<BitVec> = patterns.iter().rev().cloned().collect();
        let res = self
            .fsim
            .run_wide(&reversed, faults, config.simd_width.resolve(reversed.len()));
        if res.detected.count_ones() != expected_detected {
            eprintln!(
                "fbist-atpg: compaction changed coverage ({} != {} faults); \
                 keeping the uncompacted test set",
                res.detected.count_ones(),
                expected_detected
            );
            return patterns;
        }
        let mut keep: Vec<usize> = res
            .first_detection
            .iter()
            .flatten()
            .map(|&p| p as usize)
            .collect();
        keep.sort_unstable();
        keep.dedup();
        keep.iter().map(|&p| reversed[p].clone()).collect()
    }
}

/// One target fault's round outcome: a filled candidate pattern, or the
/// search verdict.
enum RoundOutcome {
    Test(BitVec),
    Untestable,
    Aborted,
}

/// Derives the don't-care fill stream seed for one fault: a SplitMix64
/// mix of the master seed and the fault index, so every fault owns an
/// independent deterministic stream and no fill ever depends on how many
/// cubes other workers produced.
fn fill_stream_seed(seed: u64, fid: FaultId) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(fid.index() as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    #[test]
    fn c17_full_coverage_and_deterministic() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let cfg = AtpgConfig::default();
        let r1 = atpg.run(&faults, &cfg);
        let r2 = atpg.run(&faults, &cfg);
        assert!((r1.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(r1.patterns, r2.patterns, "same seed, same result");
        assert!(r1.untestable.is_empty());
        assert!(r1.aborted.is_empty());
    }

    #[test]
    fn adder_full_coverage() {
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        assert!(
            (r.coverage() - 1.0).abs() < 1e-12,
            "coverage {}",
            r.coverage()
        );
        // the compacted set must stay well below exhaustive (512)
        assert!(r.patterns.len() < 100, "{} patterns", r.patterns.len());
    }

    #[test]
    fn compaction_preserves_coverage() {
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut cfg = AtpgConfig {
            compact: false,
            ..Default::default()
        };
        let full = atpg.run(&faults, &cfg);
        cfg.compact = true;
        let compacted = atpg.run(&faults, &cfg);
        assert_eq!(full.detected.count_ones(), compacted.detected.count_ones());
        assert!(compacted.patterns.len() <= full.patterns.len());
        // verify compacted patterns really cover everything claimed
        let check = atpg.fsim.detects(&compacted.patterns, &faults);
        assert_eq!(check.count_ones(), compacted.detected.count_ones());
    }

    #[test]
    fn redundancy_is_reported() {
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\ny = OR(a, na)\nz = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        assert!(!r.untestable.is_empty());
        assert!(r.coverage() < 1.0);
        assert!(
            (r.efficiency() - 1.0).abs() < 1e-12,
            "all testable faults found"
        );
    }

    #[test]
    fn fill_modes_affect_patterns_not_coverage() {
        let n = embedded::majority();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        for fill in [FillMode::Random, FillMode::Zeros, FillMode::Ones] {
            let cfg = AtpgConfig {
                fill,
                max_random_batches: 0, // force PODEM-only
                ..AtpgConfig::default()
            };
            let r = atpg.run(&faults, &cfg);
            assert!((r.coverage() - 1.0).abs() < 1e-12, "{fill:?}");
        }
    }

    #[test]
    fn podem_only_run_works() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let cfg = AtpgConfig {
            max_random_batches: 0,
            ..AtpgConfig::default()
        };
        let r = atpg.run(&faults, &cfg);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(r.random_detected, 0);
        assert!(r.podem_tests > 0);
    }

    #[test]
    fn jobs_is_a_pure_throughput_knob() {
        // bit-identical AtpgResult at any worker count (the full-profile
        // sweep lives in tests/atpg_equivalence.rs)
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let run = |jobs| {
            atpg.run(
                &faults,
                &AtpgConfig {
                    jobs,
                    ..AtpgConfig::default()
                },
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(3));
    }

    #[test]
    fn compaction_falls_back_when_coverage_would_change() {
        // the release-mode guard: handed an expected coverage the
        // compacted set cannot reach, the engine must keep the
        // uncompacted patterns instead of shipping a short set
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let r = atpg.run(
            &faults,
            &AtpgConfig {
                compact: false,
                ..AtpgConfig::default()
            },
        );
        let impossible = r.detected.count_ones() + 1;
        let cfg = AtpgConfig::default();
        let kept = atpg.compacted_or_fallback(r.patterns.clone(), &faults, impossible, &cfg);
        assert_eq!(kept, r.patterns, "mismatch must return the input set");
        // and with the true coverage the pass compacts as usual
        let compacted =
            atpg.compacted_or_fallback(r.patterns.clone(), &faults, r.detected.count_ones(), &cfg);
        assert!(compacted.len() <= r.patterns.len());
        let check = atpg.fsim.detects(&compacted, &faults);
        assert_eq!(check.count_ones(), r.detected.count_ones());
    }

    #[test]
    fn aborted_and_untestable_never_overlap_detected() {
        // a zero backtrack budget aborts on the redundant reconvergent
        // fault; any abort that a later pattern covers fortuitously must
        // be reported as detected, never double-counted in both lists
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\nz = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let r = atpg.run(
            &faults,
            &AtpgConfig {
                backtrack_limit: 0,
                max_random_batches: 0,
                ..AtpgConfig::default()
            },
        );
        assert!(!r.aborted.is_empty(), "budget 0 must abort something");
        for id in r.aborted.iter().chain(&r.untestable) {
            assert!(
                !r.detected.get(id.index()),
                "fault {} reported given-up *and* detected",
                id.index()
            );
        }
    }

    #[test]
    fn static_prepass_preserves_detection_and_patterns() {
        // Prepass on vs off: identical patterns and detected set; the
        // pruned faults all end up classified untestable.
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\ny = OR(a, na)\nz = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let off = atpg.run(&faults, &AtpgConfig::default());
        let on = atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass: true,
                ..AtpgConfig::default()
            },
        );
        assert_eq!(off.patterns, on.patterns);
        assert_eq!(off.detected, on.detected);
        assert_eq!(off.random_detected, on.random_detected);
        // same untestable faults as a set (order may differ)
        let mut a = off.untestable.clone();
        let mut b = on.untestable.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!on.untestable.is_empty());
        // every statically pruned fault is reported untestable
        let mask = fbist_analyze::untestable_faults(&n, &faults).unwrap();
        for (id, _) in faults.iter() {
            if mask[id.index()] {
                assert!(on.untestable.contains(&id));
                assert!(!on.detected.get(id.index()));
            }
        }
    }

    #[test]
    fn static_prepass_upgrades_aborts_to_untestable() {
        // With a zero backtrack budget PODEM aborts on the redundant
        // fault; the prepass settles it statically instead.
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\nz = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let cfg = AtpgConfig {
            backtrack_limit: 0,
            max_random_batches: 0,
            ..AtpgConfig::default()
        };
        let off = atpg.run(&faults, &cfg);
        let on = atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass: true,
                ..cfg
            },
        );
        assert_eq!(off.detected, on.detected);
        assert!(
            on.aborted.len() < off.aborted.len(),
            "prepass must shrink the aborted list ({} vs {})",
            on.aborted.len(),
            off.aborted.len()
        );
        assert!(on.untestable.len() > off.untestable.len());
    }

    #[test]
    fn static_learning_keeps_coverage_and_jobs_invariance() {
        // Learning changes which faults abort, never which are detectable;
        // and seeded sessions stay a pure function of the fault, so the
        // jobs knob remains pure throughput (full sweep in
        // tests/atpg_equivalence.rs).
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let run = |jobs| {
            atpg.run(
                &faults,
                &AtpgConfig {
                    jobs,
                    static_learning: true,
                    ..AtpgConfig::default()
                },
            )
        };
        let serial = run(1);
        assert!((serial.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(serial, run(4));
    }

    #[test]
    fn static_learning_never_prunes_less_than_the_plain_prepass() {
        // With a zero backtrack budget every unproven redundancy aborts;
        // the learned pre-pass must settle at least what the plain
        // implication sweep settles, with the detected set unchanged.
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\nz = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let cfg = AtpgConfig {
            backtrack_limit: 0,
            max_random_batches: 0,
            static_prepass: true,
            ..AtpgConfig::default()
        };
        let plain = atpg.run(&faults, &cfg);
        let learned = atpg.run(
            &faults,
            &AtpgConfig {
                static_learning: true,
                ..cfg
            },
        );
        assert_eq!(plain.detected, learned.detected);
        assert!(learned.untestable.len() >= plain.untestable.len());
        assert!(learned.aborted.len() <= plain.aborted.len());
    }

    #[test]
    fn learning_prepass_changes_classification_only() {
        // With learning fixed on, turning the pre-pass on prunes faults
        // that are provably untestable — detected by no pattern — so the
        // pattern sequence and detected set cannot move.
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\ny = OR(a, na)\nz = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let base = AtpgConfig {
            static_learning: true,
            ..AtpgConfig::default()
        };
        let off = atpg.run(&faults, &base);
        let on = atpg.run(
            &faults,
            &AtpgConfig {
                static_prepass: true,
                ..base
            },
        );
        assert_eq!(off.patterns, on.patterns);
        assert_eq!(off.detected, on.detected);
        assert_eq!(off.random_detected, on.random_detected);
        let mut a = off.untestable.clone();
        let mut b = on.untestable.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn detected_ids_match_flags() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        let ids = r.detected_ids();
        assert_eq!(ids.len(), r.detected.count_ones());
        for id in ids {
            assert!(r.detected.get(id.index()));
        }
    }
}
