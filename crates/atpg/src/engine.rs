//! The complete ATPG engine: random phase + PODEM + compaction.

use fbist_bits::BitVec;
use fbist_fault::{FaultId, FaultList, FaultSimulator};
use fbist_netlist::Netlist;
use fbist_sim::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::podem::{Podem, PodemConfig, PodemOutcome};

/// How the don't-care positions of PODEM cubes are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillMode {
    /// Fill with pseudo-random values (default; best for fortuitous
    /// detection of other faults).
    #[default]
    Random,
    /// Fill with zeros.
    Zeros,
    /// Fill with ones.
    Ones,
}

/// Configuration of an [`Atpg`] run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// RNG seed; equal seeds give bit-identical results.
    pub seed: u64,
    /// Patterns per random batch (one packed block).
    pub random_batch: usize,
    /// Hard cap on the number of random batches.
    pub max_random_batches: usize,
    /// Stop the random phase after this many consecutive batches that
    /// detect nothing new.
    pub random_stall_batches: usize,
    /// PODEM backtrack budget per fault.
    pub backtrack_limit: usize,
    /// Fill mode for cube don't-cares.
    pub fill: FillMode,
    /// Run the reverse-order compaction pass.
    pub compact: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 0x5EED_CAFE,
            random_batch: 64,
            max_random_batches: 64,
            random_stall_batches: 3,
            backtrack_limit: 400,
            fill: FillMode::Random,
            compact: true,
        }
    }
}

/// Result of an ATPG run — the paper's `(ATPGTS, F)` pair plus statistics.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The generated (compacted) test set `ATPGTS`.
    pub patterns: Vec<BitVec>,
    /// Per-fault detection flag, indexed like the target list.
    pub detected: BitVec,
    /// Faults proven untestable by PODEM.
    pub untestable: Vec<FaultId>,
    /// Faults on which PODEM exhausted its backtrack budget.
    pub aborted: Vec<FaultId>,
    /// Faults detected during the random phase.
    pub random_detected: usize,
    /// Number of PODEM-produced patterns (before compaction).
    pub podem_tests: usize,
    /// Total faults targeted.
    pub total_faults: usize,
}

impl AtpgResult {
    /// Fault coverage over the target list, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected.count_ones() as f64 / self.total_faults as f64
        }
    }

    /// Coverage over the *testable* faults (excludes proven-untestable), the
    /// figure usually quoted as "fault efficiency".
    pub fn efficiency(&self) -> f64 {
        let testable = self.total_faults - self.untestable.len();
        if testable == 0 {
            1.0
        } else {
            self.detected.count_ones() as f64 / testable as f64
        }
    }

    /// Ids of the detected faults, in target-list order. This is the
    /// paper's fault list `F`: the set the reseeding must re-cover.
    pub fn detected_ids(&self) -> Vec<FaultId> {
        (0..self.total_faults)
            .filter(|&i| self.detected.get(i))
            .map(FaultId::from_index)
            .collect()
    }
}

/// The full ATPG engine.
///
/// See the [crate-level documentation](crate) for the role it plays in the
/// reseeding flow and an end-to-end example.
#[derive(Debug)]
pub struct Atpg {
    netlist: Netlist,
    fsim: FaultSimulator,
}

impl Atpg {
    /// Builds the engine for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        // validate eagerly so `run` cannot fail
        let _ = Podem::new(netlist)?;
        Ok(Atpg {
            netlist: netlist.clone(),
            fsim: FaultSimulator::new(netlist)?,
        })
    }

    /// The targeted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Runs ATPG against `faults`.
    pub fn run(&self, faults: &FaultList, config: &AtpgConfig) -> AtpgResult {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let width = self.netlist.inputs().len();
        let mut detected = BitVec::zeros(faults.len());
        let mut patterns: Vec<BitVec> = Vec::new();
        let mut random_detected = 0usize;

        // ---- Phase 1: random patterns with fault dropping -------------
        let mut stall = 0usize;
        for _ in 0..config.max_random_batches {
            if detected.count_ones() == faults.len() || stall >= config.random_stall_batches {
                break;
            }
            let batch: Vec<BitVec> = (0..config.random_batch)
                .map(|_| BitVec::random_with(width, &mut || rng.gen::<u64>()))
                .collect();
            let (remaining_ids, remaining_list) = self.undetected(faults, &detected);
            let res = self.fsim.run(&batch, &remaining_list);
            if res.detected_count() == 0 {
                stall += 1;
                continue;
            }
            stall = 0;
            random_detected += res.detected_count();
            // keep only the patterns that first-detect something
            let mut useful: Vec<usize> = res
                .first_detection
                .iter()
                .flatten()
                .map(|&p| p as usize)
                .collect();
            useful.sort_unstable();
            useful.dedup();
            for &p in &useful {
                patterns.push(batch[p].clone());
            }
            for (sub, &orig) in remaining_ids.iter().enumerate() {
                if res.detected.get(sub) {
                    detected.set(orig.index(), true);
                }
            }
        }

        // ---- Phase 2: deterministic PODEM ------------------------------
        let podem = Podem::with_config(
            &self.netlist,
            PodemConfig {
                backtrack_limit: config.backtrack_limit,
            },
        )
        .expect("netlist already validated");
        let mut untestable = Vec::new();
        let mut aborted = Vec::new();
        let mut podem_tests = 0usize;
        for (fid, fault) in faults.iter() {
            if detected.get(fid.index()) {
                continue;
            }
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    let pattern = match config.fill {
                        FillMode::Random => cube.fill_with(&mut || rng.gen::<u64>()),
                        FillMode::Zeros => cube.fill_const(false),
                        FillMode::Ones => cube.fill_const(true),
                    };
                    podem_tests += 1;
                    // fault-simulate against all undetected faults
                    let (remaining_ids, remaining_list) = self.undetected(faults, &detected);
                    let det = self
                        .fsim
                        .detects(std::slice::from_ref(&pattern), &remaining_list);
                    for (sub, &orig) in remaining_ids.iter().enumerate() {
                        if det.get(sub) {
                            detected.set(orig.index(), true);
                        }
                    }
                    debug_assert!(
                        detected.get(fid.index()),
                        "PODEM cube failed to detect its own fault {}",
                        fault.describe(&self.netlist)
                    );
                    patterns.push(pattern);
                }
                PodemOutcome::Untestable => untestable.push(fid),
                PodemOutcome::Aborted => aborted.push(fid),
            }
        }

        // ---- Phase 3: reverse-order compaction --------------------------
        if config.compact && patterns.len() > 1 {
            let reversed: Vec<BitVec> = patterns.iter().rev().cloned().collect();
            let res = self.fsim.run(&reversed, faults);
            let mut keep: Vec<usize> = res
                .first_detection
                .iter()
                .flatten()
                .map(|&p| p as usize)
                .collect();
            keep.sort_unstable();
            keep.dedup();
            let compacted: Vec<BitVec> = keep.iter().map(|&p| reversed[p].clone()).collect();
            debug_assert_eq!(
                res.detected.count_ones(),
                detected.count_ones(),
                "compaction changed coverage"
            );
            patterns = compacted;
        }

        AtpgResult {
            patterns,
            detected,
            untestable,
            aborted,
            random_detected,
            podem_tests,
            total_faults: faults.len(),
        }
    }

    /// Splits out the not-yet-detected faults as (original ids, sublist).
    fn undetected(&self, faults: &FaultList, detected: &BitVec) -> (Vec<FaultId>, FaultList) {
        let ids: Vec<FaultId> = faults
            .iter()
            .filter(|(id, _)| !detected.get(id.index()))
            .map(|(id, _)| id)
            .collect();
        let list = faults.subset(&ids);
        (ids, list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    #[test]
    fn c17_full_coverage_and_deterministic() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let cfg = AtpgConfig::default();
        let r1 = atpg.run(&faults, &cfg);
        let r2 = atpg.run(&faults, &cfg);
        assert!((r1.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(r1.patterns, r2.patterns, "same seed, same result");
        assert!(r1.untestable.is_empty());
        assert!(r1.aborted.is_empty());
    }

    #[test]
    fn adder_full_coverage() {
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        assert!(
            (r.coverage() - 1.0).abs() < 1e-12,
            "coverage {}",
            r.coverage()
        );
        // the compacted set must stay well below exhaustive (512)
        assert!(r.patterns.len() < 100, "{} patterns", r.patterns.len());
    }

    #[test]
    fn compaction_preserves_coverage() {
        let n = embedded::adder4();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut cfg = AtpgConfig {
            compact: false,
            ..Default::default()
        };
        let full = atpg.run(&faults, &cfg);
        cfg.compact = true;
        let compacted = atpg.run(&faults, &cfg);
        assert_eq!(full.detected.count_ones(), compacted.detected.count_ones());
        assert!(compacted.patterns.len() <= full.patterns.len());
        // verify compacted patterns really cover everything claimed
        let check = atpg.fsim.detects(&compacted.patterns, &faults);
        assert_eq!(check.count_ones(), compacted.detected.count_ones());
    }

    #[test]
    fn redundancy_is_reported() {
        let src =
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nna = NOT(a)\ny = OR(a, na)\nz = AND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::full(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        assert!(!r.untestable.is_empty());
        assert!(r.coverage() < 1.0);
        assert!(
            (r.efficiency() - 1.0).abs() < 1e-12,
            "all testable faults found"
        );
    }

    #[test]
    fn fill_modes_affect_patterns_not_coverage() {
        let n = embedded::majority();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        for fill in [FillMode::Random, FillMode::Zeros, FillMode::Ones] {
            let cfg = AtpgConfig {
                fill,
                max_random_batches: 0, // force PODEM-only
                ..AtpgConfig::default()
            };
            let r = atpg.run(&faults, &cfg);
            assert!((r.coverage() - 1.0).abs() < 1e-12, "{fill:?}");
        }
    }

    #[test]
    fn podem_only_run_works() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let cfg = AtpgConfig {
            max_random_batches: 0,
            ..AtpgConfig::default()
        };
        let r = atpg.run(&faults, &cfg);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(r.random_detected, 0);
        assert!(r.podem_tests > 0);
    }

    #[test]
    fn detected_ids_match_flags() {
        let n = embedded::c17();
        let atpg = Atpg::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let r = atpg.run(&faults, &AtpgConfig::default());
        let ids = r.detected_ids();
        assert_eq!(ids.len(), r.detected.count_ones());
        for id in ids {
            assert!(r.detected.get(id.index()));
        }
    }
}
