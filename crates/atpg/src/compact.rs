//! Static test-cube compaction.
//!
//! PODEM cubes specify only the inputs needed for one fault; cubes for
//! different faults are frequently *compatible* (agree on every specified
//! position) and can be merged into a single pattern before fill. This is
//! the classical static-compaction step (cf. COMPACTEST, ref [15] of the
//! paper) and complements the dynamic reverse-order pass in
//! [`Atpg`](crate::Atpg): fewer patterns means a smaller initial
//! reseeding `T`, which directly shrinks the Detection Matrix.

use fbist_bits::Cube;

/// Greedily merges compatible cubes, first-fit over a size-descending
/// order (most-specified cubes first makes the bins tight early).
///
/// The result covers every input cube: each input cube is contained in
/// exactly one output cube.
///
/// # Panics
///
/// Panics if the cubes have differing widths.
///
/// # Example
///
/// ```
/// use fbist_atpg::compact_cubes;
/// use fbist_bits::Cube;
///
/// let cubes: Vec<Cube> = ["1XX0", "X1X0", "0XXX"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// let merged = compact_cubes(&cubes);
/// // "1XX0" and "X1X0" merge into "11X0"; "0XXX" conflicts with it
/// assert_eq!(merged.len(), 2);
/// ```
pub fn compact_cubes(cubes: &[Cube]) -> Vec<Cube> {
    if cubes.is_empty() {
        return Vec::new();
    }
    let width = cubes[0].width();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].specified_count()));

    let mut bins: Vec<Cube> = Vec::new();
    for &i in &order {
        let c = &cubes[i];
        assert_eq!(c.width(), width, "cube width mismatch");
        let mut placed = false;
        for bin in &mut bins {
            if let Some(merged) = bin.merge(c) {
                *bin = merged;
                placed = true;
                break;
            }
        }
        if !placed {
            bins.push(c.clone());
        }
    }
    bins
}

/// Compaction statistics: `(input cubes, output cubes, ratio)`.
pub fn compaction_ratio(before: usize, after: usize) -> f64 {
    if before == 0 {
        1.0
    } else {
        after as f64 / before as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cubes(specs: &[&str]) -> Vec<Cube> {
        specs.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn disjoint_cubes_all_merge() {
        let cs = cubes(&["1XXX", "X1XX", "XX1X", "XXX1"]);
        let merged = compact_cubes(&cs);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].to_string(), "1111");
    }

    #[test]
    fn conflicting_cubes_stay_apart() {
        let cs = cubes(&["1XXX", "0XXX"]);
        assert_eq!(compact_cubes(&cs).len(), 2);
    }

    #[test]
    fn every_input_contained_in_some_output() {
        let cs = cubes(&["1X0X", "X10X", "0XX1", "XX01", "111X"]);
        let merged = compact_cubes(&cs);
        for c in &cs {
            let hit = merged.iter().any(|m| {
                // m contains c iff merging doesn't add anything: c ⊆ m when
                // m is compatible with c and m's cares ⊇ c's cares on agreement
                m.merge(c).is_some_and(|u| &u == m)
            });
            assert!(hit, "cube {c} lost by compaction");
        }
    }

    #[test]
    fn empty_input() {
        assert!(compact_cubes(&[]).is_empty());
    }

    #[test]
    fn idempotent_on_incompatible_set() {
        let cs = cubes(&["10", "01"]);
        let once = compact_cubes(&cs);
        let twice = compact_cubes(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(compaction_ratio(10, 5), 0.5);
        assert_eq!(compaction_ratio(0, 0), 1.0);
    }

    #[test]
    fn real_podem_cubes_compact() {
        use crate::podem::{Podem, PodemOutcome};
        use fbist_fault::FaultList;
        use fbist_netlist::embedded;
        let n = embedded::adder4();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut cs = Vec::new();
        for (_, f) in faults.iter() {
            if let PodemOutcome::Test(c) = podem.generate(f) {
                cs.push(c);
            }
        }
        let merged = compact_cubes(&cs);
        assert!(
            merged.len() * 2 < cs.len(),
            "expected ≥2x compaction on adder cubes: {} → {}",
            cs.len(),
            merged.len()
        );
    }
}
