//! The PODEM test-generation algorithm (Goel, 1981).
//!
//! PODEM searches the space of primary-input assignments directly (rather
//! than internal net values, as the D-algorithm does), which makes the
//! search complete with a simple decision stack: every internal conflict is
//! repaired by flipping the most recent unflipped PI decision.
//!
//! Fault effects are tracked with a *two-plane* three-valued simulation:
//! each net carries a (good, faulty) pair of [`Trit`]s; the classical
//! five-valued `D`/`D̄` appear as the pairs `(1,0)` / `(0,1)`. This handles
//! stem and branch faults uniformly.

use fbist_bits::{Cube, Trit};
use fbist_fault::{Fault, FaultSite};
use fbist_netlist::{eval_trit, GateId, GateKind, Netlist};
use fbist_sim::SimError;

use crate::testability::Testability;

/// Tuning knobs for the PODEM search.
#[derive(Debug, Clone)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up with
    /// [`PodemOutcome::Aborted`].
    pub backtrack_limit: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 1000,
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube whose every fill detects the fault.
    Test(Cube),
    /// The fault is proven untestable (redundant).
    Untestable,
    /// The backtrack budget was exhausted.
    Aborted,
}

impl PodemOutcome {
    /// The test cube, if one was found.
    pub fn cube(&self) -> Option<&Cube> {
        match self {
            PodemOutcome::Test(c) => Some(c),
            _ => None,
        }
    }
}

/// Search statistics of one PODEM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PodemStats {
    /// Number of PI decisions taken.
    pub decisions: usize,
    /// Number of backtracks (decision flips).
    pub backtracks: usize,
    /// Number of full two-plane implications (simulations).
    pub implications: usize,
}

/// A PODEM test generator bound to one combinational netlist.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::{Fault, FaultSite, FaultList};
/// use fbist_atpg::{Podem, PodemOutcome};
///
/// let c17 = embedded::c17();
/// let podem = Podem::new(&c17)?;
/// let fault = FaultList::collapsed(&c17).get(fbist_fault::FaultId::from_index(0));
/// match podem.generate(fault) {
///     PodemOutcome::Test(cube) => assert_eq!(cube.width(), 5),
///     other => panic!("c17 faults are testable, got {other:?}"),
/// }
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Podem {
    netlist: Netlist,
    order: Vec<GateId>,
    fanouts: Vec<Vec<GateId>>,
    testability: Testability,
    config: PodemConfig,
}

struct Planes {
    good: Vec<Trit>,
    faulty: Vec<Trit>,
}

impl Planes {
    /// `true` if the net provably carries a fault effect (D or D̄).
    fn has_d(&self, net: GateId) -> bool {
        let (g, f) = (self.good[net.index()], self.faulty[net.index()]);
        g.is_specified() && f.is_specified() && g != f
    }

    /// `true` if the net could still change (either plane unresolved).
    fn fluid(&self, net: GateId) -> bool {
        self.good[net.index()] == Trit::X || self.faulty[net.index()] == Trit::X
    }
}

impl Podem {
    /// Builds a PODEM engine for a combinational netlist (this includes
    /// computing SCOAP guidance).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Self::with_config(netlist, PodemConfig::default())
    }

    /// Builds a PODEM engine with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`Podem::new`].
    pub fn with_config(netlist: &Netlist, config: PodemConfig) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        Ok(Podem {
            netlist: netlist.clone(),
            order,
            fanouts: netlist.fanouts(),
            testability: Testability::analyze(netlist),
            config,
        })
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Generates a test for `fault`. See [`PodemOutcome`].
    pub fn generate(&self, fault: Fault) -> PodemOutcome {
        self.generate_with_stats(fault).0
    }

    /// Generates a test and reports search statistics.
    pub fn generate_with_stats(&self, fault: Fault) -> (PodemOutcome, PodemStats) {
        let npis = self.netlist.inputs().len();
        let mut pi = vec![Trit::X; npis];
        // decision stack: (pi position, current value, already flipped)
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut stats = PodemStats::default();

        loop {
            let planes = self.simulate(&pi, fault);
            stats.implications += 1;
            if self.netlist.outputs().iter().any(|&o| planes.has_d(o)) {
                let mut cube = Cube::all_x(npis);
                for (k, &t) in pi.iter().enumerate() {
                    cube.set(k, t);
                }
                return (PodemOutcome::Test(cube), stats);
            }

            let objective = self.objective(&planes, fault);
            let next = objective.and_then(|(net, val)| self.backtrace(net, val, &planes));
            match next {
                Some((pos, val)) => {
                    stats.decisions += 1;
                    pi[pos] = Trit::from_bool(val);
                    stack.push((pos, val, false));
                }
                None => {
                    // conflict → backtrack
                    loop {
                        match stack.pop() {
                            Some((pos, val, false)) => {
                                stats.backtracks += 1;
                                if stats.backtracks > self.config.backtrack_limit {
                                    return (PodemOutcome::Aborted, stats);
                                }
                                pi[pos] = Trit::from_bool(!val);
                                stack.push((pos, !val, true));
                                break;
                            }
                            Some((pos, _, true)) => {
                                pi[pos] = Trit::X;
                            }
                            None => return (PodemOutcome::Untestable, stats),
                        }
                    }
                }
            }
        }
    }

    /// Two-plane three-valued simulation of the current PI assignment with
    /// the fault injected in the faulty plane.
    fn simulate(&self, pi: &[Trit], fault: Fault) -> Planes {
        let n = self.netlist.gate_count();
        let mut good = vec![Trit::X; n];
        let mut faulty = vec![Trit::X; n];
        let stuck = Trit::from_bool(fault.stuck_value());

        for (k, &p) in self.netlist.inputs().iter().enumerate() {
            good[p.index()] = pi[k];
            faulty[p.index()] = pi[k];
        }
        if let FaultSite::GateOutput(g) = fault.site() {
            if self.netlist.gate(g).kind() == GateKind::Input {
                faulty[g.index()] = stuck;
            }
        }
        let mut buf: Vec<Trit> = Vec::with_capacity(8);
        for &id in &self.order {
            let g = self.netlist.gate(id);
            let kind = g.kind();
            if kind == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(g.fanin().iter().map(|f| good[f.index()]));
            good[id.index()] = eval_trit(kind, &buf);

            if fault.site() == FaultSite::GateOutput(id) {
                faulty[id.index()] = stuck;
                continue;
            }
            buf.clear();
            buf.extend(g.fanin().iter().map(|f| faulty[f.index()]));
            if let FaultSite::GateInput { gate, pin } = fault.site() {
                if gate == id {
                    buf[pin as usize] = stuck;
                }
            }
            faulty[id.index()] = eval_trit(kind, &buf);
        }
        Planes { good, faulty }
    }

    /// Picks the next objective `(net, value)`; `None` signals a conflict
    /// (fault unexcitable or unpropagatable under the current assignment).
    fn objective(&self, planes: &Planes, fault: Fault) -> Option<(GateId, bool)> {
        let stuck = fault.stuck_value();
        // 1. Excitation: the good value at the fault site must be !stuck.
        let site_net = match fault.site() {
            FaultSite::GateOutput(g) => g,
            FaultSite::GateInput { gate, pin } => self.netlist.gate(gate).fanin()[pin as usize],
        };
        match planes.good[site_net.index()] {
            Trit::X => return Some((site_net, !stuck)),
            v if v == Trit::from_bool(stuck) => return None,
            _ => {}
        }

        // 2. Propagation: choose a D-frontier gate with an X-path to a PO.
        let frontier = self.d_frontier(planes, fault);
        let frontier: Vec<GateId> = frontier
            .into_iter()
            .filter(|&g| self.x_path_to_po(g, planes))
            .collect();
        let &gate = frontier.iter().min_by_key(|&&g| self.testability.co(g))?;
        let g = self.netlist.gate(gate);
        // Set one still-X input to the non-controlling value (XOR-family:
        // pick the cheaper polarity).
        let forced_pin = match fault.site() {
            FaultSite::GateInput { gate: fg, pin } if fg == gate => Some(pin as usize),
            _ => None,
        };
        let mut best: Option<(u32, GateId, bool)> = None;
        for (p, &f) in g.fanin().iter().enumerate() {
            // candidate inputs are the *fluid* ones: either plane still X.
            // (The good plane alone is not enough — with reconvergent fault
            // effects the good value can be fully determined while the
            // faulty plane still depends on unassigned PIs.)
            if Some(p) == forced_pin || !planes.fluid(f) {
                continue;
            }
            let val = match g.kind().controlling_value() {
                Some(c) => !c,
                None => self.testability.cc0(f) > self.testability.cc1(f),
            };
            let cost = self.testability.cc(f, val);
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, f, val));
            }
        }
        best.map(|(_, net, val)| (net, val))
    }

    /// Gates through which the fault effect can still advance.
    fn d_frontier(&self, planes: &Planes, fault: Fault) -> Vec<GateId> {
        let mut out = Vec::new();
        for (id, g) in self.netlist.iter() {
            let kind = g.kind();
            if kind == GateKind::Input || kind.is_state() {
                continue;
            }
            if !planes.fluid(id) {
                continue;
            }
            let mut has_d_input = g.fanin().iter().any(|&f| planes.has_d(f));
            if let FaultSite::GateInput { gate, pin } = fault.site() {
                if gate == id {
                    // the branch fault is excited iff the source net's good
                    // value differs from the stuck value
                    let src = g.fanin()[pin as usize];
                    let gv = planes.good[src.index()];
                    if gv.is_specified() && gv != Trit::from_bool(fault.stuck_value()) {
                        has_d_input = true;
                    }
                }
            }
            if has_d_input {
                out.push(id);
            }
        }
        out
    }

    /// `true` if some path of still-fluid nets leads from `from` to a
    /// primary output.
    fn x_path_to_po(&self, from: GateId, planes: &Planes) -> bool {
        let mut seen = vec![false; self.netlist.gate_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        let mut is_po = vec![false; self.netlist.gate_count()];
        for &o in self.netlist.outputs() {
            is_po[o.index()] = true;
        }
        while let Some(g) = stack.pop() {
            if is_po[g.index()] {
                return true;
            }
            for &fo in &self.fanouts[g.index()] {
                if !seen[fo.index()] && planes.fluid(fo) {
                    seen[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        false
    }

    /// Maps an internal objective to a primary-input assignment by walking
    /// backward through X-valued nets, guided by SCOAP controllability.
    fn backtrace(&self, mut net: GateId, mut val: bool, planes: &Planes) -> Option<(usize, bool)> {
        loop {
            let g = self.netlist.gate(net);
            match g.kind() {
                GateKind::Input => {
                    // only an unassigned PI is a valid decision variable
                    if planes.good[net.index()] != Trit::X {
                        return None;
                    }
                    return self.netlist.input_position(net).map(|p| (p, val));
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Not => {
                    val = !val;
                    net = g.fanin()[0];
                }
                GateKind::Buff => {
                    net = g.fanin()[0];
                }
                GateKind::Dff => return None,
                kind => {
                    let v_needed = val ^ kind.is_inverting();
                    // walk through fluid nets (either plane X): a fluid net
                    // always has a fluid fanin, and a fluid PI is exactly an
                    // unassigned PI, so the walk terminates at a decision
                    // variable
                    let xs: Vec<GateId> = g
                        .fanin()
                        .iter()
                        .copied()
                        .filter(|&f| planes.fluid(f))
                        .collect();
                    if xs.is_empty() {
                        return None;
                    }
                    let (next, next_val) = match kind.controlling_value() {
                        Some(c) if v_needed == c => {
                            // any single input at c decides: take the easiest
                            let n = xs
                                .iter()
                                .copied()
                                .min_by_key(|&f| self.testability.cc(f, c))?;
                            (n, c)
                        }
                        Some(c) => {
                            // all inputs must be !c: attack the hardest first
                            let n = xs
                                .iter()
                                .copied()
                                .max_by_key(|&f| self.testability.cc(f, !c))?;
                            (n, !c)
                        }
                        None => {
                            // XOR-family: parity target; pick the easiest
                            // polarity of the easiest input (heuristic — the
                            // decision search guarantees correctness).
                            let n = xs.iter().copied().min_by_key(|&f| {
                                self.testability.cc0(f).min(self.testability.cc1(f))
                            })?;
                            let v = self.testability.cc1(n) < self.testability.cc0(n);
                            (n, v)
                        }
                    };
                    net = next;
                    val = next_val;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_fault::{reference, FaultList};
    use fbist_netlist::{bench, embedded};

    /// Every cube PODEM returns must detect its fault under both constant
    /// fills (the X-positions are genuinely don't-care).
    fn check_cube_detects(netlist: &Netlist, fault: Fault, cube: &Cube) {
        for fill in [false, true] {
            let p = cube.fill_const(fill);
            assert!(
                reference::naive_detects(netlist, fault, &p),
                "cube {cube} (fill {fill}) misses fault {}",
                fault.describe(netlist)
            );
        }
    }

    #[test]
    fn c17_all_faults_testable() {
        let n = embedded::c17();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::full(&n);
        for (_, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => check_cube_detects(&n, fault, &cube),
                other => panic!("{}: {other:?}", fault.describe(&n)),
            }
        }
    }

    #[test]
    fn adder_all_faults_testable() {
        let n = embedded::adder4();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut tested = 0;
        for (_, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    check_cube_detects(&n, fault, &cube);
                    tested += 1;
                }
                other => panic!("{}: {other:?}", fault.describe(&n)),
            }
        }
        assert!(tested > 50);
    }

    #[test]
    fn redundant_fault_proven_untestable() {
        // y = OR(a, NOT(a)) ≡ 1: y stuck-at-1 is redundant.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), true);
        assert_eq!(podem.generate(f), PodemOutcome::Untestable);
        // ...but stuck-at-0 there is testable by anything.
        let f0 = Fault::stuck_at(FaultSite::GateOutput(y), false);
        assert!(matches!(podem.generate(f0), PodemOutcome::Test(_)));
    }

    #[test]
    fn unobservable_fault_untestable() {
        // dead-end logic: z has no path to an output.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nz = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let z = n.find("z").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(z), false);
        assert_eq!(podem.generate(f), PodemOutcome::Untestable);
    }

    #[test]
    fn branch_fault_cube_found() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = XOR(a, b)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let x = n.find("x").unwrap();
        let f = Fault::stuck_at(FaultSite::GateInput { gate: x, pin: 0 }, false);
        match podem.generate(f) {
            PodemOutcome::Test(cube) => check_cube_detects(&n, f, &cube),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cube_leaves_irrelevant_inputs_x() {
        // 8 inputs, fault only depends on one AND cone of 2.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\nINPUT(h)
OUTPUT(y)\nOUTPUT(z)
y = AND(a, b)
z = OR(c, d, e, f, g, h)
";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), false);
        match podem.generate(f) {
            PodemOutcome::Test(cube) => {
                check_cube_detects(&n, f, &cube);
                assert!(cube.specified_count() <= 2, "cube {cube} over-specified");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_are_recorded() {
        let n = embedded::c17();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let (outcome, stats) =
            podem.generate_with_stats(faults.get(fbist_fault::FaultId::from_index(0)));
        assert!(matches!(outcome, PodemOutcome::Test(_)));
        assert!(stats.implications >= 1);
        assert!(stats.decisions >= 1);
    }

    #[test]
    fn abort_on_tiny_budget() {
        // A reconvergent circuit where the first decisions usually need
        // revision; with a zero backtrack budget PODEM must abort rather
        // than loop. (If it finds a test without backtracking, that is
        // also acceptable — we only require termination.)
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::with_config(&n, PodemConfig { backtrack_limit: 0 }).unwrap();
        let y = n.find("y").unwrap();
        // y is constant 0 (a & !a): y/0 is redundant; proving it requires
        // exhausting decisions, which costs backtracks → Aborted with 0.
        let f = Fault::stuck_at(FaultSite::GateOutput(y), false);
        let out = podem.generate(f);
        assert!(
            matches!(out, PodemOutcome::Aborted | PodemOutcome::Untestable),
            "{out:?}"
        );
    }
}
