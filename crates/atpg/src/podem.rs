//! The PODEM test-generation algorithm (Goel, 1981).
//!
//! PODEM searches the space of primary-input assignments directly (rather
//! than internal net values, as the D-algorithm does), which makes the
//! search complete with a simple decision stack: every internal conflict is
//! repaired by flipping the most recent unflipped PI decision.
//!
//! Fault effects are tracked with a *two-plane* three-valued simulation:
//! each net carries a (good, faulty) pair of [`Trit`]s; the classical
//! five-valued `D`/`D̄` appear as the pairs `(1,0)` / `(0,1)`. This handles
//! stem and branch faults uniformly.

use fbist_analyze::LearnedImplications;
use fbist_bits::{Cube, Trit};
use fbist_fault::{Fault, FaultSite};
use fbist_netlist::{CsrAdjacency, GateId, GateKind, Netlist};
use fbist_sim::SimError;

use crate::testability::Testability;

/// Tuning knobs for the PODEM search.
#[derive(Debug, Clone)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up with
    /// [`PodemOutcome::Aborted`].
    pub backtrack_limit: usize,
    /// Optional static-learning database (`fbist-analyze`). When present,
    /// every search derives the fault's *necessary excitation conditions*
    /// — the learned good-circuit consequences of the excitation literal —
    /// and backtracks as soon as the good plane contradicts one, instead
    /// of discovering the dead end decisions later. A learned constant at
    /// the excitation net proves the fault untestable with no search at
    /// all. Outcomes stay a pure function of the fault, so `jobs` /
    /// SIMD-width invariance is untouched; outcomes may legitimately
    /// differ from a learning-free run (fewer aborts), which is why the
    /// knob is part of the `atpg` stage key.
    pub learning: Option<LearnedImplications>,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 1000,
            learning: None,
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube whose every fill detects the fault.
    Test(Cube),
    /// The fault is proven untestable (redundant).
    Untestable,
    /// The backtrack budget was exhausted.
    Aborted,
}

impl PodemOutcome {
    /// The test cube, if one was found.
    pub fn cube(&self) -> Option<&Cube> {
        match self {
            PodemOutcome::Test(c) => Some(c),
            _ => None,
        }
    }
}

/// Search statistics of one PODEM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PodemStats {
    /// Number of PI decisions taken.
    pub decisions: usize,
    /// Number of backtracks (decision flips).
    pub backtracks: usize,
    /// Number of full two-plane implications (simulations).
    pub implications: usize,
}

/// A PODEM test generator bound to one combinational netlist.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_fault::{Fault, FaultSite, FaultList};
/// use fbist_atpg::{Podem, PodemOutcome};
///
/// let c17 = embedded::c17();
/// let podem = Podem::new(&c17)?;
/// let fault = FaultList::collapsed(&c17).get(fbist_fault::FaultId::from_index(0));
/// match podem.generate(fault) {
///     PodemOutcome::Test(cube) => assert_eq!(cube.width(), 5),
///     other => panic!("c17 faults are testable, got {other:?}"),
/// }
/// # Ok::<(), fbist_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Podem {
    netlist: Netlist,
    order: Vec<GateId>,
    rank: Vec<u32>,
    /// Flat fanout/fanin adjacency and per-gate kinds: the implication
    /// sweep's whole working set in contiguous arrays, instead of
    /// pointer-chasing through `Gate` structs (heap `Vec` + name `String`
    /// per gate).
    fo: CsrAdjacency,
    fi: CsrAdjacency,
    kinds: Vec<GateKind>,
    testability: Testability,
    config: PodemConfig,
    is_po: Vec<bool>,
    /// Good-plane values under the all-X input assignment — the start
    /// state of every search. Fault-independent, so it is computed once
    /// here and every [`PodemSession`] begins a fault with two plane
    /// `memcpy`s plus cone-local fault injection instead of a full
    /// two-plane gate sweep.
    baseline: Vec<Tv>,
}

/// Two-bit Kleene encoding of a three-valued net value: bit 0 = "can be
/// 0", bit 1 = "can be 1". `Zero = 0b01`, `One = 0b10`, `X = 0b11`
/// (`0b00` is never constructed).
///
/// The encoding exists for one reason: it makes the three-valued gate
/// evaluation in the implication sweep **branchless** ([`eval_tv`] folds
/// plain AND/OR words over the fanins), where the [`Trit`] `match`
/// version costs an unpredictable branch per fanin read. The
/// `tv_eval_matches_eval_trit` test pins the two evaluations against each
/// other for every gate kind and value combination.
type Tv = u8;
const TV_ZERO: Tv = 0b01;
const TV_ONE: Tv = 0b10;
const TV_X: Tv = 0b11;

#[inline]
fn tv_of(t: Trit) -> Tv {
    match t {
        Trit::Zero => TV_ZERO,
        Trit::One => TV_ONE,
        Trit::X => TV_X,
    }
}

#[inline]
fn tv_from_bool(b: bool) -> Tv {
    if b {
        TV_ONE
    } else {
        TV_ZERO
    }
}

/// Kleene NOT: swap the can-be-0 and can-be-1 bits.
#[inline]
fn tv_not(v: Tv) -> Tv {
    ((v & 1) << 1) | (v >> 1)
}

/// Branchless three-valued gate evaluation over fanin *positions*
/// (`read(p)` returns the encoded value of fanin `p`). Equals
/// [`eval_trit`](fbist_netlist::eval_trit) under the encoding for every
/// gate kind.
///
/// AND: can-be-0 = OR of fanin can-be-0 bits, can-be-1 = AND of can-be-1
/// bits — one `|=` and one `&=` per fanin, no branches. OR is the dual;
/// XOR composes pairwise with the 4-term product rule.
#[inline]
fn eval_tv(kind: GateKind, arity: usize, read: impl Fn(usize) -> Tv) -> Tv {
    #[inline]
    fn xor2(a: Tv, b: Tv) -> Tv {
        // c0 = a0 b0 | a1 b1 ; c1 = a0 b1 | a1 b0
        (((a & b) | ((a >> 1) & (b >> 1))) & 1) | ((((a & (b >> 1)) | ((a >> 1) & b)) & 1) << 1)
    }
    match kind {
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let mut or_acc: Tv = 0;
            let mut and_acc: Tv = 0b11;
            for p in 0..arity {
                let v = read(p);
                or_acc |= v;
                and_acc &= v;
            }
            match kind {
                GateKind::And => (or_acc & 0b01) | (and_acc & 0b10),
                GateKind::Nand => tv_not((or_acc & 0b01) | (and_acc & 0b10)),
                GateKind::Or => (or_acc & 0b10) | (and_acc & 0b01),
                _ => tv_not((or_acc & 0b10) | (and_acc & 0b01)),
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut r = TV_ZERO;
            for p in 0..arity {
                r = xor2(r, read(p));
            }
            if kind == GateKind::Xnor {
                tv_not(r)
            } else {
                r
            }
        }
        GateKind::Not => tv_not(read(0)),
        GateKind::Buff => read(0),
        GateKind::Const0 => TV_ZERO,
        GateKind::Const1 => TV_ONE,
        GateKind::Input | GateKind::Dff => {
            panic!("{kind} is a source; its value is assigned, not evaluated")
        }
    }
}

struct Planes {
    good: Vec<Tv>,
    faulty: Vec<Tv>,
}

impl Planes {
    /// `true` if the net provably carries a fault effect (D or D̄): both
    /// planes specified and different — exactly when `g ^ f == 0b11`.
    #[inline]
    fn has_d(&self, net: GateId) -> bool {
        (self.good[net.index()] ^ self.faulty[net.index()]) == 0b11
    }

    /// `true` if the net could still change (either plane unresolved).
    #[inline]
    fn fluid(&self, net: GateId) -> bool {
        self.good[net.index()] == TV_X || self.faulty[net.index()] == TV_X
    }
}

/// Per-search scratch: the fault's fanout cone and reusable buffers, so
/// the decision loop allocates nothing per implication — and, via
/// [`Search::rebind`], nothing per *fault* either beyond cone-bounded
/// work.
///
/// The *cone* is the fault origin plus its transitive fanouts — the only
/// nets whose faulty-plane value can ever differ from the good plane.
/// Outside it the faulty plane is a verbatim copy of the good plane, and
/// the D-frontier can only ever contain cone gates, so both the two-plane
/// simulation and the frontier scan are restricted to it (values and
/// decisions are bit-identical to the full-circuit sweep).
struct Search {
    /// Cone membership stamp: net `i` is in the current fault's cone iff
    /// `cone_mark[i] == cone_epoch` — restamping a new cone is O(cone),
    /// not O(netlist).
    cone_mark: Vec<u32>,
    cone_epoch: u32,
    seen: Vec<u32>,
    epoch: u32,
    /// Event bitset over topological ranks for incremental resimulation
    /// (empty between calls; see [`Podem::resimulate`]).
    pending: Vec<u64>,
    /// `is_d[i]` — net `i` currently carries a fault effect (D or D̄).
    /// Maintained by the resimulation so the D-frontier scan can probe
    /// only the fanouts of D nets instead of the whole cone.
    is_d: Vec<bool>,
    /// Nets that carried a D at some point (lazy-deleted: filter through
    /// `is_d` before use). Bounded by the cone size.
    d_list: Vec<u32>,
    in_d_list: Vec<bool>,
    /// Reusable candidate buffer for the frontier scan.
    cand: Vec<u32>,
    /// Reusable DFS stack (cone restamp and X-path probe).
    stack: Vec<GateId>,
}

impl Search {
    fn new(n: usize) -> Search {
        Search {
            cone_mark: vec![0; n],
            cone_epoch: 0,
            seen: vec![0; n],
            epoch: 0,
            pending: vec![0; n.div_ceil(64)],
            is_d: vec![false; n],
            d_list: Vec::new(),
            in_d_list: vec![false; n],
            cand: Vec::new(),
            stack: Vec::new(),
        }
    }

    #[inline]
    fn in_cone(&self, i: usize) -> bool {
        self.cone_mark[i] == self.cone_epoch
    }

    /// Rebinds the scratch to `fault`: forgets the previous fault's D
    /// records (bounded by its cone) and restamps the new cone.
    fn rebind(&mut self, podem: &Podem, fault: Fault) {
        for &i in &self.d_list {
            self.is_d[i as usize] = false;
            self.in_d_list[i as usize] = false;
        }
        self.d_list.clear();
        if self.cone_epoch == u32::MAX {
            self.cone_mark.fill(0);
            self.cone_epoch = 0;
        }
        self.cone_epoch += 1;
        let origin = match fault.site() {
            FaultSite::GateOutput(g) => g,
            FaultSite::GateInput { gate, .. } => gate,
        };
        self.cone_mark[origin.index()] = self.cone_epoch;
        self.stack.clear();
        self.stack.push(origin);
        while let Some(g) = self.stack.pop() {
            for &fo in podem.fanouts_of(g.index()) {
                if self.cone_mark[fo.index()] != self.cone_epoch {
                    self.cone_mark[fo.index()] = self.cone_epoch;
                    self.stack.push(fo);
                }
            }
        }
    }

    /// Records net `i`'s current D status after a plane update.
    #[inline]
    fn update_d(&mut self, i: usize, good: Tv, faulty: Tv) {
        let d = (good ^ faulty) == 0b11;
        self.is_d[i] = d;
        if d && !self.in_d_list[i] {
            self.in_d_list[i] = true;
            self.d_list.push(i as u32);
        }
    }
}

impl Podem {
    /// Builds a PODEM engine for a combinational netlist (this includes
    /// computing SCOAP guidance).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SequentialNetlist`] for sequential netlists and
    /// [`SimError::Netlist`] for invalid ones.
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Self::with_config(netlist, PodemConfig::default())
    }

    /// Builds a PODEM engine with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`Podem::new`].
    pub fn with_config(netlist: &Netlist, config: PodemConfig) -> Result<Self, SimError> {
        if !netlist.is_combinational() {
            return Err(SimError::SequentialNetlist {
                dffs: netlist.dffs().len(),
            });
        }
        let order = netlist.levelize()?;
        let mut rank = vec![0u32; netlist.gate_count()];
        for (i, &g) in order.iter().enumerate() {
            rank[g.index()] = i as u32;
        }
        let mut is_po = vec![false; netlist.gate_count()];
        for &o in netlist.outputs() {
            is_po[o.index()] = true;
        }
        let fi = netlist.fanins_csr();
        let kinds = netlist.kinds();
        // the all-X good plane every search starts from (one sweep, ever)
        let mut baseline = vec![TV_X; netlist.gate_count()];
        for &id in &order {
            let idx = id.index();
            let kind = kinds[idx];
            if kind == GateKind::Input {
                continue;
            }
            let fanin = fi.of(idx);
            let v = eval_tv(kind, fanin.len(), |p| baseline[fanin[p].index()]);
            baseline[idx] = v;
        }
        Ok(Podem {
            netlist: netlist.clone(),
            order,
            rank,
            fo: netlist.fanouts_csr(),
            fi,
            kinds,
            testability: Testability::analyze(netlist)?,
            config,
            is_po,
            baseline,
        })
    }

    /// Gate `i`'s fanins (CSR slice).
    #[inline]
    fn fanins_of(&self, i: usize) -> &[GateId] {
        self.fi.of(i)
    }

    /// Gate `i`'s fanouts (CSR slice).
    #[inline]
    fn fanouts_of(&self, i: usize) -> &[GateId] {
        self.fo.of(i)
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Generates a test for `fault`. See [`PodemOutcome`].
    ///
    /// Convenience wrapper that builds a one-shot [`PodemSession`]; callers
    /// targeting many faults should hold a session and reuse it.
    pub fn generate(&self, fault: Fault) -> PodemOutcome {
        self.session().generate(fault)
    }

    /// Generates a test and reports search statistics (one-shot session).
    pub fn generate_with_stats(&self, fault: Fault) -> (PodemOutcome, PodemStats) {
        self.session().generate_with_stats(fault)
    }

    /// Creates a reusable search session.
    ///
    /// A session owns the per-search buffers (planes, cone stamps, event
    /// bitset, decision stack), so generating tests for many faults
    /// through one session costs cone-bounded rebinding per fault instead
    /// of `O(netlist)` allocations and a full two-plane sweep. Outcomes
    /// are bit-identical to one-shot [`Podem::generate`] calls: sessions
    /// only recycle memory, never search state.
    pub fn session(&self) -> PodemSession<'_> {
        let npis = self.netlist.inputs().len();
        let n = self.netlist.gate_count();
        PodemSession {
            podem: self,
            search: Search::new(n),
            planes: Planes {
                good: vec![TV_X; n],
                faulty: vec![TV_X; n],
            },
            pi: vec![Trit::X; npis],
            stack: Vec::new(),
            changed: Vec::new(),
            required: Vec::new(),
        }
    }

    /// The net whose good value must become `!stuck` to excite `fault`.
    fn excitation_net(&self, fault: Fault) -> GateId {
        match fault.site() {
            FaultSite::GateOutput(g) => g,
            FaultSite::GateInput { gate, pin } => self.netlist.gate(gate).fanin()[pin as usize],
        }
    }

    /// Incrementally re-propagates the planes after the PIs at `changed`
    /// were reassigned: event-driven re-evaluation through the pending
    /// rank bitset, exactly like the packed fault simulator's sweep. Only
    /// the region whose value actually changes is revisited.
    fn resimulate(
        &self,
        pi: &[Trit],
        changed: &[usize],
        fault: Fault,
        s: &mut Search,
        planes: &mut Planes,
    ) {
        let stuck = tv_from_bool(fault.stuck_value());
        let inputs = self.netlist.inputs();
        let mut min_w = usize::MAX;
        let mut max_w = 0usize;
        for &pos in changed {
            let id = inputs[pos];
            let i = id.index();
            let v = tv_of(pi[pos]);
            // the faulty plane of a stuck primary input never moves
            let fv = if fault.site() == FaultSite::GateOutput(id) {
                stuck
            } else {
                v
            };
            if planes.good[i] == v && planes.faulty[i] == fv {
                continue;
            }
            planes.good[i] = v;
            planes.faulty[i] = fv;
            if s.in_cone(i) {
                s.update_d(i, v, fv);
            }
            for &fo in self.fanouts_of(i) {
                let r = self.rank[fo.index()] as usize;
                s.pending[r >> 6] |= 1u64 << (r & 63);
                min_w = min_w.min(r >> 6);
                max_w = max_w.max(r >> 6);
            }
        }
        self.propagate_events(fault, s, planes, min_w, max_w);
    }

    /// Drains the pending-rank event bitset: re-evaluates enqueued gates
    /// in topological order, propagating further events only where a
    /// plane value actually changes. Shared by [`Podem::resimulate`] (PI
    /// reassignments) and [`PodemSession`]'s fault injection.
    fn propagate_events(
        &self,
        fault: Fault,
        s: &mut Search,
        planes: &mut Planes,
        min_w: usize,
        mut max_w: usize,
    ) {
        let stuck = tv_from_bool(fault.stuck_value());
        let mut w = min_w;
        while w <= max_w {
            let word = s.pending[w];
            if word == 0 {
                w += 1;
                continue;
            }
            let b = word.trailing_zeros() as usize;
            s.pending[w] = word & (word - 1);
            let id = self.order[(w << 6) | b];
            let idx = id.index();
            let kind = self.kinds[idx];
            let fanin = self.fanins_of(idx);
            let ng = eval_tv(kind, fanin.len(), |p| planes.good[fanin[p].index()]);
            let nf = if !s.in_cone(idx) {
                ng
            } else if fault.site() == FaultSite::GateOutput(id) {
                stuck
            } else {
                match fault.site() {
                    // the branch-faulted gate reads one pin forced to the
                    // stuck value
                    FaultSite::GateInput { gate, pin } if gate == id => {
                        let pin = pin as usize;
                        eval_tv(kind, fanin.len(), |p| {
                            if p == pin {
                                stuck
                            } else {
                                planes.faulty[fanin[p].index()]
                            }
                        })
                    }
                    _ => eval_tv(kind, fanin.len(), |p| planes.faulty[fanin[p].index()]),
                }
            };
            if ng != planes.good[idx] || nf != planes.faulty[idx] {
                planes.good[idx] = ng;
                planes.faulty[idx] = nf;
                if s.in_cone(idx) {
                    s.update_d(idx, ng, nf);
                }
                for &fo in self.fanouts_of(idx) {
                    let r = self.rank[fo.index()] as usize;
                    s.pending[r >> 6] |= 1u64 << (r & 63);
                    max_w = max_w.max(r >> 6);
                }
            }
        }
    }

    /// Injects `fault` into planes currently holding the all-X baseline in
    /// both planes: forces the faulty value at the fault origin and
    /// event-propagates the difference through the cone.
    ///
    /// Reaches exactly the values the old full two-plane sweep computed
    /// (the circuit is acyclic, so event-driven re-evaluation in rank
    /// order reaches the same fixpoint), but costs O(cone events), and
    /// nothing at all when the all-X faulty value equals the baseline.
    fn inject(&self, fault: Fault, s: &mut Search, planes: &mut Planes) {
        let stuck = tv_from_bool(fault.stuck_value());
        let origin = match fault.site() {
            FaultSite::GateOutput(g) => g,
            FaultSite::GateInput { gate, .. } => gate,
        };
        let idx = origin.index();
        let nf = match fault.site() {
            FaultSite::GateOutput(_) => stuck,
            FaultSite::GateInput { pin, .. } => {
                let fanin = self.fanins_of(idx);
                let pin = pin as usize;
                eval_tv(self.kinds[idx], fanin.len(), |p| {
                    if p == pin {
                        stuck
                    } else {
                        planes.faulty[fanin[p].index()]
                    }
                })
            }
        };
        if nf == planes.faulty[idx] {
            return;
        }
        planes.faulty[idx] = nf;
        s.update_d(idx, planes.good[idx], nf);
        let mut min_w = usize::MAX;
        let mut max_w = 0usize;
        for &fo in self.fanouts_of(idx) {
            let r = self.rank[fo.index()] as usize;
            s.pending[r >> 6] |= 1u64 << (r & 63);
            min_w = min_w.min(r >> 6);
            max_w = max_w.max(r >> 6);
        }
        self.propagate_events(fault, s, planes, min_w, max_w);
    }

    /// Picks the next objective `(net, value)`; `None` signals a conflict
    /// (fault unexcitable or unpropagatable under the current assignment).
    fn objective(
        &self,
        planes: &Planes,
        fault: Fault,
        search: &mut Search,
    ) -> Option<(GateId, bool)> {
        let stuck = fault.stuck_value();
        // 1. Excitation: the good value at the fault site must be !stuck.
        let site_net = self.excitation_net(fault);
        match planes.good[site_net.index()] {
            TV_X => return Some((site_net, !stuck)),
            v if v == tv_from_bool(stuck) => return None,
            _ => {}
        }

        // 2. Propagation: the lowest-observability D-frontier gate with an
        //    X-path to a PO. A frontier gate necessarily reads a net that
        //    currently carries D (or is the branch-faulted gate itself),
        //    so only the fanouts of live D nets are probed. They are
        //    sorted into ascending index order — the order the
        //    full-netlist scan used — and the (expensive) X-path check
        //    runs only when a gate would beat the current best; ties keep
        //    the earlier gate, so this picks exactly the gate the
        //    filter-then-min scan picked.
        search.cand.clear();
        for li in 0..search.d_list.len() {
            let net = search.d_list[li] as usize;
            if !search.is_d[net] {
                continue;
            }
            for &fo in self.fanouts_of(net) {
                search.cand.push(fo.index() as u32);
            }
        }
        if let FaultSite::GateInput { gate, .. } = fault.site() {
            search.cand.push(gate.index() as u32);
        }
        search.cand.sort_unstable();
        search.cand.dedup();
        let mut best_gate: Option<(u32, GateId)> = None;
        for ci in 0..search.cand.len() {
            let id = GateId::from_index(search.cand[ci] as usize);
            if !self.in_d_frontier(id, planes, fault) {
                continue;
            }
            let co = self.testability.co(id);
            if best_gate.is_some_and(|(c, _)| co >= c) {
                continue;
            }
            if self.x_path_to_po(id, planes, search) {
                best_gate = Some((co, id));
            }
        }
        let (_, gate) = best_gate?;
        let g = self.netlist.gate(gate);
        // Set one still-X input to the non-controlling value (XOR-family:
        // pick the cheaper polarity).
        let forced_pin = match fault.site() {
            FaultSite::GateInput { gate: fg, pin } if fg == gate => Some(pin as usize),
            _ => None,
        };
        let mut best: Option<(u32, GateId, bool)> = None;
        for (p, &f) in g.fanin().iter().enumerate() {
            // candidate inputs are the *fluid* ones: either plane still X.
            // (The good plane alone is not enough — with reconvergent fault
            // effects the good value can be fully determined while the
            // faulty plane still depends on unassigned PIs.)
            if Some(p) == forced_pin || !planes.fluid(f) {
                continue;
            }
            let val = match g.kind().controlling_value() {
                Some(c) => !c,
                None => self.testability.cc0(f) > self.testability.cc1(f),
            };
            let cost = self.testability.cc(f, val);
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, f, val));
            }
        }
        best.map(|(_, net, val)| (net, val))
    }

    /// `true` if the fault effect can still advance through `id` — the
    /// per-gate D-frontier membership test. A frontier gate necessarily has
    /// a fanin carrying D (or is the branch-faulted gate itself), and D
    /// values exist only inside the fault cone, so callers only probe cone
    /// gates.
    fn in_d_frontier(&self, id: GateId, planes: &Planes, fault: Fault) -> bool {
        let g = self.netlist.gate(id);
        let kind = g.kind();
        if kind == GateKind::Input || kind.is_state() || !planes.fluid(id) {
            return false;
        }
        if g.fanin().iter().any(|&f| planes.has_d(f)) {
            return true;
        }
        if let FaultSite::GateInput { gate, pin } = fault.site() {
            if gate == id {
                // the branch fault is excited iff the source net's good
                // value differs from the stuck value
                let src = g.fanin()[pin as usize];
                let gv = planes.good[src.index()];
                return gv != TV_X && gv != tv_from_bool(fault.stuck_value());
            }
        }
        false
    }

    /// `true` if some path of still-fluid nets leads from `from` to a
    /// primary output.
    fn x_path_to_po(&self, from: GateId, planes: &Planes, s: &mut Search) -> bool {
        s.epoch += 1;
        if s.epoch == 0 {
            s.seen.fill(0);
            s.epoch = 1;
        }
        s.stack.clear();
        s.stack.push(from);
        s.seen[from.index()] = s.epoch;
        while let Some(g) = s.stack.pop() {
            if self.is_po[g.index()] {
                return true;
            }
            for &fo in self.fanouts_of(g.index()) {
                if s.seen[fo.index()] != s.epoch && planes.fluid(fo) {
                    s.seen[fo.index()] = s.epoch;
                    s.stack.push(fo);
                }
            }
        }
        false
    }

    /// Maps an internal objective to a primary-input assignment by walking
    /// backward through X-valued nets, guided by SCOAP controllability.
    fn backtrace(&self, mut net: GateId, mut val: bool, planes: &Planes) -> Option<(usize, bool)> {
        loop {
            let g = self.netlist.gate(net);
            match g.kind() {
                GateKind::Input => {
                    // only an unassigned PI is a valid decision variable
                    if planes.good[net.index()] != TV_X {
                        return None;
                    }
                    return self.netlist.input_position(net).map(|p| (p, val));
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Not => {
                    val = !val;
                    net = g.fanin()[0];
                }
                GateKind::Buff => {
                    net = g.fanin()[0];
                }
                GateKind::Dff => return None,
                kind => {
                    let v_needed = val ^ kind.is_inverting();
                    // walk through fluid nets (either plane X): a fluid net
                    // always has a fluid fanin, and a fluid PI is exactly an
                    // unassigned PI, so the walk terminates at a decision
                    // variable. Selection folds over the fluid fanins
                    // directly; `<` / `>=` replicate the first-min and
                    // last-max tie-breaks of the Iterator adapters.
                    let fluid = g.fanin().iter().copied().filter(|&f| planes.fluid(f));
                    let (next, next_val) = match kind.controlling_value() {
                        Some(c) if v_needed == c => {
                            // any single input at c decides: take the easiest
                            let mut best: Option<(u32, GateId)> = None;
                            for f in fluid {
                                let k = self.testability.cc(f, c);
                                if best.is_none_or(|(bk, _)| k < bk) {
                                    best = Some((k, f));
                                }
                            }
                            let (_, n) = best?;
                            (n, c)
                        }
                        Some(c) => {
                            // all inputs must be !c: attack the hardest first
                            let mut best: Option<(u32, GateId)> = None;
                            for f in fluid {
                                let k = self.testability.cc(f, !c);
                                if best.is_none_or(|(bk, _)| k >= bk) {
                                    best = Some((k, f));
                                }
                            }
                            let (_, n) = best?;
                            (n, !c)
                        }
                        None => {
                            // XOR-family: parity target; pick the easiest
                            // polarity of the easiest input (heuristic — the
                            // decision search guarantees correctness).
                            let mut best: Option<(u32, GateId)> = None;
                            for f in fluid {
                                let k = self.testability.cc0(f).min(self.testability.cc1(f));
                                if best.is_none_or(|(bk, _)| k < bk) {
                                    best = Some((k, f));
                                }
                            }
                            let (_, n) = best?;
                            let v = self.testability.cc1(n) < self.testability.cc0(n);
                            (n, v)
                        }
                    };
                    net = next;
                    val = next_val;
                }
            }
        }
    }
}

/// A reusable PODEM search session — see [`Podem::session`].
///
/// Holds every per-search buffer so a batch of faults shares one set of
/// O(netlist) allocations. Starting a fault costs two plane `memcpy`s
/// from the precomputed all-X baseline plus cone-bounded fault injection,
/// instead of the full two-plane sweep a cold start needs.
pub struct PodemSession<'p> {
    podem: &'p Podem,
    search: Search,
    planes: Planes,
    pi: Vec<Trit>,
    /// Decision stack: (pi position, current value, already flipped).
    stack: Vec<(usize, bool, bool)>,
    /// Scratch list of PI positions reassigned since the last implication.
    changed: Vec<usize>,
    /// Learned necessary conditions for the current fault, as
    /// `(net, forbidden good value)` pairs: the good plane settling on the
    /// forbidden value anywhere makes excitation impossible in the whole
    /// subtree, so the search backtracks immediately. Empty without a
    /// learning database.
    required: Vec<(u32, Tv)>,
}

impl PodemSession<'_> {
    /// The engine this session searches with.
    pub fn podem(&self) -> &Podem {
        self.podem
    }

    /// Generates a test for `fault`. See [`PodemOutcome`].
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        self.generate_with_stats(fault).0
    }

    /// Generates a test and reports search statistics.
    pub fn generate_with_stats(&mut self, fault: Fault) -> (PodemOutcome, PodemStats) {
        let podem = self.podem;
        let mut stats = PodemStats::default();

        // Rebind the reused buffers to this fault: all-X PIs, baseline
        // planes, fresh cone stamp, cone-local fault injection. Every
        // later PI change is propagated incrementally (identical values —
        // the circuit is acyclic, so event-driven re-evaluation in rank
        // order reaches the same fixpoint as a full sweep).
        self.pi.fill(Trit::X);
        self.stack.clear();
        self.planes.good.copy_from_slice(&podem.baseline);
        self.planes.faulty.copy_from_slice(&podem.baseline);
        self.search.rebind(podem, fault);
        podem.inject(fault, &mut self.search, &mut self.planes);

        // Learned necessary conditions: excitation needs the good value
        // `!stuck` at the excitation net, so every learned good-circuit
        // consequence of that literal must hold in any test. A learned
        // constant equal to the stuck value settles the fault outright.
        self.required.clear();
        if let Some(db) = &podem.config.learning {
            let site = podem.excitation_net(fault);
            if db.constant(site) == Some(fault.stuck_value()) {
                return (PodemOutcome::Untestable, stats);
            }
            for (w, c) in db.implied(site, !fault.stuck_value()) {
                self.required.push((w.index() as u32, tv_from_bool(!c)));
            }
        }

        loop {
            stats.implications += 1;
            if podem
                .netlist
                .outputs()
                .iter()
                .any(|&o| self.planes.has_d(o))
            {
                let mut cube = Cube::all_x(self.pi.len());
                for (k, &t) in self.pi.iter().enumerate() {
                    cube.set(k, t);
                }
                return (PodemOutcome::Test(cube), stats);
            }

            // Early conflict: a learned necessary condition is violated on
            // the good plane (a definite value holds under every completion
            // of the current assignment), so no extension excites the
            // fault — backtrack without exploring the subtree.
            let learned_conflict = self
                .required
                .iter()
                .any(|&(w, bad)| self.planes.good[w as usize] == bad);
            let objective = if learned_conflict {
                None
            } else {
                podem.objective(&self.planes, fault, &mut self.search)
            };
            let next = objective.and_then(|(net, val)| podem.backtrace(net, val, &self.planes));
            match next {
                Some((pos, val)) => {
                    stats.decisions += 1;
                    self.pi[pos] = Trit::from_bool(val);
                    self.stack.push((pos, val, false));
                    self.changed.clear();
                    self.changed.push(pos);
                    podem.resimulate(
                        &self.pi,
                        &self.changed,
                        fault,
                        &mut self.search,
                        &mut self.planes,
                    );
                }
                None => {
                    // conflict → backtrack
                    self.changed.clear();
                    loop {
                        match self.stack.pop() {
                            Some((pos, val, false)) => {
                                stats.backtracks += 1;
                                if stats.backtracks > podem.config.backtrack_limit {
                                    return (PodemOutcome::Aborted, stats);
                                }
                                self.pi[pos] = Trit::from_bool(!val);
                                self.stack.push((pos, !val, true));
                                self.changed.push(pos);
                                break;
                            }
                            Some((pos, _, true)) => {
                                self.pi[pos] = Trit::X;
                                self.changed.push(pos);
                            }
                            None => return (PodemOutcome::Untestable, stats),
                        }
                    }
                    podem.resimulate(
                        &self.pi,
                        &self.changed,
                        fault,
                        &mut self.search,
                        &mut self.planes,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_fault::{reference, FaultList};
    use fbist_netlist::{bench, embedded, eval_trit};

    #[test]
    fn tv_eval_matches_eval_trit() {
        // the branchless two-bit evaluation must agree with the reference
        // three-valued evaluation on every (kind, values) combination of
        // up to 3 fanins
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        let trits = [Trit::Zero, Trit::One, Trit::X];
        for kind in kinds {
            for n in 1..=3usize {
                for combo in 0..3usize.pow(n as u32) {
                    let vals: Vec<Trit> = (0..n)
                        .map(|i| trits[(combo / 3usize.pow(i as u32)) % 3])
                        .collect();
                    let expect = tv_of(eval_trit(kind, &vals));
                    let got = eval_tv(kind, n, |p| tv_of(vals[p]));
                    assert_eq!(got, expect, "{kind} {vals:?}");
                }
            }
        }
        for v in [Trit::Zero, Trit::One, Trit::X] {
            assert_eq!(
                eval_tv(GateKind::Not, 1, |_| tv_of(v)),
                tv_of(eval_trit(GateKind::Not, &[v]))
            );
            assert_eq!(eval_tv(GateKind::Buff, 1, |_| tv_of(v)), tv_of(v));
        }
        assert_eq!(eval_tv(GateKind::Const0, 0, |_| TV_X), TV_ZERO);
        assert_eq!(eval_tv(GateKind::Const1, 0, |_| TV_X), TV_ONE);
    }

    /// Every cube PODEM returns must detect its fault under both constant
    /// fills (the X-positions are genuinely don't-care).
    fn check_cube_detects(netlist: &Netlist, fault: Fault, cube: &Cube) {
        for fill in [false, true] {
            let p = cube.fill_const(fill);
            assert!(
                reference::naive_detects(netlist, fault, &p),
                "cube {cube} (fill {fill}) misses fault {}",
                fault.describe(netlist)
            );
        }
    }

    #[test]
    fn c17_all_faults_testable() {
        let n = embedded::c17();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::full(&n);
        for (_, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => check_cube_detects(&n, fault, &cube),
                other => panic!("{}: {other:?}", fault.describe(&n)),
            }
        }
    }

    #[test]
    fn adder_all_faults_testable() {
        let n = embedded::adder4();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let mut tested = 0;
        for (_, fault) in faults.iter() {
            match podem.generate(fault) {
                PodemOutcome::Test(cube) => {
                    check_cube_detects(&n, fault, &cube);
                    tested += 1;
                }
                other => panic!("{}: {other:?}", fault.describe(&n)),
            }
        }
        assert!(tested > 50);
    }

    #[test]
    fn redundant_fault_proven_untestable() {
        // y = OR(a, NOT(a)) ≡ 1: y stuck-at-1 is redundant.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), true);
        assert_eq!(podem.generate(f), PodemOutcome::Untestable);
        // ...but stuck-at-0 there is testable by anything.
        let f0 = Fault::stuck_at(FaultSite::GateOutput(y), false);
        assert!(matches!(podem.generate(f0), PodemOutcome::Test(_)));
    }

    #[test]
    fn unobservable_fault_untestable() {
        // dead-end logic: z has no path to an output.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nz = OR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let z = n.find("z").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(z), false);
        assert_eq!(podem.generate(f), PodemOutcome::Untestable);
    }

    #[test]
    fn branch_fault_cube_found() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = XOR(a, b)\ny = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let x = n.find("x").unwrap();
        let f = Fault::stuck_at(FaultSite::GateInput { gate: x, pin: 0 }, false);
        match podem.generate(f) {
            PodemOutcome::Test(cube) => check_cube_detects(&n, f, &cube),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cube_leaves_irrelevant_inputs_x() {
        // 8 inputs, fault only depends on one AND cone of 2.
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\nINPUT(h)
OUTPUT(y)\nOUTPUT(z)
y = AND(a, b)
z = OR(c, d, e, f, g, h)
";
        let n = bench::parse(src).unwrap();
        let podem = Podem::new(&n).unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), false);
        match podem.generate(f) {
            PodemOutcome::Test(cube) => {
                check_cube_detects(&n, f, &cube);
                assert!(cube.specified_count() <= 2, "cube {cube} over-specified");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_are_recorded() {
        let n = embedded::c17();
        let podem = Podem::new(&n).unwrap();
        let faults = FaultList::collapsed(&n);
        let (outcome, stats) =
            podem.generate_with_stats(faults.get(fbist_fault::FaultId::from_index(0)));
        assert!(matches!(outcome, PodemOutcome::Test(_)));
        assert!(stats.implications >= 1);
        assert!(stats.decisions >= 1);
    }

    #[test]
    fn learning_settles_constant_sites_without_search() {
        // y = AND(AND(a, b), NOT(a)) ≡ 0. With a zero backtrack budget the
        // unseeded engine may abort on y/0; seeded with the learned
        // database the constant settles it untestable with no decisions.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\n";
        let n = bench::parse(src).unwrap();
        let db = fbist_analyze::LearnedImplications::learn(&n).unwrap();
        let podem = Podem::with_config(
            &n,
            PodemConfig {
                backtrack_limit: 0,
                learning: Some(db),
            },
        )
        .unwrap();
        let y = n.find("y").unwrap();
        let f = Fault::stuck_at(FaultSite::GateOutput(y), false);
        let (out, stats) = podem.generate_with_stats(f);
        assert_eq!(out, PodemOutcome::Untestable);
        assert_eq!(stats.decisions, 0);
        assert_eq!(stats.backtracks, 0);
    }

    #[test]
    fn abort_on_tiny_budget() {
        // A reconvergent circuit where the first decisions usually need
        // revision; with a zero backtrack budget PODEM must abort rather
        // than loop. (If it finds a test without backtracking, that is
        // also acceptable — we only require termination.)
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nx = AND(a, b)\ny = AND(x, na)\n";
        let n = bench::parse(src).unwrap();
        let podem = Podem::with_config(
            &n,
            PodemConfig {
                backtrack_limit: 0,
                ..PodemConfig::default()
            },
        )
        .unwrap();
        let y = n.find("y").unwrap();
        // y is constant 0 (a & !a): y/0 is redundant; proving it requires
        // exhausting decisions, which costs backtracks → Aborted with 0.
        let f = Fault::stuck_at(FaultSite::GateOutput(y), false);
        let out = podem.generate(f);
        assert!(
            matches!(out, PodemOutcome::Aborted | PodemOutcome::Untestable),
            "{out:?}"
        );
    }
}
