//! Deterministic test pattern generation (ATPG) for stuck-at faults.
//!
//! The paper derives its initial reseeding from "the test set `ATPGTS`
//! provided by a commercial gate-level ATPG tool" (TestGen). This crate is
//! that tool's stand-in:
//!
//! * [`testability`] — SCOAP-style controllability/observability estimates
//!   used to guide search (now computed by `fbist-analyze`, the shared
//!   home for netlist measures, and re-exported here);
//! * [`Podem`] — the PODEM algorithm (Goel 1981) over a two-plane
//!   (good/faulty) three-valued simulation, complete for combinational
//!   stuck-at faults: returns a test cube, a proof of untestability, or an
//!   abort after a backtrack budget;
//! * [`Atpg`] — the full engine: a random-pattern phase with fault
//!   dropping, a deterministic PODEM phase for the random-resistant
//!   remainder, and reverse-order compaction. Its output — the compacted
//!   pattern list plus the list of faults it covers — is exactly the
//!   `(ATPGTS, F)` pair the reseeding flow starts from.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::embedded;
//! use fbist_fault::FaultList;
//! use fbist_atpg::{Atpg, AtpgConfig};
//!
//! let c17 = embedded::c17();
//! let faults = FaultList::collapsed(&c17);
//! let result = Atpg::new(&c17)?.run(&faults, &AtpgConfig::default());
//! assert!((result.coverage() - 1.0).abs() < 1e-9); // c17 is fully testable
//! assert!(!result.patterns.is_empty());
//! # Ok::<(), fbist_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod engine;
mod podem;
pub use fbist_analyze::testability;

pub use compact::{compact_cubes, compaction_ratio};
pub use engine::{Atpg, AtpgConfig, AtpgResult, FillMode};
pub use podem::{Podem, PodemConfig, PodemOutcome, PodemSession, PodemStats};
