//! Static netlist analysis for the functional-BIST flow.
//!
//! This crate answers two questions *before* any simulation or ATPG runs:
//!
//! 1. **Is the circuit structurally sane?** [`analyze`] produces an
//!    [`AnalysisReport`] of combinational cycles (full paths, via the
//!    shared SCC pass in `fbist-netlist`), unconnected flip-flops,
//!    floating nets, statically unobservable logic, and dead logic behind
//!    constant inputs — the diagnostics surfaced by `fbist check`.
//! 2. **Which stuck-at faults are provably untestable?**
//!    [`untestable_faults`] runs a FIRE-style fault-independent pass over
//!    the [`Implicator`], a direct-implication engine on the two-bit
//!    Kleene domain. The ATPG engine's `static_prepass` knob uses it to
//!    prune hopeless targets before spending random patterns and PODEM
//!    backtrack budget on them.
//!
//! On top of the direct engine, the [`learning`] module computes a
//! SOCRATES-style **learned-implication database**
//! ([`LearnedImplications`]): contrapositives of every forward-implication
//! sweep plus bounded recursive learning (a complete case split on each
//! queried gate left unjustified at its fixpoint, default depth
//! [`learning::DEFAULT_RECURSION_DEPTH`]). The database is a CSR table
//! mapping each literal `2·net + value` to the closed, sorted set of
//! literals it implies, plus learned global constants — so consumers query
//! it with a slice lookup. [`untestable_faults_with`] uses it to prove
//! strictly more faults untestable and to close verdicts over
//! implication-proved fault equivalence and dominance
//! ([`fault_relations`]), and the ATPG engine's keyed `static_learning`
//! knob seeds every PODEM session with it for early conflict detection.
//!
//! The crate is also the shared home for fault-independent netlist
//! *measures*: [`testability`] holds the SCOAP
//! controllability/observability estimates (`fbist-atpg` re-exports it).
//!
//! Everything proven here is *sound*: a fault marked untestable has no
//! test, a learned implication holds in every consistent assignment, and a
//! gate marked unobservable has no sensitisable path to any observation
//! point. The analyses are deliberately incomplete — they trade
//! completeness for a cost that is a small fraction of one ATPG run.
//!
//! # Example
//!
//! ```
//! use fbist_netlist::bench;
//!
//! // OR(a, NOT a) is constant 1, so its output stuck-at-1 is untestable.
//! let n = bench::parse("INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n")?;
//! let faults = fbist_fault::FaultList::full(&n);
//! let mask = fbist_analyze::untestable_faults(&n, &faults)?;
//! assert!(mask.iter().any(|&m| m));
//!
//! let report = fbist_analyze::analyze(&n);
//! assert!(!report.has_findings()); // untestable faults are Info, not Warning
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod implication;
pub mod learning;
mod report;
mod structure;
pub mod testability;
mod untestable;

pub use implication::Implicator;
pub use learning::{fault_relations, FaultRelations, LearnedImplications};
pub use report::{AnalysisReport, Finding, Severity, TestabilityEntry};
pub use testability::Testability;
pub use untestable::{untestable_faults, untestable_faults_with};

use fbist_fault::FaultList;
use fbist_netlist::{GateKind, Netlist};

use report::TestabilityEntry as Entry;
use structure::Structure;

/// At most this many individual findings are listed per code; the rest
/// fold into one "and N more" finding so huge circuits stay readable.
const MAX_LISTED: usize = 20;

/// Size of the SCOAP hard-to-test report: the `testability` section lists
/// the top fault sites by `fault_difficulty`, hardest first.
const MAX_HARD_NETS: usize = 10;

/// Runs the full static analysis and returns the report backing
/// `fbist check`.
///
/// Structural errors (cycles, unconnected DFFs) are always reported; the
/// implication-based diagnostics are skipped when the combinational part
/// is cyclic, since implications are only meaningful on a DAG.
pub fn analyze(netlist: &Netlist) -> AnalysisReport {
    let mut findings = Vec::new();

    let cycles = netlist.combinational_cycles();
    for cycle in &cycles {
        let mut names: Vec<&str> = cycle.iter().map(|&g| netlist.gate(g).name()).collect();
        names.push(names[0]);
        findings.push(Finding {
            severity: Severity::Error,
            code: "comb-cycle",
            message: format!("combinational cycle: {}", names.join(" -> ")),
        });
    }
    for (id, g) in netlist.iter() {
        if g.kind() == GateKind::Dff && g.fanin().is_empty() {
            findings.push(Finding {
                severity: Severity::Error,
                code: "unconnected-dff",
                message: format!("DFF {:?} has no D input", netlist.gate(id).name()),
            });
        }
    }

    let mut testability = Vec::new();
    if cycles.is_empty() {
        let mut imp = Implicator::new(netlist).expect("acyclic: levelize succeeds");
        let order = netlist.levelize().expect("acyclic");
        let s = Structure::compute(netlist, &order, imp.baseline_constants());
        let db = LearnedImplications::learn(netlist).expect("acyclic");

        push_capped(
            &mut findings,
            Severity::Warning,
            "floating-net",
            s.floating
                .iter()
                .map(|&g| {
                    format!(
                        "net {:?} drives nothing and is not an output",
                        name(netlist, g)
                    )
                })
                .collect(),
        );
        push_capped(
            &mut findings,
            Severity::Warning,
            "unobservable",
            s.unobservable
                .iter()
                .map(|&g| {
                    format!(
                        "gate {:?} has no structural path to any output",
                        name(netlist, g)
                    )
                })
                .collect(),
        );
        push_capped(
            &mut findings,
            Severity::Warning,
            "constant-net",
            s.dead_constant
                .iter()
                .map(|&(g, v)| {
                    format!(
                        "net {:?} is constant {} behind constant inputs",
                        name(netlist, g),
                        v as u8
                    )
                })
                .collect(),
        );

        // Constants only the implication engine can see (reconvergence
        // like AND(x, NOT x)): informational — real circuits contain
        // such redundancy legitimately.
        let already: Vec<bool> = {
            let mut m = vec![false; netlist.gate_count()];
            for &(g, _) in &s.dead_constant {
                m[g.index()] = true;
            }
            m
        };
        let baseline = imp.baseline_constants();
        let mut implied = Vec::new();
        let mut direct_constant = vec![false; netlist.gate_count()];
        for (id, g) in netlist.iter() {
            if g.kind().is_source() || g.kind().is_state() {
                continue;
            }
            if let Some(v) = imp.implied_constant(id) {
                direct_constant[id.index()] = true;
                if !already[id.index()] {
                    implied.push(format!(
                        "net {:?} is provably constant {}",
                        name(netlist, id),
                        v as u8
                    ));
                }
            }
        }
        push_capped(&mut findings, Severity::Info, "implied-constant", implied);

        // Redundancies only static learning can see: constants needing
        // recursive case splits or indirect-implication chains.
        let mut learned = Vec::new();
        for (id, g) in netlist.iter() {
            if g.kind().is_source()
                || g.kind().is_state()
                || baseline[id.index()].is_some()
                || direct_constant[id.index()]
            {
                continue;
            }
            if let Some(v) = db.constant(id) {
                learned.push(format!(
                    "net {:?} is constant {} by static learning",
                    name(netlist, id),
                    v as u8
                ));
            }
        }
        push_capped(&mut findings, Severity::Info, "learned-constant", learned);

        let faults = FaultList::full(netlist);
        let plain = untestable_faults(netlist, &faults).expect("acyclic");
        let mask = untestable_faults_with(netlist, &faults, Some(&db)).expect("acyclic");
        let proven: Vec<String> = faults
            .iter()
            .filter(|(fid, _)| mask[fid.index()])
            .map(|(_, f)| f.describe(netlist))
            .collect();
        if !proven.is_empty() {
            let sample: Vec<&str> = proven.iter().take(5).map(String::as_str).collect();
            let more = if proven.len() > sample.len() {
                ", ..."
            } else {
                ""
            };
            findings.push(Finding {
                severity: Severity::Info,
                code: "untestable-faults",
                message: format!(
                    "{} of {} stuck-at faults are provably untestable ({}{more})",
                    proven.len(),
                    faults.len(),
                    sample.join(", ")
                ),
            });
        }
        let extra = mask.iter().zip(&plain).filter(|&(&m, &p)| m && !p).count();
        if extra > 0 {
            let samples: Vec<String> = faults
                .iter()
                .filter(|(fid, _)| mask[fid.index()] && !plain[fid.index()])
                .take(5)
                .map(|(_, f)| f.describe(netlist))
                .collect();
            findings.push(Finding {
                severity: Severity::Info,
                code: "learned-untestable",
                message: format!(
                    "static learning proves {extra} additional faults untestable ({})",
                    samples.join(", ")
                ),
            });
        }

        testability = hard_to_test(netlist);
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    AnalysisReport {
        circuit: netlist.name().to_owned(),
        gates: netlist.gate_count(),
        findings,
        testability,
    }
}

/// The SCOAP hard-to-test report: the [`MAX_HARD_NETS`] fault sites with
/// the highest finite `fault_difficulty`, hardest first, ties broken by
/// net order then stuck value — a stable ranking of the
/// random-pattern-resistant regions.
fn hard_to_test(netlist: &Netlist) -> Vec<Entry> {
    let t = match Testability::analyze(netlist) {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    let mut sites: Vec<(u32, usize, bool)> = Vec::new();
    for (id, _) in netlist.iter() {
        for stuck in [false, true] {
            // Saturated measures mean "impossible", which the untestability
            // findings already cover — the ranking is for *hard*, not
            // hopeless, sites.
            if t.cc(id, !stuck) >= Testability::INFINITY || t.co(id) >= Testability::INFINITY {
                continue;
            }
            sites.push((t.fault_difficulty(id, stuck), id.index(), stuck));
        }
    }
    sites.sort_by_key(|&(d, i, s)| (std::cmp::Reverse(d), i, s));
    sites
        .into_iter()
        .take(MAX_HARD_NETS)
        .map(|(d, i, stuck)| {
            let id = fbist_netlist::GateId::from_index(i);
            Entry {
                net: netlist.gate(id).name().to_owned(),
                stuck,
                difficulty: d,
                cc0: t.cc0(id),
                cc1: t.cc1(id),
                co: t.co(id),
            }
        })
        .collect()
}

fn name(netlist: &Netlist, g: fbist_netlist::GateId) -> &str {
    netlist.gate(g).name()
}

/// Pushes one finding per item up to [`MAX_LISTED`], folding the overflow
/// into a single "and N more" finding of the same code.
fn push_capped(
    findings: &mut Vec<Finding>,
    severity: Severity,
    code: &'static str,
    items: Vec<String>,
) {
    let total = items.len();
    for message in items.into_iter().take(MAX_LISTED) {
        findings.push(Finding {
            severity,
            code,
            message,
        });
    }
    if total > MAX_LISTED {
        findings.push(Finding {
            severity,
            code,
            message: format!("... and {} more", total - MAX_LISTED),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::bench;

    #[test]
    fn clean_circuit_clean_report() {
        let n = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let r = analyze(&n);
        assert!(!r.has_findings());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.gates, 3);
    }

    #[test]
    fn embedded_c17_is_clean() {
        let r = analyze(&fbist_netlist::embedded::c17());
        assert!(!r.has_findings(), "{}", r.render_text());
    }

    #[test]
    fn floating_and_constant_warnings() {
        let src = "INPUT(a)\nOUTPUT(w)\nz = CONST0()\ny = NOT(a)\nw = AND(y, z)\nf = BUFF(a)\n";
        let n = bench::parse(src).unwrap();
        let r = analyze(&n);
        assert!(r.has_findings());
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"floating-net"), "{codes:?}");
        assert!(codes.contains(&"unobservable"), "{codes:?}");
        assert!(codes.contains(&"constant-net"), "{codes:?}");
        assert!(codes.contains(&"untestable-faults"), "{codes:?}");
    }

    #[test]
    fn redundancy_is_info_only() {
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\nr = OR(a, na)\ny = BUFF(r)\n";
        let n = bench::parse(src).unwrap();
        let r = analyze(&n);
        assert!(!r.has_findings(), "{}", r.render_text());
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"implied-constant"), "{codes:?}");
        assert!(codes.contains(&"untestable-faults"), "{codes:?}");
    }

    #[test]
    fn errors_sort_before_infos() {
        let src = "INPUT(a)\nOUTPUT(w)\nz = CONST1()\nw = OR(a, z)\n";
        let n = bench::parse(src).unwrap();
        let r = analyze(&n);
        for pair in r.findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }

    #[test]
    fn capping_folds_overflow() {
        // 30 floating buffers → 20 listed + 1 "and 10 more".
        let mut src = String::from("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        for i in 0..30 {
            src.push_str(&format!("f{i} = BUFF(a)\n"));
        }
        let n = bench::parse(&src).unwrap();
        let r = analyze(&n);
        let floats = r
            .findings
            .iter()
            .filter(|f| f.code == "floating-net")
            .count();
        assert_eq!(floats, MAX_LISTED + 1);
        assert!(r.findings.iter().any(|f| f.message.contains("and 10 more")));
    }
}
