//! FIRE-style fault-independent identification of untestable faults.
//!
//! For every stuck-at fault the pass assumes the *necessary* good-machine
//! conditions for detection and asks the implication engine whether they
//! are jointly satisfiable:
//!
//! * a stem fault `s/v` needs `s = v̄` (excitation) and a structural path
//!   from `s` to an observation point (observability);
//! * a pin fault on pin `p` of gate `g` with driver `d` needs `d = v̄`,
//!   every *other* pin of `g` at a non-controlling value (the effect must
//!   pass through `g` — side pins cannot carry it), and therefore `g`'s
//!   output at the value those pins force.
//!
//! A contradiction proves no test exists, so the fault is untestable. The
//! verdicts are then closed over structural equivalence classes from
//! [`fbist_fault::collapse`]: equivalent faults share their exact test
//! sets, so one proven member settles the whole class.
//!
//! With a [`LearnedImplications`] database
//! ([`untestable_faults_with`]) the pass proves strictly more: every
//! implication query additionally applies learned indirect implications
//! and learned global constants, and the closure also runs over the
//! implication-proved equivalence classes and dominance pairs of
//! [`crate::learning::fault_relations`] (an untestable dominator settles
//! every fault it dominates).
//!
//! Everything proven here is sound; the pass is deliberately incomplete
//! (a `false` entry means "not proven", not "testable").

use fbist_fault::collapse::collapse;
use fbist_fault::{FaultList, FaultSite};
use fbist_netlist::{GateKind, Netlist, NetlistError};

use crate::implication::Implicator;
use crate::learning::{fault_relations, LearnedImplications};
use crate::structure::Structure;

/// Marks the faults of `faults` that are statically provably untestable.
///
/// Returns a mask parallel to the fault list: `mask[i]` is `true` iff
/// fault `i` is proven untestable. Sound and conservative — `false`
/// only means the cheap analysis could not decide.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn untestable_faults(netlist: &Netlist, faults: &FaultList) -> Result<Vec<bool>, NetlistError> {
    untestable_faults_with(netlist, faults, None)
}

/// [`untestable_faults`], optionally strengthened by a learned-implication
/// database. Everything the plain pass proves is still proven (learning
/// only ever *adds* refutations), so the learned mask is a superset of
/// the plain one.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn untestable_faults_with(
    netlist: &Netlist,
    faults: &FaultList,
    db: Option<&LearnedImplications>,
) -> Result<Vec<bool>, NetlistError> {
    let mut imp = Implicator::new(netlist)?;
    let order = netlist.levelize()?;
    let structure = Structure::compute(netlist, &order, imp.baseline_constants());
    let mut mask = vec![false; faults.len()];

    let mut assumptions = Vec::with_capacity(8);
    for (id, fault) in faults.iter() {
        let v = fault.stuck_value();
        assumptions.clear();
        let proven = match fault.site() {
            FaultSite::GateOutput(s) => {
                // Unobservable stem, or excitation (s = v̄) impossible.
                if !structure.obs[s.index()] {
                    true
                } else {
                    assumptions.push((s, !v));
                    imp.contradicts_with(&assumptions, db)
                }
            }
            FaultSite::GateInput { gate, pin } => {
                let g = netlist.gate(gate);
                if !structure.obs[gate.index()] && g.kind() != GateKind::Dff {
                    true
                } else {
                    let d = g.fanin()[pin as usize];
                    assumptions.push((d, !v));
                    match g.kind().controlling_value() {
                        Some(c) => {
                            // Side pins must sit at the non-controlling
                            // value for the effect to pass through g,
                            // which then fixes g's good output too.
                            for (p, &side) in g.fanin().iter().enumerate() {
                                if p != pin as usize {
                                    assumptions.push((side, !c));
                                }
                            }
                            let out = v == g.kind().is_inverting();
                            assumptions.push((gate, out));
                        }
                        None => {
                            if matches!(g.kind(), GateKind::Not | GateKind::Buff) {
                                let out = v == g.kind().is_inverting();
                                assumptions.push((gate, out));
                            }
                            // XOR family: any side values propagate, and
                            // the output depends on them — only the
                            // excitation condition is necessary. DFF D
                            // pins likewise get excitation only.
                        }
                    }
                    imp.contradicts_with(&assumptions, db)
                }
            }
        };
        mask[id.index()] = proven;
    }

    // Close the verdicts over structural equivalence classes — and, with a
    // database, over implication-proved equivalences and dominances too.
    // Dominance can prove a fault whose class then proves further faults,
    // so iterate to a fixpoint (monotone, hence terminating).
    let collapsed = collapse(netlist, faults);
    let relations = db.map(|db| fault_relations(netlist, faults, db));
    let mut class_proven = vec![false; collapsed.representatives.len()];
    let mut learned_class_proven = relations
        .as_ref()
        .map(|_| vec![false; faults.len()])
        .unwrap_or_default();
    loop {
        let mut changed = false;
        for (i, &m) in mask.iter().enumerate() {
            if m && !class_proven[collapsed.class_of[i]] {
                class_proven[collapsed.class_of[i]] = true;
                changed = true;
            }
        }
        for (i, m) in mask.iter_mut().enumerate() {
            if class_proven[collapsed.class_of[i]] && !*m {
                *m = true;
                changed = true;
            }
        }
        if let Some(rel) = &relations {
            for (i, &m) in mask.iter().enumerate() {
                let c = rel.class_of[i] as usize;
                if m && !learned_class_proven[c] {
                    learned_class_proven[c] = true;
                    changed = true;
                }
            }
            for (i, m) in mask.iter_mut().enumerate() {
                if learned_class_proven[rel.class_of[i] as usize] && !*m {
                    *m = true;
                    changed = true;
                }
            }
            for &(dom, sub) in &rel.dominances {
                if mask[dom as usize] && !mask[sub as usize] {
                    mask[sub as usize] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_fault::Fault;
    use fbist_netlist::bench;

    fn proven(src: &str) -> (Vec<bool>, FaultList, Netlist) {
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let mask = untestable_faults(&n, &faults).unwrap();
        (mask, faults, n)
    }

    fn describe_proven(mask: &[bool], faults: &FaultList, n: &Netlist) -> Vec<String> {
        faults
            .iter()
            .filter(|(id, _)| mask[id.index()])
            .map(|(_, f)| f.describe(n))
            .collect()
    }

    #[test]
    fn irredundant_circuit_has_no_untestable_faults() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let (mask, _, _) = proven(src);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn classic_redundancy_is_proven() {
        // y = OR(a, NOT a) is constant 1: y/1 can't be excited, and the
        // pin faults needing the sibling non-controlling contradict too.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let (mask, faults, n) = proven(src);
        let named = describe_proven(&mask, &faults, &n);
        assert!(named.contains(&"y/1".to_owned()), "{named:?}");
        // The sa-0 pin faults and y/0 flip the always-1 output, so they
        // ARE detectable and must not be claimed.
        assert!(!named.contains(&"a->y.0/0".to_owned()), "{named:?}");
        assert!(!named.contains(&"y/0".to_owned()), "{named:?}");
    }

    #[test]
    fn unobservable_cone_is_untestable() {
        // w = AND(y, CONST0): every fault on y's cone is unobservable.
        let src = "INPUT(a)\nOUTPUT(w)\nz = CONST0()\ny = NOT(a)\nw = AND(y, z)\n";
        let (mask, faults, n) = proven(src);
        let named = describe_proven(&mask, &faults, &n);
        assert!(named.contains(&"y/0".to_owned()), "{named:?}");
        assert!(named.contains(&"y/1".to_owned()), "{named:?}");
        assert!(named.contains(&"a/0".to_owned()), "{named:?}");
        // w/1 is excitable? w is constant 0; stuck-at-1 flips the PO:
        // detectable. w/0 agrees with the constant: untestable.
        assert!(named.contains(&"w/0".to_owned()), "{named:?}");
        assert!(!named.contains(&"w/1".to_owned()), "{named:?}");
    }

    #[test]
    fn same_net_on_both_pins_is_untestable() {
        // y = AND(a, a): a pin fault needs the other pin non-controlling
        // while its own driver is controlling — same net, contradiction.
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n";
        let (mask, faults, n) = proven(src);
        let named = describe_proven(&mask, &faults, &n);
        assert!(named.contains(&"a->y.0/1".to_owned()), "{named:?}");
        assert!(named.contains(&"a->y.1/1".to_owned()), "{named:?}");
        // stuck-at-0 pin faults collapse with y/0, which is testable.
        assert!(!named.contains(&"y/0".to_owned()), "{named:?}");
    }

    #[test]
    fn verdicts_close_over_equivalence_classes() {
        // In y = OR(a, na), pin fault a->y.0/1 is equivalent to y/1
        // (OR input sa-1 ≡ output sa-1); y/1 is proven, so the class is.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n";
        let (mask, faults, n) = proven(src);
        let named = describe_proven(&mask, &faults, &n);
        assert!(named.contains(&"a->y.0/1".to_owned()), "{named:?}");
        assert!(named.contains(&"na->y.1/1".to_owned()), "{named:?}");
    }

    #[test]
    fn shared_constant_cone_faults_are_not_claimed() {
        // t1 and t2 are both constant controlling pins of h but share
        // the driver s: s/1 (and c/1, h/1) flips h 0 -> 1 on every
        // pattern, so they are detectable and must never be proven.
        // s/0 and h/0 agree with the baseline constant: untestable.
        let src = "OUTPUT(h)\nc = CONST0()\ns = BUFF(c)\n\
                   t1 = BUFF(s)\nt2 = BUFF(s)\nh = AND(t1, t2)\n";
        let (mask, faults, n) = proven(src);
        let named = describe_proven(&mask, &faults, &n);
        for f in ["s/1", "c/1", "h/1"] {
            assert!(!named.contains(&f.to_owned()), "{f} claimed: {named:?}");
        }
        for f in ["s/0", "h/0"] {
            assert!(named.contains(&f.to_owned()), "{f} missing: {named:?}");
        }
    }

    #[test]
    fn learning_proves_strictly_more_than_the_plain_pass() {
        // d = XOR(w, z) where w and z compute the same function through
        // twin XOR gates, so d is identically 0. No direct rule sees it:
        // every single-literal query leaves two free pins on every gate,
        // and d is a primary output so nothing is observability-blocked.
        // Only the learned database (w ≡ z from the pass-1 case splits,
        // then the pass-2 re-split of d's gate over those rows) proves d
        // constant, settling d stuck-at-0.
        let src = "INPUT(x1)\nINPUT(x2)\nOUTPUT(d)\n\
                   w = XOR(x2, x1)\nz = XOR(x1, x2)\nd = XOR(w, z)\n";
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let plain = untestable_faults(&n, &faults).unwrap();
        let db = LearnedImplications::learn(&n).unwrap();
        let learned = untestable_faults_with(&n, &faults, Some(&db)).unwrap();
        for (i, &p) in plain.iter().enumerate() {
            assert!(!p || learned[i], "learning dropped a plain verdict");
        }
        let plain_named = describe_proven(&plain, &faults, &n);
        let learned_named = describe_proven(&learned, &faults, &n);
        assert!(!plain_named.contains(&"d/0".to_owned()), "{plain_named:?}");
        assert!(
            learned_named.contains(&"d/0".to_owned()),
            "{learned_named:?}"
        );
    }

    #[test]
    fn proven_faults_are_never_detected_by_exhaustive_patterns() {
        // Exhaustive check on a small redundant circuit: no input pattern
        // detects any proven-untestable fault.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(w)\n\
                   na = NOT(a)\nr = OR(a, na)\ny = AND(r, b)\nw = NAND(a, b)\n";
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let mask = untestable_faults(&n, &faults).unwrap();
        assert!(mask.iter().any(|&m| m), "expected some proven faults");
        let order = n.levelize().unwrap();
        for (id, f) in faults.iter() {
            if !mask[id.index()] {
                continue;
            }
            for pat in 0u32..4 {
                let assign = |i: usize| (pat >> i) & 1 == 1;
                let good = eval_all(&n, &order, None, assign);
                let bad = eval_all(&n, &order, Some(f), assign);
                for &o in n.outputs() {
                    assert_eq!(
                        good[o.index()],
                        bad[o.index()],
                        "fault {} detected by pattern {pat:02b}",
                        f.describe(&n)
                    );
                }
            }
        }
    }

    /// Tiny single-pattern true-value simulator with optional fault
    /// injection, for exhaustive cross-checks.
    fn eval_all(
        n: &Netlist,
        order: &[fbist_netlist::GateId],
        fault: Option<Fault>,
        assign: impl Fn(usize) -> bool,
    ) -> Vec<bool> {
        let mut val = vec![false; n.gate_count()];
        for &id in order {
            let g = n.gate(id);
            let mut v = match g.kind() {
                GateKind::Input => assign(n.input_position(id).expect("input")),
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                GateKind::Dff => false,
                kind => {
                    let pins: Vec<u64> = g
                        .fanin()
                        .iter()
                        .enumerate()
                        .map(|(p, f)| {
                            let mut b = val[f.index()];
                            if let Some(flt) = fault {
                                if flt.site()
                                    == (FaultSite::GateInput {
                                        gate: id,
                                        pin: p as u32,
                                    })
                                {
                                    b = flt.stuck_value();
                                }
                            }
                            b as u64
                        })
                        .collect();
                    fbist_netlist::eval_packed(kind, &pins) & 1 == 1
                }
            };
            if let Some(flt) = fault {
                if flt.site() == FaultSite::GateOutput(id) {
                    v = flt.stuck_value();
                }
            }
            val[id.index()] = v;
        }
        val
    }
}
