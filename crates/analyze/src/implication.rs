//! A static implication engine over the two-bit Kleene domain.
//!
//! Each net holds a two-bit set of the binary values it may still take:
//! `0b01` = only 0, `0b10` = only 1, `0b11` = unknown (X). Assumptions
//! intersect sets; an empty intersection is a contradiction, proving the
//! assumed scenario impossible in the fault-free circuit. The engine
//! propagates *direct* implications — forward gate evaluation plus the
//! classical backward rules (all-inputs forced, last-free-input forced,
//! parity completion) — to a fixpoint. On its own it is deliberately
//! incomplete (no learning, no recursion): everything it proves is sound,
//! cheap, and fault-independent, which is exactly what the FIRE-style
//! untestability pre-pass in [`crate::untestable`] needs. The
//! [`crate::learning`] layer closes part of the gap: queries can be handed
//! a [`LearnedImplications`] database, and whenever a net settles to a
//! definite value during propagation its learned consequences (and learned
//! global constants) are applied as additional implications.
//!
//! Queries are epoch-stamped overlays over a baseline computed once by
//! constant propagation from `CONST0`/`CONST1` gates, so thousands of
//! per-fault queries reuse the same allocation with O(changed) reset cost.

use fbist_netlist::{GateId, GateKind, Netlist, NetlistError};

use crate::learning::LearnedImplications;

/// Two-bit value set: bit 0 = "can be 0", bit 1 = "can be 1".
pub(crate) type Tv = u8;
/// Definitely logic 0.
pub(crate) const TV_ZERO: Tv = 0b01;
/// Definitely logic 1.
pub(crate) const TV_ONE: Tv = 0b10;
/// Unknown: either value possible.
pub(crate) const TV_X: Tv = 0b11;

#[inline]
pub(crate) fn tv_from_bool(b: bool) -> Tv {
    if b {
        TV_ONE
    } else {
        TV_ZERO
    }
}

/// Kleene negation: swaps the two bits (X stays X).
#[inline]
fn tv_not(v: Tv) -> Tv {
    ((v << 1) | (v >> 1)) & 0b11
}

#[inline]
pub(crate) fn tv_definite(v: Tv) -> Option<bool> {
    match v {
        TV_ZERO => Some(false),
        TV_ONE => Some(true),
        _ => None,
    }
}

/// The implication engine. Create once per netlist, query many times.
pub struct Implicator {
    kinds: Vec<GateKind>,
    fanin: Vec<Vec<u32>>,
    fanout: Vec<Vec<u32>>,
    /// Baseline values (constant propagation from CONST gates).
    base: Vec<Tv>,
    /// Per-query overlay, valid where `stamp == epoch`.
    cur: Vec<Tv>,
    stamp: Vec<u32>,
    /// "In worklist" marker, valid where `queued == epoch`.
    queued: Vec<u32>,
    /// "Learned row already applied" marker, valid where `== epoch`:
    /// a net's learned consequences join the fixpoint the first time it
    /// is popped definite, and a worklist revisit must not rescan the
    /// row (rows are static per query, so one application saturates).
    row_done: Vec<u32>,
    epoch: u32,
    queue: Vec<u32>,
    /// Nets written for the first time in the current epoch (all definite
    /// unless the query contradicted) — the query's consequence set.
    touched: Vec<u32>,
    contra: bool,
}

impl Implicator {
    /// Builds the engine, computing the constant-propagation baseline.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists —
    /// implications are only meaningful on a DAG.
    pub fn new(netlist: &Netlist) -> Result<Implicator, NetlistError> {
        let order = netlist.levelize()?;
        let n = netlist.gate_count();
        let kinds = netlist.kinds();
        let fanin: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                netlist
                    .gate(GateId::from_index(i))
                    .fanin()
                    .iter()
                    .map(|f| f.index() as u32)
                    .collect()
            })
            .collect();
        let fanout: Vec<Vec<u32>> = netlist
            .fanouts()
            .into_iter()
            .map(|fo| fo.into_iter().map(|g| g.index() as u32).collect())
            .collect();
        let mut base = vec![TV_X; n];
        for &id in &order {
            let i = id.index();
            base[i] = match kinds[i] {
                GateKind::Input | GateKind::Dff => TV_X,
                GateKind::Const0 => TV_ZERO,
                GateKind::Const1 => TV_ONE,
                k => eval_gate(k, fanin[i].iter().map(|&f| base[f as usize])),
            };
        }
        Ok(Implicator {
            kinds,
            fanin,
            fanout,
            cur: base.clone(),
            base,
            stamp: vec![0; n],
            queued: vec![0; n],
            row_done: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
            touched: Vec::new(),
            contra: false,
        })
    }

    /// The baseline constant value of every net: `Some(v)` where constant
    /// propagation from `CONST` gates fixes the net, `None` otherwise.
    pub fn baseline_constants(&self) -> Vec<Option<bool>> {
        self.base.iter().map(|&v| tv_definite(v)).collect()
    }

    /// `true` if simultaneously assuming every `(net, value)` pair leads to
    /// a contradiction in the fault-free circuit — i.e. the scenario is
    /// provably impossible.
    pub fn contradicts(&mut self, assumptions: &[(GateId, bool)]) -> bool {
        self.contradicts_with(assumptions, None)
    }

    /// [`Implicator::contradicts`] strengthened by a learned-implication
    /// database: whenever a net settles to a definite value, its learned
    /// consequences are applied too, so strictly more scenarios are
    /// refutable (everything the direct engine proves is still proved).
    pub fn contradicts_with(
        &mut self,
        assumptions: &[(GateId, bool)],
        db: Option<&LearnedImplications>,
    ) -> bool {
        self.begin();
        for &(g, v) in assumptions {
            self.set(g.index(), tv_from_bool(v));
        }
        self.propagate(db);
        self.contra
    }

    /// Proves a net constant, if possible: `Some(v)` when the net is fixed
    /// to `v` either by baseline constant propagation or because assuming
    /// the opposite value is contradictory.
    pub fn implied_constant(&mut self, net: GateId) -> Option<bool> {
        if let Some(v) = tv_definite(self.base[net.index()]) {
            return Some(v);
        }
        if self.contradicts(&[(net, true)]) {
            Some(false)
        } else if self.contradicts(&[(net, false)]) {
            Some(true)
        } else {
            None
        }
    }

    /// Assumes the encoded literals, propagates to a fixpoint (db-aware
    /// when `db` is given) and returns the nets that settled to a definite
    /// value, encoded as sorted literals (`2·net + value`). `None` means
    /// the assumption set is contradictory. This is the primitive the
    /// [`crate::learning`] builder runs once per candidate literal.
    pub(crate) fn consequences_with(
        &mut self,
        assumptions: &[(u32, bool)],
        db: Option<&LearnedImplications>,
    ) -> Option<Vec<u32>> {
        self.begin();
        for &(g, v) in assumptions {
            self.set(g as usize, tv_from_bool(v));
        }
        self.propagate(db);
        if self.contra {
            return None;
        }
        let mut lits: Vec<u32> = self
            .touched
            .iter()
            .map(|&i| {
                let v = tv_definite(self.cur[i as usize]).expect("touched nets are definite");
                i * 2 + v as u32
            })
            .collect();
        lits.sort_unstable();
        Some(lits)
    }

    /// The definite value net `i` holds right now (valid until the next
    /// query begins). Used by the learning builder to inspect the fixpoint
    /// reached by the last [`Implicator::consequences_with`] call.
    pub(crate) fn definite(&self, i: usize) -> Option<bool> {
        tv_definite(self.value(i))
    }

    // --- incremental sessions -------------------------------------------
    //
    // The learning builder case-splits *on top of* an existing fixpoint
    // thousands of times per netlist. Re-propagating the base assumptions
    // for every case would dominate the build, so these four methods run a
    // query as a live session instead: values only ever narrow (X to
    // definite — a definite-to-definite change is a contradiction), so the
    // `touched` list is a chronological trail and rewinding is a stamp
    // reset plus truncate. Each case then costs only its own delta.

    /// Starts an incremental session: assumes the encoded literals and
    /// propagates to a fixpoint. Returns `false` on contradiction. The
    /// session stays live until the next `begin`-style query.
    pub(crate) fn begin_fixpoint(
        &mut self,
        assumptions: &[(u32, bool)],
        db: Option<&LearnedImplications>,
    ) -> bool {
        self.begin();
        for &(g, v) in assumptions {
            self.set(g as usize, tv_from_bool(v));
        }
        self.propagate(db);
        !self.contra
    }

    /// The current trail position, for [`Implicator::undo_to`].
    pub(crate) fn mark(&self) -> usize {
        self.touched.len()
    }

    /// Additionally assumes `net = v` on the live fixpoint and propagates
    /// the consequences. Returns `false` on contradiction (the caller is
    /// expected to rewind with [`Implicator::undo_to`]).
    pub(crate) fn assume(&mut self, net: u32, v: bool, db: Option<&LearnedImplications>) -> bool {
        self.assume_budgeted(net, v, db, usize::MAX)
    }

    /// [`Implicator::assume`] with a deterministic cap on worklist pops.
    /// An exhausted budget stops the sweep early and reports "feasible":
    /// the partial trail is still a sound consequence set (values only
    /// ever narrow), so a caller intersecting case deltas merely learns
    /// less, and a contradiction past the horizon is conservatively
    /// missed. This bounds the cost of case splits whose assumption
    /// floods a huge forward cone the intersection would discard anyway.
    pub(crate) fn assume_budgeted(
        &mut self,
        net: u32,
        v: bool,
        db: Option<&LearnedImplications>,
        budget: usize,
    ) -> bool {
        self.set(net as usize, tv_from_bool(v));
        self.propagate_budgeted(db, budget);
        !self.contra
    }

    /// Rewinds the live session to `mark`: every net settled after it
    /// reverts to its baseline value and any contradiction is forgotten.
    pub(crate) fn undo_to(&mut self, mark: usize) {
        for &i in &self.touched[mark..] {
            self.stamp[i as usize] = 0;
            // Rewound nets lose their settled value, so their learned rows
            // must fire again if a later case resettles them. (Nets that
            // settled *before* the mark had their rows applied before it
            // too — propagate always reaches a fixpoint first — so those
            // markers stay valid.)
            self.row_done[i as usize] = 0;
        }
        self.touched.truncate(mark);
        self.contra = false;
    }

    /// The nets settled since `mark`, as encoded literals, in settlement
    /// order. Only meaningful while the session is contradiction-free.
    pub(crate) fn trail_lits(&self, mark: usize) -> impl Iterator<Item = u32> + '_ {
        self.touched[mark..].iter().map(|&i| {
            let v = tv_definite(self.cur[i as usize]).expect("touched nets are definite");
            i * 2 + v as u32
        })
    }

    pub(crate) fn gate_kind(&self, i: usize) -> GateKind {
        self.kinds[i]
    }

    pub(crate) fn gate_fanin(&self, i: usize) -> &[u32] {
        &self.fanin[i]
    }

    fn begin(&mut self) {
        if self.epoch == u32::MAX - 1 {
            // Practically unreachable; reset the stamps rather than wrap.
            self.stamp.fill(0);
            self.queued.fill(0);
            self.row_done.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
        self.touched.clear();
        self.contra = false;
    }

    #[inline]
    fn value(&self, i: usize) -> Tv {
        if self.stamp[i] == self.epoch {
            self.cur[i]
        } else {
            self.base[i]
        }
    }

    /// Intersects `v` into net `i`'s value set, recording a contradiction
    /// if it becomes empty and scheduling affected gates otherwise.
    fn set(&mut self, i: usize, v: Tv) {
        if self.contra {
            return;
        }
        let old = self.value(i);
        let nv = old & v;
        if nv == old {
            return;
        }
        if nv == 0 {
            self.contra = true;
            return;
        }
        if self.stamp[i] != self.epoch {
            self.touched.push(i as u32);
        }
        self.cur[i] = nv;
        self.stamp[i] = self.epoch;
        self.enqueue(i);
        for k in 0..self.fanout[i].len() {
            let f = self.fanout[i][k] as usize;
            self.enqueue(f);
        }
    }

    #[inline]
    fn enqueue(&mut self, g: usize) {
        if self.queued[g] != self.epoch {
            self.queued[g] = self.epoch;
            self.queue.push(g as u32);
        }
    }

    fn propagate(&mut self, db: Option<&LearnedImplications>) {
        self.propagate_budgeted(db, usize::MAX);
    }

    fn propagate_budgeted(&mut self, db: Option<&LearnedImplications>, mut budget: usize) {
        while !self.contra {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let g = match self.queue.pop() {
                Some(g) => g as usize,
                None => break,
            };
            self.queued[g] = 0; // allow re-scheduling if new info arrives
            if let Some(db) = db {
                if let Some(v) = tv_definite(self.value(g)) {
                    if self.row_done[g] != self.epoch {
                        self.row_done[g] = self.epoch;
                        // A learned global constant of the opposite polarity
                        // refutes the scenario outright; otherwise every
                        // learned consequence of `g = v` joins the fixpoint.
                        if db.constant_index(g) == Some(!v) {
                            self.contra = true;
                            break;
                        }
                        for &lit in db.implied_lits(g, v) {
                            self.set((lit >> 1) as usize, tv_from_bool(lit & 1 == 1));
                            if self.contra {
                                break;
                            }
                        }
                        if self.contra {
                            break;
                        }
                    }
                }
            }
            self.process(g);
        }
        // On a contradiction or budget abort, unprocessed entries keep
        // their "in worklist" stamp; clear it so a rewound incremental
        // session can re-schedule them within the same epoch.
        while let Some(g) = self.queue.pop() {
            self.queued[g as usize] = 0;
        }
    }

    /// Forward-evaluates gate `g` and applies its backward rules.
    fn process(&mut self, g: usize) {
        let kind = self.kinds[g];
        match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => return,
            _ => {}
        }
        // Forward: the output is compatible with evaluating current pins.
        let np = self.fanin[g].len();
        let fwd = eval_gate(kind, (0..np).map(|p| self.value(self.fanin[g][p] as usize)));
        self.set(g, fwd);
        if self.contra {
            return;
        }
        // Backward: what the output value forces onto the pins.
        let out = self.value(g);
        match kind {
            GateKind::Not => {
                let d = self.fanin[g][0] as usize;
                self.set(d, tv_not(out));
            }
            GateKind::Buff => {
                let d = self.fanin[g][0] as usize;
                self.set(d, out);
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let ctrl = tv_from_bool(kind.controlling_value().expect("and/or family"));
                let noncontrol = tv_not(ctrl);
                let base_out = if kind.is_inverting() {
                    tv_not(out)
                } else {
                    out
                };
                if base_out == noncontrol {
                    // e.g. AND output 1: every input must be 1.
                    for p in 0..np {
                        let d = self.fanin[g][p] as usize;
                        self.set(d, noncontrol);
                        if self.contra {
                            return;
                        }
                    }
                } else if base_out == ctrl {
                    // e.g. AND output 0 with all pins but one already 1:
                    // the remaining pin must be 0.
                    let mut candidate = None;
                    for p in 0..np {
                        if self.value(self.fanin[g][p] as usize) != noncontrol {
                            if candidate.is_some() {
                                return; // more than one pin could control
                            }
                            candidate = Some(p);
                        }
                    }
                    if let Some(p) = candidate {
                        let d = self.fanin[g][p] as usize;
                        self.set(d, ctrl);
                    }
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let out_b = match tv_definite(out) {
                    Some(b) => b,
                    None => return,
                };
                // Parity completion: with exactly one X pin, it is forced.
                let mut parity = false;
                let mut free = None;
                for p in 0..np {
                    match tv_definite(self.value(self.fanin[g][p] as usize)) {
                        Some(b) => parity ^= b,
                        None => {
                            if free.is_some() {
                                return;
                            }
                            free = Some(p);
                        }
                    }
                }
                if let Some(p) = free {
                    let need = if kind == GateKind::Xnor {
                        !out_b
                    } else {
                        out_b
                    };
                    let d = self.fanin[g][p] as usize;
                    self.set(d, tv_from_bool(need ^ parity));
                }
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {}
        }
    }
}

/// Kleene evaluation of one gate over two-bit values.
pub(crate) fn eval_gate(kind: GateKind, vals: impl Iterator<Item = Tv>) -> Tv {
    match kind {
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let ctrl = tv_from_bool(kind.controlling_value().expect("and/or family"));
            let mut has_x = false;
            let mut res = tv_not(ctrl);
            for v in vals {
                if v == ctrl {
                    res = ctrl;
                    has_x = false;
                    break;
                }
                if v == TV_X {
                    has_x = true;
                }
            }
            let res = if has_x { TV_X } else { res };
            if kind.is_inverting() {
                tv_not(res)
            } else {
                res
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = false;
            for v in vals {
                match tv_definite(v) {
                    Some(b) => acc ^= b,
                    None => return TV_X,
                }
            }
            tv_from_bool(acc != (kind == GateKind::Xnor))
        }
        GateKind::Not => tv_not(vals.into_iter().next().expect("one fanin")),
        GateKind::Buff => vals.into_iter().next().expect("one fanin"),
        GateKind::Const0 => TV_ZERO,
        GateKind::Const1 => TV_ONE,
        GateKind::Input | GateKind::Dff => TV_X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::bench;

    fn imp(src: &str) -> (Implicator, fbist_netlist::Netlist) {
        let n = bench::parse(src).unwrap();
        (Implicator::new(&n).unwrap(), n)
    }

    #[test]
    fn baseline_constant_propagation() {
        let src = "INPUT(a)\nOUTPUT(y)\nz = CONST0()\nw = AND(a, z)\ny = OR(w, a)\n";
        let (imp, n) = imp(src);
        let consts = imp.baseline_constants();
        assert_eq!(consts[n.find("z").unwrap().index()], Some(false));
        assert_eq!(consts[n.find("w").unwrap().index()], Some(false));
        assert_eq!(consts[n.find("y").unwrap().index()], None);
    }

    #[test]
    fn conflicting_reconvergence_contradicts() {
        // y = AND(a, NOT a) can never be 1.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = AND(a, na)\n";
        let (mut imp, n) = imp(src);
        let y = n.find("y").unwrap();
        assert!(imp.contradicts(&[(y, true)]));
        assert!(!imp.contradicts(&[(y, false)]));
        assert_eq!(imp.implied_constant(y), Some(false));
        assert_eq!(imp.implied_constant(n.find("a").unwrap()), None);
    }

    #[test]
    fn backward_last_free_input() {
        // y = OR(a, b): y=1 with a=0 forces b=1; asking also b=0 contradicts.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n";
        let (mut imp, n) = imp(src);
        let (a, b, y) = (
            n.find("a").unwrap(),
            n.find("b").unwrap(),
            n.find("y").unwrap(),
        );
        assert!(imp.contradicts(&[(y, true), (a, false), (b, false)]));
        assert!(!imp.contradicts(&[(y, true), (a, false)]));
    }

    #[test]
    fn xor_parity_completion() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let (mut imp, n) = imp(src);
        let (a, b, y) = (
            n.find("a").unwrap(),
            n.find("b").unwrap(),
            n.find("y").unwrap(),
        );
        assert!(imp.contradicts(&[(y, true), (a, true), (b, true)]));
        assert!(!imp.contradicts(&[(y, true), (a, true), (b, false)]));
    }

    #[test]
    fn queries_are_independent() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n";
        let (mut imp, n) = imp(src);
        let (a, y) = (n.find("a").unwrap(), n.find("y").unwrap());
        for _ in 0..100 {
            assert!(imp.contradicts(&[(a, true), (y, false)]));
            assert!(!imp.contradicts(&[(a, true), (y, true)]));
        }
    }

    #[test]
    fn dff_is_a_free_source() {
        // Sequential feedback never makes the single-timeframe engine loop
        // or conclude anything about Q from D.
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n";
        let (mut imp, n) = imp(src);
        let q = n.find("q").unwrap();
        assert!(!imp.contradicts(&[(q, true)]));
        assert!(!imp.contradicts(&[(q, false)]));
    }
}
