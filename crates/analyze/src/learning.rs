//! SOCRATES-style static learning: a learned-implication database.
//!
//! The direct [`Implicator`](crate::Implicator) only knows implications it
//! can reach by forward evaluation and the classical backward rules. This
//! module computes, once per netlist, the *indirect* implications those
//! rules miss, using two classic techniques:
//!
//! 1. **Contrapositive extraction.** For every net/value literal `net = v`
//!    the direct engine is run to a fixpoint; every consequence `w = u`
//!    yields the learned implication `w = ¬u ⇒ net = ¬v`. Forward
//!    propagation is complete but backward propagation is not, so many of
//!    these contrapositives are invisible to the direct engine.
//! 2. **Bounded recursive learning.** When the queried gate itself is
//!    *unjustified* at the fixpoint (output forced to a value no single
//!    pin yet explains) it defines a complete case split: for an
//!    AND-family gate forced to its controlled side, some free pin must
//!    carry the controlling value; for an XOR-family gate with free pins,
//!    the first free pin is 0 or 1. Each case is propagated separately
//!    (recursing up to the configured depth) and consequences common to
//!    every feasible case are sound consequences of the original literal.
//!    If *no* case is feasible the literal itself is impossible — the net
//!    is a learned constant. Splitting only the queried gate (not every
//!    unjustified gate in its cone) is deliberate: the cone gate's own
//!    query performs that split once, and pass 2's database replay
//!    imports the result everywhere it applies.
//!
//! # Database format
//!
//! The result is a CSR table over literals: literal `2·net + value` maps
//! to a sorted slice of implied literals in the same encoding, plus a
//! per-net table of learned global constants. The build runs two passes —
//! pass 1 learns from the direct engine alone, pass 2 re-queries every
//! literal *with the pass-1 database applied* so chains of indirect
//! implications are flattened into a closed consequence set. Queries are
//! therefore a single slice lookup with no propagation at all, which is
//! what lets PODEM consult the database after every implication step.
//!
//! The recursion depth is bounded ([`DEFAULT_RECURSION_DEPTH`] unless
//! [`LearnedImplications::learn_with_depth`] says otherwise) and each
//! query case-splits at most [`SPLIT_CAP`] gates of at most [`CASE_CAP`]
//! cases each, so the build stays a small fraction of one ATPG run.
//!
//! Everything recorded is a property of the *fault-free* circuit and is
//! validated against exhaustive truth-table simulation by the soundness
//! proptests in `tests/analyze_equivalence.rs`.

use fbist_fault::{Fault, FaultList, FaultSite};
use fbist_netlist::{GateId, GateKind, Netlist, NetlistError};

use crate::implication::{eval_gate, tv_definite, tv_from_bool, Implicator, TV_X};

/// Recursion depth used by [`LearnedImplications::learn`]: one level of
/// case splitting, the SOCRATES sweet spot (deeper levels cost quadratic
/// build time for sharply diminishing returns).
pub const DEFAULT_RECURSION_DEPTH: usize = 1;

/// At most this many root gates are case-split per query — a
/// deterministic cost bound (single-literal queries, the only kind the
/// builder issues, split at most one gate regardless).
const SPLIT_CAP: usize = 2;

/// Gates with more candidate cases than this are skipped: wide splits are
/// expensive and rarely share consequences across all cases.
const CASE_CAP: usize = 8;

/// Worklist-pop cap per split case. A case assumption can flood a huge
/// forward cone whose far reaches the cross-case intersection discards
/// anyway; stopping early is sound (the partial delta only shrinks the
/// learned commons, and an unreached contradiction is conservatively
/// treated as feasible) and keeps the worst-case split cost flat.
const CASE_POP_BUDGET: usize = 1024;

/// The learned-implication database: for every literal, the closed set of
/// literals it implies in the fault-free circuit, plus learned global
/// constants. Build once per netlist with [`LearnedImplications::learn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedImplications {
    nets: usize,
    /// CSR row starts, indexed by literal (`2·net + value`), length
    /// `2·nets + 1`.
    offsets: Vec<u32>,
    /// Implied literals, ascending within each row.
    lits: Vec<u32>,
    /// Per-net proven constants (baseline constant propagation plus
    /// constants discovered by learning).
    constants: Vec<Option<bool>>,
    /// Constants beyond the plain propagation baseline.
    learned_constants: usize,
    depth: usize,
}

impl LearnedImplications {
    /// Learns the database at [`DEFAULT_RECURSION_DEPTH`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn learn(netlist: &Netlist) -> Result<LearnedImplications, NetlistError> {
        LearnedImplications::learn_with_depth(netlist, DEFAULT_RECURSION_DEPTH)
    }

    /// Learns the database with an explicit recursion-depth bound
    /// (`depth = 0` disables case splitting and keeps only
    /// contrapositives and implication chaining).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
    pub fn learn_with_depth(
        netlist: &Netlist,
        depth: usize,
    ) -> Result<LearnedImplications, NetlistError> {
        let mut imp = Implicator::new(netlist)?;
        let n = netlist.gate_count();
        let baseline = imp.baseline_constants();
        let baseline_count = baseline.iter().filter(|c| c.is_some()).count();

        // Pass 1: direct + recursive consequences and their contrapositives.
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        let mut constants = baseline;
        for net in 0..n {
            for v in [false, true] {
                if constants[net].is_some() {
                    break;
                }
                match recursive_consequences(&mut imp, &[(net as u32, v)], depth, None) {
                    None => record_constant(&mut imp, &mut constants, net, !v),
                    Some(lits) => {
                        let from = lit(net as u32, v);
                        for &l in &lits {
                            if (l >> 1) as usize == net {
                                continue;
                            }
                            rows[from as usize].push(l);
                            // Contrapositive: `w = ¬u ⇒ net = ¬v`.
                            rows[(l ^ 1) as usize].push(from ^ 1);
                        }
                    }
                }
            }
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        let db1 = LearnedImplications::from_rows(n, rows, constants, baseline_count, depth);

        // Pass 2: re-query every literal with the pass-1 database applied —
        // including the case splits, which now run over learned
        // implications. This both flattens indirect chains (a ⇒ b learned,
        // b ⇒ c direct gives a ⇒ c) into one closed row per literal and
        // catches contradictions only visible when a split branch fires a
        // learned row (e.g. `XOR(w, z)` with `w ≡ z` proven by pass 1 is
        // now a learned constant 0).
        let mut rows2: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        let mut constants2 = db1.constants.clone();
        for net in 0..n {
            for v in [false, true] {
                if constants2[net].is_some() {
                    break;
                }
                match recursive_consequences(&mut imp, &[(net as u32, v)], depth, Some(&db1)) {
                    None => record_constant(&mut imp, &mut constants2, net, !v),
                    Some(lits) => {
                        rows2[lit(net as u32, v) as usize] = lits
                            .into_iter()
                            .filter(|&l| {
                                let w = (l >> 1) as usize;
                                // Consequences on constant nets are global
                                // truths, not implications — drop them.
                                w != net && db1.constants[w].is_none()
                            })
                            .collect();
                    }
                }
            }
        }
        Ok(LearnedImplications::from_rows(
            n,
            rows2,
            constants2,
            baseline_count,
            depth,
        ))
    }

    fn from_rows(
        nets: usize,
        rows: Vec<Vec<u32>>,
        constants: Vec<Option<bool>>,
        baseline_count: usize,
        depth: usize,
    ) -> LearnedImplications {
        let mut offsets = Vec::with_capacity(2 * nets + 1);
        let mut lits = Vec::new();
        offsets.push(0u32);
        for row in &rows {
            lits.extend_from_slice(row);
            offsets.push(lits.len() as u32);
        }
        let learned_constants = constants.iter().filter(|c| c.is_some()).count() - baseline_count;
        LearnedImplications {
            nets,
            offsets,
            lits,
            constants,
            learned_constants,
            depth,
        }
    }

    /// Everything `net = value` implies, as `(net, value)` pairs in
    /// ascending net order.
    pub fn implied(&self, net: GateId, value: bool) -> impl Iterator<Item = (GateId, bool)> + '_ {
        self.implied_lits(net.index(), value)
            .iter()
            .map(|&l| (GateId::from_index((l >> 1) as usize), l & 1 == 1))
    }

    /// The proven constant value of a net, if any (baseline constant
    /// propagation or learned).
    pub fn constant(&self, net: GateId) -> Option<bool> {
        self.constants[net.index()]
    }

    /// Total number of stored implications.
    pub fn implication_count(&self) -> usize {
        self.lits.len()
    }

    /// Number of nets proven constant *beyond* plain constant propagation.
    pub fn learned_constant_count(&self) -> usize {
        self.learned_constants
    }

    /// The recursion-depth bound the database was built with.
    pub fn recursion_depth(&self) -> usize {
        self.depth
    }

    /// Number of nets in the underlying netlist.
    pub fn net_count(&self) -> usize {
        self.nets
    }

    pub(crate) fn implied_lits(&self, net: usize, value: bool) -> &[u32] {
        let l = lit(net as u32, value) as usize;
        &self.lits[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    pub(crate) fn constant_index(&self, net: usize) -> Option<bool> {
        self.constants[net]
    }
}

#[inline]
fn lit(net: u32, value: bool) -> u32 {
    net * 2 + value as u32
}

/// Records `net` as the learned constant `value`, then propagates the
/// constant once: every consequence of a global constant is itself a
/// global constant.
fn record_constant(imp: &mut Implicator, constants: &mut [Option<bool>], net: usize, value: bool) {
    constants[net] = Some(value);
    if let Some(lits) = imp.consequences_with(&[(net as u32, value)], None) {
        for &l in &lits {
            let w = (l >> 1) as usize;
            if constants[w].is_none() {
                constants[w] = Some(l & 1 == 1);
            }
        }
    }
}

/// Propagates `assumptions` and returns the consequence literals, case
/// splitting unjustified gates up to `depth` levels. `None` means the
/// assumptions are contradictory.
///
/// The whole query runs as one incremental [`Implicator`] session: the
/// base fixpoint is propagated once and every case only pays for its own
/// delta before being rewound, which is what keeps depth-1 learning a
/// small multiple of the direct depth-0 sweep instead of a ~50× blowup
/// (one full re-propagation per case per split).
fn recursive_consequences(
    imp: &mut Implicator,
    assumptions: &[(u32, bool)],
    depth: usize,
    db: Option<&LearnedImplications>,
) -> Option<Vec<u32>> {
    if !imp.begin_fixpoint(assumptions, db) {
        return None;
    }
    if depth > 0 && !refine_live_fixpoint(imp, assumptions, depth, db) {
        return None;
    }
    let mut lits: Vec<u32> = imp.trail_lits(0).collect();
    lits.sort_unstable();
    Some(lits)
}

/// Case-splits the *root* gates of the live fixpoint — the assumed
/// literals themselves, when unjustified — and pushes the consequences
/// shared by every feasible case back onto it, recursing `depth` levels.
/// Returns `false` when the fixpoint's assumptions are proven impossible
/// — some complete split has no feasible case, or a shared consequence
/// contradicts. The session stays live either way; rewinding is the
/// caller's business.
///
/// Restricting the split to the roots (rather than every unjustified
/// gate in the trail) is what keeps the build linear in practice: a gate
/// `g` that turns up unjustified deep inside some other literal's cone
/// gets its split done exactly once — by `g`'s own query — and the
/// learned row `g = v ⇒ …` is then replayed into every cone that settles
/// `g` when pass 2 re-queries with the database applied. Only the
/// context-*sensitive* splits (whose shared consequences depend on the
/// surrounding cone) are lost, and those are empirically negligible at
/// half the build cost.
fn refine_live_fixpoint(
    imp: &mut Implicator,
    roots: &[(u32, bool)],
    depth: usize,
    db: Option<&LearnedImplications>,
) -> bool {
    let mut candidates: Vec<usize> = Vec::new();
    for &(g, _) in roots.iter() {
        if candidates.len() >= SPLIT_CAP {
            break;
        }
        let g = g as usize;
        if imp
            .definite(g)
            .is_some_and(|out| case_split(imp, g, out).is_some())
        {
            candidates.push(g);
        }
    }
    for g in candidates {
        // Re-derive the split at the live fixpoint: consequences pushed by
        // an earlier split may have justified this gate (or settled some
        // of its pins) in the meantime.
        let Some(out) = imp.definite(g) else { continue };
        let Some(cases) = case_split(imp, g, out) else {
            continue;
        };
        let mark = imp.mark();
        let mut common: Option<Vec<u32>> = None;
        for &(pin, val) in &cases {
            let mut ok = imp.assume_budgeted(pin, val, db, CASE_POP_BUDGET);
            if ok && depth > 1 {
                ok = refine_live_fixpoint(imp, &[(pin, val)], depth - 1, db);
            }
            if ok {
                let mut cl: Vec<u32> = imp.trail_lits(mark).collect();
                cl.sort_unstable();
                // An infeasible case contributes the universe to the
                // intersection, i.e. drops out of it.
                common = Some(match common {
                    None => cl,
                    Some(prev) => intersect_sorted(&prev, &cl),
                });
            }
            imp.undo_to(mark);
        }
        let Some(common) = common else {
            // Every case of a complete split is impossible, so the
            // assumptions are too.
            return false;
        };
        for &l in &common {
            if !imp.assume(l >> 1, l & 1 == 1, db) {
                // A shared consequence of a complete split is a true
                // consequence of the assumptions; contradicting it
                // refutes them.
                return false;
            }
        }
    }
    true
}

/// If gate `g`, whose output is definite `out` at the current fixpoint, is
/// *unjustified*, returns the complete case split that justifies it: each
/// case is one `(pin_net, value)` assumption and every consistent total
/// assignment satisfies at least one case.
fn case_split(imp: &Implicator, g: usize, out: bool) -> Option<Vec<(u32, bool)>> {
    let kind = imp.gate_kind(g);
    match kind {
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let ctrl = kind.controlling_value().expect("and/or family");
            // Only the controlled side needs a justifying pin.
            if (out != kind.is_inverting()) != ctrl {
                return None;
            }
            let mut cases = Vec::new();
            for &p in imp.gate_fanin(g) {
                match imp.definite(p as usize) {
                    Some(b) if b == ctrl => return None, // already justified
                    Some(_) => {}
                    None => cases.push((p, ctrl)),
                }
            }
            // One free pin is handled by the direct backward rule; wide
            // splits rarely agree and cost a query per case.
            if cases.len() < 2 || cases.len() > CASE_CAP {
                return None;
            }
            Some(cases)
        }
        GateKind::Xor | GateKind::Xnor => {
            // The first free pin being 0 or 1 is a complete split; with
            // fewer than two free pins parity completion already decides.
            let mut free = None;
            let mut free_count = 0;
            for &p in imp.gate_fanin(g) {
                if imp.definite(p as usize).is_none() {
                    free_count += 1;
                    if free.is_none() {
                        free = Some(p);
                    }
                }
            }
            if free_count < 2 {
                return None;
            }
            free.map(|p| vec![(p, false), (p, true)])
        }
        _ => None,
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Implication-proved relations between stuck-at faults, beyond what
/// structural collapse sees.
///
/// Both rules apply to a stem `s` whose every fanout pin lands on one
/// combinational gate `g` (output `o`) and which is not itself a primary
/// output — then the only divergence point between the `(s, v)`-faulty
/// circuit and the good circuit that downstream logic can see is `o`:
///
/// * **Equivalence.** If locally evaluating `g` with the `s` pins at `v`
///   and every other pin at X forces `o = u`, the faulty circuits of
///   `(s, v)` and `(o, u)` compute identical functions at every primary
///   output, so the faults share their exact test set. This covers
///   duplicated-pin gates (`o = AND(s, s)`) that structural collapse
///   must not merge pin-by-pin.
/// * **Dominance.** If the database knows `s = ¬v ⇒ o = c` in the good
///   circuit, every test for `(s, v)` excites `s = ¬v`, observes the
///   effect through `o` (good `o = c`, faulty `o = ¬c`), and therefore
///   also detects `(o, ¬c)`: `tests(s,v) ⊆ tests(o,¬c)`. An untestable
///   dominator hence proves the dominated fault untestable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultRelations {
    /// Representative fault index per fault after merging
    /// implication-proved equivalences (identity where nothing merged).
    pub class_of: Vec<u32>,
    /// `(dominator, dominated)` pairs: `tests(dominated) ⊆
    /// tests(dominator)`.
    pub dominances: Vec<(u32, u32)>,
}

/// Derives implication-based equivalence and dominance relations between
/// the given faults from a learned database. Sound and deliberately
/// incomplete; both rules are validated against exhaustive simulation by
/// the proptests in `tests/analyze_equivalence.rs`.
pub fn fault_relations(
    netlist: &Netlist,
    faults: &FaultList,
    db: &LearnedImplications,
) -> FaultRelations {
    let nf = faults.len();
    // Sorted lookup table instead of a hash map: `Fault: Ord`, and a
    // binary search keeps the pass free of nondeterministic iteration.
    let mut index: Vec<(Fault, u32)> = faults
        .iter()
        .map(|(id, f)| (f, id.index() as u32))
        .collect();
    index.sort_unstable();
    let find = |f: Fault| -> Option<u32> {
        index
            .binary_search_by(|(probe, _)| probe.cmp(&f))
            .ok()
            .map(|i| index[i].1)
    };

    let fanouts = netlist.fanouts();
    let mut is_po = vec![false; netlist.gate_count()];
    for &o in netlist.outputs() {
        is_po[o.index()] = true;
    }

    let mut uf: Vec<u32> = (0..nf as u32).collect();
    let mut dominances = Vec::new();
    for (s_id, s_gate) in netlist.iter() {
        let s = s_id.index();
        if is_po[s] || fanouts[s].is_empty() || s_gate.kind() == GateKind::Dff {
            continue;
        }
        let g_id = fanouts[s][0];
        if fanouts[s].iter().any(|&f| f != g_id) {
            continue; // fans out to more than one gate
        }
        let g = netlist.gate(g_id);
        if matches!(g.kind(), GateKind::Dff | GateKind::Input) {
            continue;
        }
        for v in [false, true] {
            let Some(sub) = find(Fault::stuck_at(FaultSite::GateOutput(s_id), v)) else {
                continue;
            };
            // Equivalence: local forcing of g by the s pins alone.
            let forced = eval_gate(
                g.kind(),
                g.fanin()
                    .iter()
                    .map(|&p| if p == s_id { tv_from_bool(v) } else { TV_X }),
            );
            if let Some(u) = tv_definite(forced) {
                if let Some(rep) = find(Fault::stuck_at(FaultSite::GateOutput(g_id), u)) {
                    union(&mut uf, sub, rep);
                }
                continue;
            }
            // Dominance: the good circuit implies s = ¬v ⇒ o = c.
            let dom = db
                .implied(s_id, !v)
                .find(|&(w, _)| w == g_id)
                .and_then(|(_, c)| find(Fault::stuck_at(FaultSite::GateOutput(g_id), !c)));
            if let Some(dom) = dom {
                dominances.push((dom, sub));
            }
        }
    }

    // Path-compress to canonical (minimum-index) representatives.
    let class_of = (0..nf as u32).map(|i| root(&mut uf, i)).collect();
    FaultRelations {
        class_of,
        dominances,
    }
}

fn root(uf: &mut [u32], mut i: u32) -> u32 {
    while uf[i as usize] != i {
        let p = uf[i as usize];
        uf[i as usize] = uf[p as usize];
        i = p;
    }
    i
}

fn union(uf: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (root(uf, a), root(uf, b));
    // Point the larger root at the smaller so representatives are the
    // minimum index of their class — stable across build order.
    if ra < rb {
        uf[rb as usize] = ra;
    } else {
        uf[ra as usize] = rb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::bench;

    fn db(src: &str) -> (LearnedImplications, Netlist) {
        let n = bench::parse(src).unwrap();
        (LearnedImplications::learn(&n).unwrap(), n)
    }

    #[test]
    fn contrapositive_is_learned() {
        // a=1 ⇒ y=1 directly (OR). The contrapositive y=0 ⇒ a=0 is a
        // backward implication the direct engine also knows — but via the
        // database it must now be a recorded consequence.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n";
        let (db, n) = db(src);
        let (a, y) = (n.find("a").unwrap(), n.find("y").unwrap());
        let implied: Vec<_> = db.implied(y, false).collect();
        assert!(implied.contains(&(a, false)), "{implied:?}");
    }

    #[test]
    fn indirect_implication_is_learned() {
        // Classic SOCRATES example: y = AND(OR(a,b), OR(a,c)). Direct
        // propagation cannot see a=1 ⇒ y=1... but wait, forward eval can:
        // a=1 forces both ORs. The genuinely indirect one is the
        // contrapositive y=0 ⇒ a=0, which needs learning because backward
        // justification of y=0 has two candidate pins.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
                   o1 = OR(a, b)\no2 = OR(a, c)\ny = AND(o1, o2)\n";
        let (db, n) = db(src);
        let (a, y) = (n.find("a").unwrap(), n.find("y").unwrap());
        let implied: Vec<_> = db.implied(y, false).collect();
        assert!(implied.contains(&(a, false)), "{implied:?}");
    }

    #[test]
    fn recursive_learning_finds_case_split_consequences() {
        // w and z compute the same XOR. Neither direction is visible to
        // the direct engine: with the output definite both gates still
        // have two free pins, so no backward rule fires and no
        // contrapositive exists to extract. Only the case split on the
        // first free pin (x2 = 0 forces x1 = 1 forces z = 1; x2 = 1
        // symmetrically) proves w=1 ⇒ z=1.
        let src = "INPUT(x1)\nINPUT(x2)\nOUTPUT(w)\nOUTPUT(z)\n\
                   w = XOR(x2, x1)\nz = XOR(x1, x2)\n";
        let (db, n) = db(src);
        let (w, z) = (n.find("w").unwrap(), n.find("z").unwrap());
        let implied: Vec<_> = db.implied(w, true).collect();
        assert!(implied.contains(&(z, true)), "{implied:?}");
        // And at depth 0 the split is off, so the implication is missed.
        let db0 = LearnedImplications::learn_with_depth(&n, 0).unwrap();
        let implied0: Vec<_> = db0.implied(w, true).collect();
        assert!(!implied0.contains(&(z, true)), "{implied0:?}");
    }

    #[test]
    fn contradictory_case_split_learns_a_constant() {
        // y = AND(a, NOT a) is constant 0 — the direct engine proves the
        // y=1 assumption contradictory and learning records the constant.
        let src = "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = AND(a, na)\n";
        let (db, n) = db(src);
        assert_eq!(db.constant(n.find("y").unwrap()), Some(false));
        assert_eq!(db.constant(n.find("a").unwrap()), None);
        assert!(db.learned_constant_count() >= 1);
    }

    #[test]
    fn pass_two_chains_implications() {
        // w=0 ⇒ y=0 needs the learned y=1 ⇒ w=1 contrapositive chained
        // with direct rules across two reconvergent stages.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
                   o1 = OR(a, b)\no2 = OR(a, c)\nw = AND(o1, o2)\ny = BUFF(w)\n";
        let (db, n) = db(src);
        let (a, y) = (n.find("a").unwrap(), n.find("y").unwrap());
        let implied: Vec<_> = db.implied(y, false).collect();
        assert!(implied.contains(&(a, false)), "{implied:?}");
    }

    #[test]
    fn duplicated_pin_equivalence_is_found() {
        // o = AND(s, s): s/0 ≡ o/0 and s/1 ≡ o/1, neither of which
        // structural collapse may merge pin-by-pin.
        let src = "INPUT(a)\nOUTPUT(o)\ns = BUFF(a)\no = AND(s, s)\n";
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let db = LearnedImplications::learn(&n).unwrap();
        let rel = fault_relations(&n, &faults, &db);
        let (s, o) = (n.find("s").unwrap(), n.find("o").unwrap());
        for v in [false, true] {
            let fs = faults
                .position(&Fault::stuck_at(FaultSite::GateOutput(s), v))
                .unwrap();
            let fo = faults
                .position(&Fault::stuck_at(FaultSite::GateOutput(o), v))
                .unwrap();
            assert_eq!(
                rel.class_of[fs.index()],
                rel.class_of[fo.index()],
                "s/{} should merge with o/{}",
                v as u8,
                v as u8
            );
        }
    }

    #[test]
    fn dominance_through_an_or_side_input() {
        // o = OR(s, b): s/0 is dominated by o/0 (every test for s/0 sets
        // s=1, which forces o=1 good / o=0 faulty — Rule D with c = 1).
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(o)\ns = BUFF(a)\no = OR(s, b)\n";
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let db = LearnedImplications::learn(&n).unwrap();
        let rel = fault_relations(&n, &faults, &db);
        let s = n.find("s").unwrap();
        let o = n.find("o").unwrap();
        let sub = faults
            .position(&Fault::stuck_at(FaultSite::GateOutput(s), false))
            .unwrap();
        let dom = faults
            .position(&Fault::stuck_at(FaultSite::GateOutput(o), false))
            .unwrap();
        assert!(
            rel.dominances
                .contains(&(dom.index() as u32, sub.index() as u32)),
            "{:?}",
            rel.dominances
        );
    }

    #[test]
    fn po_stems_and_multi_gate_fanouts_are_excluded() {
        let src = "INPUT(a)\nOUTPUT(s)\nOUTPUT(o)\nOUTPUT(p)\n\
                   s = BUFF(a)\no = NOT(s)\nt = BUFF(a)\np = AND(t, a)\n";
        let n = bench::parse(src).unwrap();
        let faults = FaultList::full(&n);
        let db = LearnedImplications::learn(&n).unwrap();
        let rel = fault_relations(&n, &faults, &db);
        // s is a PO: its stem faults must not merge with o's.
        let s = n.find("s").unwrap();
        for v in [false, true] {
            let fs = faults
                .position(&Fault::stuck_at(FaultSite::GateOutput(s), v))
                .unwrap();
            assert_eq!(rel.class_of[fs.index()], fs.index() as u32);
        }
        // a fans out to several gates: no stem relation may use rule E/D.
        let a = n.find("a").unwrap();
        for v in [false, true] {
            let fa = faults
                .position(&Fault::stuck_at(FaultSite::GateOutput(a), v))
                .unwrap();
            assert_eq!(rel.class_of[fa.index()], fa.index() as u32);
            assert!(rel
                .dominances
                .iter()
                .all(|&(_, sub)| sub != fa.index() as u32));
        }
    }

    #[test]
    fn database_is_deterministic() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
                   o1 = OR(a, b)\no2 = OR(a, c)\ny = AND(o1, o2)\n";
        let n = bench::parse(src).unwrap();
        let d1 = LearnedImplications::learn(&n).unwrap();
        let d2 = LearnedImplications::learn(&n).unwrap();
        assert_eq!(d1, d2);
    }
}
