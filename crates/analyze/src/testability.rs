//! SCOAP-style testability measures.
//!
//! The Sandia Controllability/Observability Analysis Program (SCOAP)
//! measures estimate, per net, how many primary-input assignments are
//! needed to *control* the net to 0 or 1 (`CC0`, `CC1`) and how hard it is
//! to *observe* the net at a primary output (`CO`). PODEM uses them to pick
//! the most promising input during backtrace; `fbist check` uses them to
//! report random-pattern-resistant regions. They live here, next to the
//! other fault-independent netlist measures, and `fbist-atpg` re-exports
//! the module for its callers.

use fbist_netlist::{GateId, GateKind, Netlist, NetlistError};

/// SCOAP testability estimates for a combinational netlist.
///
/// # Example
///
/// ```
/// use fbist_netlist::embedded;
/// use fbist_analyze::testability::Testability;
///
/// let c17 = embedded::c17();
/// let t = Testability::analyze(&c17)?;
/// let pi = c17.inputs()[0];
/// assert_eq!(t.cc0(pi), 1);
/// assert_eq!(t.cc1(pi), 1);
/// # Ok::<(), fbist_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

/// Saturating cap so that unreachable/constant cases don't overflow.
const INF: u32 = u32::MAX / 4;

impl Testability {
    /// Measures at or above this value are saturated: the net cannot be
    /// controlled to that value / observed at all.
    pub const INFINITY: u32 = INF;

    /// Computes SCOAP measures. Sequential netlists are handled by
    /// treating DFF outputs like primary inputs (full-scan assumption).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] (naming the cycle, the
    /// same surface the topology pass gives `fbist check`) when the
    /// netlist does not levelize.
    pub fn analyze(netlist: &Netlist) -> Result<Testability, NetlistError> {
        let order = netlist.levelize()?;
        let n = netlist.gate_count();
        let mut cc0 = vec![INF; n];
        let mut cc1 = vec![INF; n];

        // Forward pass: controllability.
        for &id in &order {
            let g = netlist.gate(id);
            let i = id.index();
            let f0 = |f: &GateId| cc0[f.index()];
            let f1 = |f: &GateId| cc1[f.index()];
            match g.kind() {
                GateKind::Input | GateKind::Dff => {
                    cc0[i] = 1;
                    cc1[i] = 1;
                }
                GateKind::Const0 => {
                    cc0[i] = 0;
                    cc1[i] = INF;
                }
                GateKind::Const1 => {
                    cc0[i] = INF;
                    cc1[i] = 0;
                }
                GateKind::Buff => {
                    cc0[i] = cc0[g.fanin()[0].index()].saturating_add(1).min(INF);
                    cc1[i] = cc1[g.fanin()[0].index()].saturating_add(1).min(INF);
                }
                GateKind::Not => {
                    cc0[i] = cc1[g.fanin()[0].index()].saturating_add(1).min(INF);
                    cc1[i] = cc0[g.fanin()[0].index()].saturating_add(1).min(INF);
                }
                GateKind::And | GateKind::Nand => {
                    let all1: u32 = g
                        .fanin()
                        .iter()
                        .map(f1)
                        .fold(0u32, |a, b| a.saturating_add(b))
                        .saturating_add(1)
                        .min(INF);
                    let any0: u32 = g
                        .fanin()
                        .iter()
                        .map(f0)
                        .min()
                        .unwrap_or(INF)
                        .saturating_add(1)
                        .min(INF);
                    if g.kind() == GateKind::And {
                        cc0[i] = any0;
                        cc1[i] = all1;
                    } else {
                        cc0[i] = all1;
                        cc1[i] = any0;
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let all0: u32 = g
                        .fanin()
                        .iter()
                        .map(f0)
                        .fold(0u32, |a, b| a.saturating_add(b))
                        .saturating_add(1)
                        .min(INF);
                    let any1: u32 = g
                        .fanin()
                        .iter()
                        .map(f1)
                        .min()
                        .unwrap_or(INF)
                        .saturating_add(1)
                        .min(INF);
                    if g.kind() == GateKind::Or {
                        cc0[i] = all0;
                        cc1[i] = any1;
                    } else {
                        cc0[i] = any1;
                        cc1[i] = all0;
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Dynamic programming over pins: cost of achieving even /
                    // odd parity across the fanins.
                    let mut even = 0u32; // cost of parity 0 so far
                    let mut odd = INF; // cost of parity 1 so far
                    for f in g.fanin() {
                        let (z, o) = (cc0[f.index()], cc1[f.index()]);
                        let new_even = even.saturating_add(z).min(odd.saturating_add(o)).min(INF);
                        let new_odd = even.saturating_add(o).min(odd.saturating_add(z)).min(INF);
                        even = new_even;
                        odd = new_odd;
                    }
                    let (e, o) = (
                        even.saturating_add(1).min(INF),
                        odd.saturating_add(1).min(INF),
                    );
                    if g.kind() == GateKind::Xor {
                        cc0[i] = e;
                        cc1[i] = o;
                    } else {
                        cc0[i] = o;
                        cc1[i] = e;
                    }
                }
            }
        }

        // Backward pass: observability.
        let mut co = vec![INF; n];
        for &o in netlist.outputs() {
            co[o.index()] = 0;
        }
        for &id in order.iter().rev() {
            let g = netlist.gate(id);
            if g.kind().is_source() || g.kind().is_state() {
                continue;
            }
            let out_co = co[id.index()];
            if out_co >= INF {
                continue;
            }
            for (pin, &f) in g.fanin().iter().enumerate() {
                // Cost to observe fanin `pin` through this gate: the gate's
                // own observability plus the cost of setting the *other*
                // pins to non-controlling values (or matching parity for
                // XOR-family).
                let side_cost: u32 = match g.kind() {
                    GateKind::And | GateKind::Nand => g
                        .fanin()
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != pin)
                        .map(|(_, s)| cc1[s.index()])
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    GateKind::Or | GateKind::Nor => g
                        .fanin()
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != pin)
                        .map(|(_, s)| cc0[s.index()])
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    GateKind::Xor | GateKind::Xnor => g
                        .fanin()
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != pin)
                        .map(|(_, s)| cc0[s.index()].min(cc1[s.index()]))
                        .fold(0u32, |a, b| a.saturating_add(b)),
                    GateKind::Not | GateKind::Buff => 0,
                    _ => 0,
                };
                let cand = out_co.saturating_add(side_cost).saturating_add(1).min(INF);
                if cand < co[f.index()] {
                    co[f.index()] = cand;
                }
            }
        }

        Ok(Testability { cc0, cc1, co })
    }

    /// Effort to control the net to 0 (primary inputs have cost 1).
    pub fn cc0(&self, net: GateId) -> u32 {
        self.cc0[net.index()]
    }

    /// Effort to control the net to 1.
    pub fn cc1(&self, net: GateId) -> u32 {
        self.cc1[net.index()]
    }

    /// Effort to control the net to the given value.
    pub fn cc(&self, net: GateId, value: bool) -> u32 {
        if value {
            self.cc1(net)
        } else {
            self.cc0(net)
        }
    }

    /// Effort to observe the net at some primary output (outputs have cost
    /// 0; unobservable nets saturate).
    pub fn co(&self, net: GateId) -> u32 {
        self.co[net.index()]
    }

    /// Combined detection-difficulty estimate for a stuck-at fault at a
    /// net: controlling the opposite value plus observing the net.
    pub fn fault_difficulty(&self, net: GateId, stuck: bool) -> u32 {
        self.cc(net, !stuck).saturating_add(self.co(net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbist_netlist::{bench, embedded};

    fn analyze(n: &Netlist) -> Testability {
        Testability::analyze(n).unwrap()
    }

    #[test]
    fn inputs_have_unit_controllability() {
        let n = embedded::c17();
        let t = analyze(&n);
        for &pi in n.inputs() {
            assert_eq!(t.cc0(pi), 1);
            assert_eq!(t.cc1(pi), 1);
        }
    }

    #[test]
    fn and_gate_asymmetry() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n";
        let n = bench::parse(src).unwrap();
        let t = analyze(&n);
        let y = n.find("y").unwrap();
        // CC1 = 1+1+1+1 = 4 (all inputs to 1); CC0 = 1+1 = 2 (any input 0)
        assert_eq!(t.cc1(y), 4);
        assert_eq!(t.cc0(y), 2);
    }

    #[test]
    fn deep_chains_cost_more() {
        let src = "INPUT(a)\nOUTPUT(d)\nb = BUFF(a)\nc = BUFF(b)\nd = BUFF(c)\n";
        let n = bench::parse(src).unwrap();
        let t = analyze(&n);
        let a = n.find("a").unwrap();
        let d = n.find("d").unwrap();
        assert!(t.cc1(d) > t.cc1(a));
        // observability decreases toward outputs
        assert!(t.co(a) > t.co(d));
        assert_eq!(t.co(d), 0);
    }

    #[test]
    fn outputs_observable_at_zero_cost() {
        let n = embedded::c17();
        let t = analyze(&n);
        for &po in n.outputs() {
            assert_eq!(t.co(po), 0);
        }
    }

    #[test]
    fn constant_nets_uncontrollable_to_opposite() {
        let src = "OUTPUT(y)\nk = CONST1()\ny = BUFF(k)\n";
        let n = bench::parse(src).unwrap();
        let t = analyze(&n);
        let k = n.find("k").unwrap();
        assert_eq!(t.cc1(k), 0);
        assert!(t.cc0(k) > 1_000_000);
    }

    #[test]
    fn xor_parity_dp() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
        let n = bench::parse(src).unwrap();
        let t = analyze(&n);
        let y = n.find("y").unwrap();
        // parity 0: (0,0) or (1,1) -> 2; parity 1: (0,1)/(1,0) -> 2; +1
        assert_eq!(t.cc0(y), 3);
        assert_eq!(t.cc1(y), 3);
    }

    #[test]
    fn difficulty_combines_both() {
        let n = embedded::c17();
        let t = analyze(&n);
        let g = n.find("22").unwrap(); // a PO
        assert_eq!(t.fault_difficulty(g, false), t.cc1(g));
    }

    #[test]
    fn analyze_returns_a_result_and_scans_dffs() {
        // The old API panicked on netlists that fail to levelize; the
        // fallible surface now forwards `levelize`'s NetlistError instead.
        // Cyclic netlists are unconstructible through the public builder
        // (fanins must already exist) and rejected by the bench parser, so
        // exercise the Result path plus the full-scan assumption on a
        // sequential netlist built by hand: the DFF output is treated as a
        // primary input with unit controllability.
        let mut n = Netlist::new("seq");
        let a = n.add_input("a");
        let q = n.add_dff("q").unwrap();
        let d = n
            .add_gate(fbist_netlist::GateKind::And, "d", vec![a, q])
            .unwrap();
        n.connect_dff(q, d).unwrap();
        n.add_output(d);
        let t: Result<Testability, NetlistError> = Testability::analyze(&n);
        let t = t.unwrap();
        assert_eq!(t.cc0(q), 1);
        assert_eq!(t.cc1(q), 1);
    }
}
